#!/usr/bin/env bash
# Full verification gate: build, every test in the workspace, and a
# warning-free clippy pass. Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo test -q --workspace
cargo clippy --all-targets -- -D warnings
echo "verify: OK"
