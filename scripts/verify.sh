#!/usr/bin/env bash
# Full verification gate: formatting, build, every test in the workspace,
# a warning-free clippy pass, a restart-engine equivalence smoke run
# (K=1 vs K=4 must recover byte-identical state), the concurrent-pipeline
# stress tests, the observability property/conservation suites, and a
# throughput smoke with --obs that must show >= 2x txns/sec at 4 workers
# vs 1 AND emit a metrics snapshot whose conservation laws balance
# (results land in results/BENCH_throughput.json). Run from anywhere
# inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all -- --check
cargo build --release
# `cargo build --release` alone builds the root package; the smoke below
# runs the bench binary, so build it explicitly or it can go stale
cargo build --release -p rmdb-bench --bin throughput
cargo test -q
cargo test -q --workspace
cargo clippy --all-targets -- -D warnings
cargo test -q --release --test restart_equivalence smoke_k1_vs_k4
cargo test -q --release --test exec_stress
cargo test -q --release --test obs_properties
cargo test -q --release --test fault_sweep recovery_obs_counters_match_report_at_every_crashpoint

mkdir -p results
./target/release/throughput --smoke --obs --json > results/BENCH_throughput.json
python3 - <<'EOF'
import json
doc = json.load(open("results/BENCH_throughput.json"))
cells = doc["cells"]
rate = {c["workers"]: c["txns_per_sec"] for c in cells}
ratio = rate[4] / rate[1]
print(f"throughput smoke: 1w={rate[1]:.0f} 4w={rate[4]:.0f} txns/s ({ratio:.2f}x)")
assert ratio >= 2.0, f"group commit scaling regressed: {ratio:.2f}x < 2x"

# obs smoke gate: the snapshot must parse, its core counters must be
# non-zero, and the double-entry conservation laws must balance
m = doc["metrics"]
c, g, h = m["counters"], m["gauges"], m["histograms"]
acked, done = c["txn.commits_acked"], c["group.completions"]
assert acked > 0 and acked == done, f"commit acks {acked} != completions {done}"
enq = sum(v for k, v in c.items() if k.startswith("wal.fragments_enqueued."))
app = sum(v for k, v in c.items() if k.startswith("wal.fragments_appended."))
assert enq > 0 and enq == app, f"fragments enqueued {enq} != appended {app}"
forces = sum(v for k, v in c.items() if k.startswith("wal.forces."))
assert forces > 0, "no log forces recorded"
assert g["pool.lookups"] > 0 and g["pool.hits"] + g["pool.misses"] == g["pool.lookups"], \
    "pool hit/miss split does not tile lookups"
commit_h = h["txn.commit_us"]
assert commit_h["count"] > 0 and commit_h["p99"] >= commit_h["p50"] > 0, \
    "commit latency histogram empty or non-monotone"
force_h = [v for k, v in h.items() if k.startswith("wal.force_us.")]
assert force_h and all(x["count"] > 0 and x["p95"] > 0 for x in force_h), \
    "force latency histograms missing or empty"
print(f"obs smoke: acked={acked} fragments={enq} forces={forces} "
      f"commit p50/p95/p99={commit_h['p50']}/{commit_h['p95']}/{commit_h['p99']}us")
EOF
echo "verify: OK"
