#!/usr/bin/env bash
# Full verification gate: formatting, build, every test in the workspace,
# a warning-free clippy pass, a restart-engine equivalence smoke run
# (K=1 vs K=4 must recover byte-identical state), the concurrent-pipeline
# stress tests, and a throughput smoke that must show >= 2x txns/sec at
# 4 workers vs 1 (results land in results/BENCH_throughput.json). Run
# from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all -- --check
cargo build --release
cargo test -q
cargo test -q --workspace
cargo clippy --all-targets -- -D warnings
cargo test -q --release --test restart_equivalence smoke_k1_vs_k4
cargo test -q --release --test exec_stress

mkdir -p results
./target/release/throughput --smoke --json > results/BENCH_throughput.json
python3 - <<'EOF'
import json
cells = json.load(open("results/BENCH_throughput.json"))["cells"]
rate = {c["workers"]: c["txns_per_sec"] for c in cells}
ratio = rate[4] / rate[1]
print(f"throughput smoke: 1w={rate[1]:.0f} 4w={rate[4]:.0f} txns/s ({ratio:.2f}x)")
assert ratio >= 2.0, f"group commit scaling regressed: {ratio:.2f}x < 2x"
EOF
echo "verify: OK"
