#!/usr/bin/env bash
# Full verification gate: formatting, build, every test in the workspace,
# a warning-free clippy pass, a restart-engine equivalence smoke run
# (K=1 vs K=4 must recover byte-identical state), the concurrent-pipeline
# stress tests, the observability property/conservation suites, and a
# throughput smoke with --obs that must show >= 2x txns/sec at 4 workers
# vs 1 AND emit a metrics snapshot whose conservation laws balance
# (results land in results/BENCH_throughput.json), plus failover and
# membership-churn smokes whose gates derive from the emitted JSON
# (results/BENCH_failover.json), and a read-mix smoke gating MVCC
# snapshot reads at >= 1.5x locked read throughput with zero consistency
# violations (results/BENCH_readmix.json), and a replay smoke gating the
# adaptive logging + dependency-aware replay subsystem: adaptive log bytes
# <= 0.7x physical on a 90/10 hot-key workload, modeled K=4 replay speedup
# >= 2x K=1, and zero byte-equivalence violations across worker counts
# (results/BENCH_replay.json), and a block-device backend gate: the
# backend-parametrized conformance suite (mem/file/nvme), the NVMe
# timing-model property tests, the FileDisk crashpoint sweeps, and a
# scaling-sweep smoke that must cover >= 2 backends x >= 3 worker counts
# with zero conservation violations in every cell plus a byte-identical
# FileDisk recovery audit (results/BENCH_scaling.json), and the leveled
# differential-store gate: a `cargo bench --no-run` compile pass over
# every criterion bench (so bench rot fails CI, not the next person to
# run benches), the LSM named-crash-site + seeded-storm sweeps and the
# basic/optimal strategy-equivalence properties in release, and an LSM
# smoke whose JSON gate requires zero basic/optimal equivalence
# violations, a compaction count above zero, and a finite write
# amplification figure (results/BENCH_lsm.json). Run from anywhere
# inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all -- --check
cargo build --release
# `cargo build --release` alone builds the root package; the smoke below
# runs the bench binary, so build it explicitly or it can go stale
cargo build --release -p rmdb-bench --bin throughput
cargo build --release -p rmdb-bench --bin restart_ablation
cargo build --release -p rmdb-bench --bin scaling
cargo build --release -p rmdb-bench --bin lsm
cargo test -q
cargo test -q --workspace
cargo clippy --all-targets -- -D warnings
# compile every criterion bench without running it: bench targets are not
# covered by `cargo test`/`cargo build`, so struct-literal drift in a bench
# otherwise ships silently and breaks the next perf investigation
cargo bench --no-run
# the exec library is failover-critical: a mutex unwrap that panics while a
# sibling thread holds poisoned state turns one stream's death into a
# pipeline-wide outage. Its lib.rs warns on clippy::unwrap_used in non-test
# code (test modules exempt); -D warnings promotes that to a hard failure
cargo clippy -p rmdb-exec --lib -- -D warnings
cargo test -q --release --test restart_equivalence smoke_k1_vs_k4
cargo test -q --release --test exec_stress
cargo test -q --release --test obs_properties
cargo test -q --release --test fault_sweep recovery_obs_counters_match_report_at_every_crashpoint
cargo test -q --release --test fault_sweep mixed_logical_physical_log_recovers_at_every_crashpoint
# backend gate: every BlockDevice backend must present the MemDisk storage
# contract (conformance), the NVMe timing model must obey its laws
# (conservation / bounded latency / determinism), and the crash-recovery
# oracle must hold on a real file with fsync, not just the in-memory model
cargo test -q --release --test backend_conformance
cargo test -q --release --test nvme_model_properties
cargo test -q --release --test fault_sweep filedisk
# leveled differential-store gate: named-crash-site sweeps (flush and
# compaction tripped at pre-publish / mid-write / post-publish-pre-GC on
# both backends, foreground and background thread), the seeded crashpoint
# storms, background-vs-foreground fault accounting parity, and the
# basic/optimal strategy-equivalence properties over multi-level stores
cargo test -q --release --test fault_sweep lsm_
cargo test -q --release --test lsm_properties

mkdir -p results
./target/release/throughput --smoke --obs --json > results/BENCH_throughput.json
python3 - <<'EOF'
import json
doc = json.load(open("results/BENCH_throughput.json"))
cells = doc["cells"]
rate = {c["workers"]: c["txns_per_sec"] for c in cells}
ratio = rate[4] / rate[1]
print(f"throughput smoke: 1w={rate[1]:.0f} 4w={rate[4]:.0f} txns/s ({ratio:.2f}x)")
assert ratio >= 2.0, f"group commit scaling regressed: {ratio:.2f}x < 2x"

# obs smoke gate: the snapshot must parse, its core counters must be
# non-zero, and the double-entry conservation laws must balance
m = doc["metrics"]
c, g, h = m["counters"], m["gauges"], m["histograms"]
acked, done = c["txn.commits_acked"], c["group.completions"]
assert acked > 0 and acked == done, f"commit acks {acked} != completions {done}"
enq = sum(v for k, v in c.items() if k.startswith("wal.fragments_enqueued."))
app = sum(v for k, v in c.items() if k.startswith("wal.fragments_appended."))
assert enq > 0 and enq == app, f"fragments enqueued {enq} != appended {app}"
forces = sum(v for k, v in c.items() if k.startswith("wal.forces."))
assert forces > 0, "no log forces recorded"
assert g["pool.lookups"] > 0 and g["pool.hits"] + g["pool.misses"] == g["pool.lookups"], \
    "pool hit/miss split does not tile lookups"
commit_h = h["txn.commit_us"]
assert commit_h["count"] > 0 and commit_h["p99"] >= commit_h["p50"] > 0, \
    "commit latency histogram empty or non-monotone"
force_h = [v for k, v in h.items() if k.startswith("wal.force_us.")]
assert force_h and all(x["count"] > 0 and x["p95"] > 0 for x in force_h), \
    "force latency histograms missing or empty"
print(f"obs smoke: acked={acked} fragments={enq} forces={forces} "
      f"commit p50/p95/p99={commit_h['p50']}/{commit_h['p95']}/{commit_h['p99']}us")
EOF

# failover smoke: kill log stream 1 mid-run; the fleet must reroute (the
# long-transaction probe makes >= 1 reroute deterministic), keep committing
# on the survivors, and lose zero acked commits against a recovered image
# (the binary itself exits non-zero on acked loss or a silent fleet).
# Expectations are derived from the emitted JSON (survivors = streams - 1),
# not hardcoded to a fleet size.
./target/release/throughput --kill-stream 1@300 --secs 0.6 --json > /dev/null
python3 - <<'EOF'
import json
doc = json.load(open("results/BENCH_failover.json"))
assert doc["failover"]["reroutes"] > 0, "failover smoke: no fragment reroutes recorded"
assert doc["failover"]["quarantined"] > 0, "failover smoke: victim never quarantined"
assert doc["commits_after_failover"] > 0, "failover smoke: fleet stopped committing after the kill"
assert doc["lost_acked_commits"] == 0, f"failover smoke: {doc['lost_acked_commits']} acked commits lost"
want = doc["streams"] - 1
assert doc["live_streams_after"] == want, \
    f"failover smoke: expected {want} survivors, got {doc['live_streams_after']}"
phases = {p["phase"]: p for p in doc["phases"]}
print(f"failover smoke: detect={doc['detect_ms']}ms reroutes={doc['failover']['reroutes']} "
      f"p99 before/during/after={phases['before']['p99_us']}/{phases['during']['p99_us']}"
      f"/{phases['after']['p99_us']}us commits_after={doc['commits_after_failover']}")
EOF

# membership-churn smoke: kill stream 1, heal the device and rejoin it
# mid-run. The full fleet must be serving again (no degraded latch), zero
# acked commits lost across kill AND rejoin, and post-rejoin throughput
# within 10% of the pre-kill baseline. The churn row lands in
# results/BENCH_failover.json for the records.
./target/release/throughput --kill-stream 1@300 --rejoin-at 700 --secs 1.2 --json > /dev/null
python3 - <<'EOF'
import json
doc = json.load(open("results/BENCH_failover.json"))
assert doc["rejoins"] >= 1, "churn smoke: stream never rejoined"
assert doc["live_streams_after"] == doc["streams"], \
    f"churn smoke: fleet not restored ({doc['live_streams_after']}/{doc['streams']} live)"
assert not doc["degraded"], "churn smoke: degraded latch stuck after rejoin"
assert doc["lost_acked_commits"] == 0, f"churn smoke: {doc['lost_acked_commits']} acked commits lost"
churn = doc["churn"]
assert churn and churn["rejoined_at_ms"] is not None, "churn smoke: no churn row emitted"
ratio = churn["tps_after_rejoin"] / churn["tps_before"]
assert ratio >= 0.9, \
    f"churn smoke: post-rejoin throughput {churn['tps_after_rejoin']:.0f} tps is " \
    f"{ratio:.2f}x the pre-kill {churn['tps_before']:.0f} tps (< 0.9x)"
print(f"churn smoke: rejoined at {churn['rejoined_at_ms']}ms, tps "
      f"before/outage/after-rejoin={churn['tps_before']:.0f}/{churn['tps_outage']:.0f}"
      f"/{churn['tps_after_rejoin']:.0f} ({ratio:.2f}x baseline)")
EOF
# read-mix smoke: run the same read-heavy bank workload through MVCC
# snapshot reads and through the lock table. Snapshot reads must deliver
# >= 1.5x the locked read throughput at a 95/5 mix with zero consistency
# violations and zero errors on either path (the binary itself exits
# non-zero on a violation). Rows + speedups land in
# results/BENCH_readmix.json.
./target/release/throughput --read-pct 95,99 --json > /dev/null
python3 - <<'EOF'
import json
doc = json.load(open("results/BENCH_readmix.json"))
assert doc["violations"] == 0, f"readmix smoke: {doc['violations']} consistency violations"
rows = {(r["mode"], r["read_pct"]): r for r in doc["rows"]}
for (mode, pct), r in rows.items():
    assert r["errors"] == 0, f"readmix smoke: {mode}@{pct} had {r['errors']} errors"
    assert r["reads"] > 0 and r["writes"] > 0, f"readmix smoke: {mode}@{pct} cell is empty"
speedup = doc["read_speedup"]["95"]
assert speedup >= 1.5, \
    f"readmix smoke: snapshot reads only {speedup:.2f}x locked at 95/5 (< 1.5x)"
mvcc95, lock95 = rows[("mvcc", 95)], rows[("locked", 95)]
print(f"readmix smoke: 95/5 read tps mvcc={mvcc95['read_tps']:.0f} "
      f"locked={lock95['read_tps']:.0f} ({speedup:.2f}x), read p99 "
      f"{mvcc95['read_p99_us']}us vs {lock95['read_p99_us']}us, "
      f"99/1 speedup {doc['read_speedup']['99']:.2f}x")
EOF

# replay smoke: adaptive command/logical logging + dependency-aware parallel
# replay. Gates: (1) adaptive logging shrinks the log to <= 0.7x the physical
# after-image bytes on a 90/10 hot-key counter workload; (2) the precedence
# DAG admits >= 2x replay speedup at K=4 by Brent's bound (span + work/4 vs
# span + work), modeled from per-node replay times measured at K=1 — CI boxes
# are often single-core, so wall-clock cannot express the scaling the DAG
# structure provides; (3) recovered disks are byte-identical for every
# K in {1,2,4,8} (zero equivalence violations).
./target/release/restart_ablation --replay-json results/BENCH_replay.json
python3 - <<'EOF'
import json
doc = json.load(open("results/BENCH_replay.json"))
hot = doc["hotkey"]
ratio = hot["adaptive_vs_physical"]
assert ratio <= 0.7, \
    f"replay smoke: adaptive log bytes {ratio:.2f}x physical (> 0.7x) on hot-key"
sc = doc["scaling"]
assert sc["equivalence_violations"] == 0, \
    f"replay smoke: {sc['equivalence_violations']} byte-equivalence violations across K"
assert sc["speedup_k4"] >= 2.0, \
    f"replay smoke: modeled K=4 replay speedup {sc['speedup_k4']:.2f}x < 2x"
cells = {c["workers"]: c for c in sc["cells"]}
base = cells[1]
for k, c in cells.items():
    assert (c["dag_nodes"], c["dag_edges"], c["txns_reexecuted"], c["pages_installed"]) \
        == (base["dag_nodes"], base["dag_edges"], base["txns_reexecuted"],
            base["pages_installed"]), \
        f"replay smoke: K={k} DAG/replay accounting differs from K=1"
print(f"replay smoke: adaptive={hot['adaptive_bytes']}B vs physical="
      f"{hot['physical_bytes']}B ({ratio:.2f}x), dag={base['dag_nodes']}n/"
      f"{base['dag_edges']}e, modeled K=4 speedup {sc['speedup_k4']:.2f}x "
      f"(work={sc['work_us']}us span={sc['span_us']}us), violations=0")
EOF
# scaling smoke: high-concurrency sweep over the pluggable block-device
# backends. The binary itself exits non-zero on any conservation violation
# or a non-identical FileDisk recovery; the gate below re-derives both from
# the emitted JSON and additionally requires the sweep to have actually
# covered >= 2 backends x >= 3 worker counts (so a silently shrunk sweep
# cannot pass) with every cell committing work and probing conservation.
./target/release/scaling --smoke --json > /dev/null
python3 - <<'EOF'
import json
doc = json.load(open("results/BENCH_scaling.json"))
cells = doc["cells"]
backends = sorted({c["backend"] for c in cells})
workers = sorted({c["workers"] for c in cells})
assert len(backends) >= 2, f"scaling smoke: only {backends} backends swept (< 2)"
assert len(workers) >= 3, f"scaling smoke: only {workers} worker counts swept (< 3)"
for c in cells:
    key = f"{c['backend']}/{c['workers']}w/{c['streams']}s"
    assert c["txns"] > 0, f"scaling smoke: cell {key} committed nothing"
    assert c["conservation_reads"] > 0, f"scaling smoke: cell {key} never probed conservation"
    assert c["conservation_violations"] == 0, \
        f"scaling smoke: {c['conservation_violations']} conservation violations in {key}"
    assert c["commit_p99_us"] >= c["commit_p50_us"] > 0, \
        f"scaling smoke: cell {key} latency percentiles empty or non-monotone"
rec = doc["filedisk_recovery"]
assert rec["identical"] and len(rec["runs"]) >= 3 and \
    all(r["identical"] for r in rec["runs"]), \
    f"scaling smoke: FileDisk recovery not byte-identical: {rec}"
peak = max(cells, key=lambda c: c["txns_per_sec"])
print(f"scaling smoke: {len(cells)} cells over {backends} x workers={workers}, "
      f"peak {peak['txns_per_sec']:.0f} txns/s ({peak['backend']}@{peak['workers']}w), "
      f"0 violations, filedisk recovery identical across {len(rec['runs'])} seeds")
EOF

# LSM smoke: drive the leveled differential store through enough commits
# to flush AND compact, then gate on the emitted JSON: zero basic/optimal
# equivalence violations (the binary also exits non-zero on any), every
# cell must have actually compacted (a run that never compacted measured
# nothing), and write amplification must be present and sane.
./target/release/lsm --smoke --json > /dev/null
python3 - <<'EOF'
import json
doc = json.load(open("results/BENCH_lsm.json"))
assert doc["equivalence_violations"] == 0, \
    f"lsm smoke: {doc['equivalence_violations']} basic/optimal equivalence violations"
for c in doc["cells"]:
    name = c["name"]
    assert c["equivalence_violations"] == 0, \
        f"lsm smoke: cell {name} has scan equivalence violations"
    assert c["flushes"] > 0, f"lsm smoke: cell {name} never flushed"
    assert c["compactions"] > 0, f"lsm smoke: cell {name} never compacted"
    assert c["user_bytes"] > 0 and c["frames_written"] > 0, \
        f"lsm smoke: cell {name} committed nothing"
    wa = c["write_amplification"]
    assert wa > 0 and wa == wa and wa != float("inf"), \
        f"lsm smoke: cell {name} write amplification {wa} not a finite positive"
    assert c["basic_scans_per_sec"] > 0 and c["optimal_scans_per_sec"] > 0, \
        f"lsm smoke: cell {name} scan rates empty"
c = doc["cells"][0]
print(f"lsm smoke: WA {c['write_amplification']:.2f} "
      f"({c['frames_written']} frames / {c['user_bytes']} user bytes), "
      f"{c['flushes']} flushes, {c['compactions']} compactions, "
      f"L0 {c['l0_runs']} + {c['levels_live']} levels, "
      f"basic {c['basic_scans_per_sec']:.0f}/s vs optimal "
      f"{c['optimal_scans_per_sec']:.0f}/s, 0 equivalence violations")
EOF
echo "verify: OK"
