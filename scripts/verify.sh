#!/usr/bin/env bash
# Full verification gate: formatting, build, every test in the workspace,
# a warning-free clippy pass, and a restart-engine equivalence smoke run
# (K=1 vs K=4 must recover byte-identical state). Run from anywhere
# inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all -- --check
cargo build --release
cargo test -q
cargo test -q --workspace
cargo clippy --all-targets -- -D warnings
cargo test -q --release --test restart_equivalence smoke_k1_vs_k4
echo "verify: OK"
