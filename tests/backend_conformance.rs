//! Backend conformance: every [`BlockDevice`] backend must present the
//! same storage contract — the contract all the recovery mechanisms were
//! written against on `MemDisk`. One generic suite, instantiated per
//! backend, pins it down:
//!
//! * write/read roundtrip at frame and page granularity;
//! * virgin frames error `Unallocated`, out-of-range errors are typed;
//! * a torn write (partial frame) surfaces as a checksum `Corrupt` on the
//!   next page read — never as silently wrong data;
//! * `snapshot` captures the durable state at an instant: later mutations
//!   of the origin never leak into it, it is the same backend as its
//!   origin, and its counters start at zero;
//! * `force` is counted and never loses completed writes;
//! * an attached fault injector drives identical outcomes on every
//!   backend, so a fault plan authored against `MemDisk` replays
//!   faithfully against a real file or the NVMe model.

use recovery_machines::storage::{
    BackendKind, Disk, FaultInjector, FaultPlan, NvmeConfig, Page, PageId, StorageError, FRAME_SIZE,
};

const FRAMES: u64 = 16;

fn backends() -> Vec<BackendKind> {
    vec![
        BackendKind::Mem,
        BackendKind::file(),
        BackendKind::nvme(NvmeConfig::default()),
    ]
}

fn filled_page(id: u64, fill: u8) -> Page {
    let mut p = Page::new(PageId(id));
    // fill well past any tear point, so a merged old/new frame always
    // disagrees with the new header's checksum
    p.write_at(0, &[fill; 2048]);
    p
}

/// Run `case` once per backend, labelling failures with the backend name.
fn for_each_backend(case: impl Fn(&mut Disk, &str)) {
    for bk in backends() {
        let mut disk = bk.provision(FRAMES).expect("provision");
        assert_eq!(disk.kind(), bk.name());
        case(&mut disk, bk.name());
    }
}

#[test]
fn write_read_roundtrip() {
    for_each_backend(|disk, name| {
        // raw frames
        let mut frame = [0u8; FRAME_SIZE];
        for (i, b) in frame.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        disk.write_frame(3, &frame).expect("write");
        let back = disk.read_frame(3).expect("read");
        assert!(back[..] == frame[..], "{name}: raw frame roundtrip");

        // checksummed pages
        let p = filled_page(7, 0xA5);
        disk.write_page(7, &p).expect("write_page");
        assert_eq!(disk.read_page(7).expect("read_page"), p, "{name}");
        assert_eq!(disk.reads(), 2, "{name}: read count");
        assert_eq!(disk.writes(), 2, "{name}: write count");
    });
}

#[test]
fn virgin_and_out_of_range_frames_error_typed() {
    for_each_backend(|disk, name| {
        assert!(!disk.is_allocated(2), "{name}");
        assert!(
            matches!(
                disk.read_frame(2),
                Err(StorageError::Unallocated { addr: 2 })
            ),
            "{name}: virgin frame must read as Unallocated"
        );
        assert!(
            matches!(
                disk.read_frame(FRAMES),
                Err(StorageError::OutOfRange { addr, capacity })
                    if addr == FRAMES && capacity == FRAMES
            ),
            "{name}: out-of-range read"
        );
        let frame = [1u8; FRAME_SIZE];
        assert!(
            matches!(
                disk.write_frame(FRAMES + 5, &frame),
                Err(StorageError::OutOfRange { .. })
            ),
            "{name}: out-of-range write"
        );
    });
}

#[test]
fn torn_write_surfaces_as_checksum_corruption() {
    for_each_backend(|disk, name| {
        let p = filled_page(4, 0x3C);
        disk.write_page(4, &p).expect("full write");
        // tear a rewrite of the same frame: only the first 100 bytes of the
        // new image land, the old tail shows through
        let p2 = filled_page(4, 0xC3);
        disk.write_partial(4, &p2.to_frame(), 100).expect("tear");
        assert!(
            matches!(disk.read_page(4), Err(StorageError::Corrupt { addr: 4 })),
            "{name}: torn page must fail its checksum"
        );
        // a torn write still allocates (a crash mid-first-write leaves a
        // torn frame, not a virgin one)
        let q = filled_page(5, 0x11);
        disk.write_partial(5, &q.to_frame(), 64)
            .expect("tear virgin");
        assert!(disk.is_allocated(5), "{name}: torn frame is allocated");
    });
}

#[test]
fn snapshot_is_isolated_same_backend_with_fresh_counters() {
    for_each_backend(|disk, name| {
        let before = filled_page(2, 0xAA);
        disk.write_page(2, &before).expect("write");
        let snap = disk.snapshot();
        assert_eq!(snap.kind(), disk.kind(), "{name}: snapshot backend");
        assert_eq!(snap.capacity(), disk.capacity(), "{name}");
        assert_eq!(snap.reads(), 0, "{name}: snapshot read counter");
        assert_eq!(snap.writes(), 0, "{name}: snapshot write counter");
        assert_eq!(snap.forces(), 0, "{name}: snapshot force counter");

        // mutate the origin after the snapshot — and vice versa
        let mut snap = snap;
        disk.write_page(2, &filled_page(2, 0xBB)).expect("origin");
        snap.write_page(3, &filled_page(3, 0xCC)).expect("snap");
        assert_eq!(snap.read_page(2).expect("snap read"), before, "{name}");
        assert!(!disk.is_allocated(3), "{name}: snapshot write leaked back");
    });
}

#[test]
fn force_is_counted_and_loses_nothing() {
    for_each_backend(|disk, name| {
        let p = filled_page(1, 0x77);
        disk.write_page(1, &p).expect("write");
        disk.force().expect("force");
        disk.force().expect("force again");
        assert_eq!(disk.forces(), 2, "{name}: force count");
        assert_eq!(disk.read_page(1).expect("read"), p, "{name}");
        // forced state survives a crash snapshot
        assert_eq!(disk.snapshot().read_page(1).expect("snap"), p, "{name}");
    });
}

#[test]
fn fault_injector_drives_identical_outcomes_on_every_backend() {
    // One plan: lose write #1, tear write #2 at 80 bytes, flip a read bit
    // on read #2, then go permanently offline from write #3.
    let plan = || {
        FaultPlan::new()
            .lose_write(1)
            .tear_write(2, 80)
            .flip_on_read(2, 9, 3)
            .fail_from_write(3)
    };
    for_each_backend(|disk, name| {
        disk.attach_faults(FaultInjector::handle(plan()));
        let a = filled_page(0, 0x01);
        disk.write_page(0, &a).expect("write 0 applies");
        disk.write_page(1, &filled_page(1, 0x02))
            .expect("write 1 lost");
        disk.write_page(2, &filled_page(2, 0x03))
            .expect("write 2 torn");

        assert_eq!(disk.read_page(0).expect("read 0"), a, "{name}");
        assert!(
            matches!(disk.read_page(1), Err(StorageError::Unallocated { .. })),
            "{name}: lost write must leave the frame virgin"
        );
        // read #2 carries the bit flip — on the already-torn frame both
        // corruptions fold into the same typed error
        assert!(
            matches!(disk.read_page(2), Err(StorageError::Corrupt { .. })),
            "{name}: torn+flipped page must fail its checksum"
        );
        assert!(
            matches!(
                disk.write_page(3, &filled_page(3, 0x04)),
                Err(StorageError::Io { .. })
            ),
            "{name}: failed device must error its writes"
        );
        // detaching returns the device to clean operation
        assert!(disk.detach_faults().is_some(), "{name}");
        disk.write_page(3, &filled_page(3, 0x04))
            .expect("clean again");
    });
}

#[test]
fn filedisk_snapshot_copies_survive_origin_drop() {
    // File-specific: the snapshot owns an independent backing file, so it
    // must stay readable after the origin (and its file) are gone.
    let mut disk = BackendKind::file().provision(FRAMES).expect("provision");
    let p = filled_page(6, 0x5E);
    disk.write_page(6, &p).expect("write");
    disk.force().expect("force");
    let snap = disk.snapshot();
    drop(disk);
    assert_eq!(snap.read_page(6).expect("after drop"), p);
}
