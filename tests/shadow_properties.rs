//! Property-based tests of the shadow architectures: arbitrary scripted
//! transactions with crashes must preserve exactly the committed state in
//! the page-table pager, the version-selection store, and both
//! overwriting stores.

use proptest::prelude::*;
use recovery_machines::shadow::{
    AllocPolicy, NoRedoStore, NoUndoStore, OverwriteConfig, ShadowConfig, ShadowPager,
    VersionConfig, VersionStore,
};
use std::collections::HashMap;

const PAGES: u64 = 8;
const SLOT: usize = 16;

#[derive(Debug, Clone)]
enum Op {
    Txn {
        writes: Vec<(u64, u8)>,
        commit: bool,
    },
    Crash,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (
            proptest::collection::vec((0..PAGES, any::<u8>()), 1..4),
            any::<bool>()
        )
            .prop_map(|(writes, commit)| Op::Txn { writes, commit }),
        2 => Just(Op::Crash),
    ]
}

/// Execute a script against a store given closures for the architecture's
/// specific pieces; validates against the oracle after every operation.
macro_rules! script_runner {
    ($fn_name:ident, $ty:ty, $mk_cfg:expr, $new:expr, $recover:expr) => {
        fn $fn_name(ops: Vec<Op>) {
            let cfg = $mk_cfg;
            #[allow(clippy::redundant_closure_call)]
            let mut db: $ty = ($new)(cfg.clone());
            let mut oracle: HashMap<u64, u8> = HashMap::new();
            for op in ops {
                match op {
                    Op::Txn { writes, commit } => {
                        let t = db.begin();
                        let mut deduped: Vec<(u64, u8)> = Vec::new();
                        for (page, byte) in writes {
                            if deduped.iter().any(|&(p, _)| p == page) {
                                continue;
                            }
                            db.write(t, page, 0, &[byte; SLOT]).unwrap();
                            deduped.push((page, byte));
                        }
                        if commit {
                            db.commit(t).unwrap();
                            for (page, byte) in deduped {
                                oracle.insert(page, byte);
                            }
                        } else {
                            db.abort(t).unwrap();
                        }
                    }
                    Op::Crash => {
                        #[allow(clippy::redundant_closure_call)]
                        let recovered: $ty = ($recover)(&db, cfg.clone());
                        db = recovered;
                    }
                }
                let t = db.begin();
                for page in 0..PAGES {
                    let want = vec![oracle.get(&page).copied().unwrap_or(0); SLOT];
                    assert_eq!(db.read(t, page, 0, SLOT).unwrap(), want, "page {page}");
                }
                db.abort(t).unwrap();
            }
        }
    };
}

script_runner!(
    run_pager,
    ShadowPager,
    ShadowConfig {
        logical_pages: PAGES,
        data_frames: PAGES * 3,
        alloc: AllocPolicy::Clustered,
        ..ShadowConfig::default()
    },
    |cfg| ShadowPager::new(cfg).unwrap(),
    |db: &ShadowPager, cfg| ShadowPager::recover(db.crash_image(), cfg).unwrap().0
);

script_runner!(
    run_pager_scrambled,
    ShadowPager,
    ShadowConfig {
        logical_pages: PAGES,
        data_frames: PAGES * 3,
        alloc: AllocPolicy::Scrambled,
        ..ShadowConfig::default()
    },
    |cfg| ShadowPager::new(cfg).unwrap(),
    |db: &ShadowPager, cfg| ShadowPager::recover(db.crash_image(), cfg).unwrap().0
);

script_runner!(
    run_version,
    VersionStore,
    VersionConfig {
        logical_pages: PAGES,
        commit_frames: 16,
    },
    VersionStore::new,
    |db: &VersionStore, cfg| VersionStore::recover(db.crash_image(), cfg).unwrap().0
);

script_runner!(
    run_no_undo,
    NoUndoStore,
    OverwriteConfig {
        logical_pages: PAGES,
        scratch_slots: 10,
    },
    NoUndoStore::new,
    |db: &NoUndoStore, cfg| NoUndoStore::recover(db.crash_image(), cfg).unwrap().0
);

script_runner!(
    run_no_redo,
    NoRedoStore,
    OverwriteConfig {
        logical_pages: PAGES,
        scratch_slots: 10,
    },
    NoRedoStore::new,
    |db: &NoRedoStore, cfg| NoRedoStore::recover(db.crash_image(), cfg).unwrap().0
);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pager_any_script(ops in proptest::collection::vec(op_strategy(), 1..16)) {
        run_pager(ops);
    }

    #[test]
    fn pager_scrambled_any_script(ops in proptest::collection::vec(op_strategy(), 1..16)) {
        run_pager_scrambled(ops);
    }

    #[test]
    fn version_store_any_script(ops in proptest::collection::vec(op_strategy(), 1..16)) {
        run_version(ops);
    }

    #[test]
    fn no_undo_any_script(ops in proptest::collection::vec(op_strategy(), 1..16)) {
        run_no_undo(ops);
    }

    #[test]
    fn no_redo_any_script(ops in proptest::collection::vec(op_strategy(), 1..16)) {
        run_no_redo(ops);
    }
}

/// The no-undo store's commit has a window between the intent write and
/// the install; a crash inside it must still commit (redo), never undo.
#[test]
fn no_undo_mid_commit_crash_always_commits() {
    for pages in 1..6u64 {
        let cfg = OverwriteConfig {
            logical_pages: PAGES,
            scratch_slots: 16,
        };
        let mut db = NoUndoStore::new(cfg.clone());
        let t = db.begin();
        for p in 0..pages {
            db.write(t, p, 0, &[0x5A; SLOT]).unwrap();
        }
        let (dir, entries) = db.commit_stage(t).unwrap();
        let _ = (dir, entries); // crash before install
        let (mut db2, report) = NoUndoStore::recover(db.crash_image(), cfg).unwrap();
        assert_eq!(report.txns_processed, 1);
        let t2 = db2.begin();
        for p in 0..pages {
            assert_eq!(db2.read(t2, p, 0, SLOT).unwrap(), vec![0x5A; SLOT]);
        }
        db2.abort(t2).unwrap();
    }
}
