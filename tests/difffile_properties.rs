//! Property-based tests of the differential-file engine: arbitrary tuple
//! operations with crashes and merges must always present exactly the
//! committed view `R = (B ∪ A) − D`, matched against a straightforward
//! in-memory oracle.

use proptest::prelude::*;
use recovery_machines::difffile::{DiffConfig, DiffDb, ScanStrategy, Tuple};
use std::collections::BTreeMap;

const KEYS: u64 = 12;

#[derive(Debug, Clone)]
enum Op {
    Txn {
        ops: Vec<(u64, Option<u8>)>, // key → Some(insert value) | None(delete)
        commit: bool,
    },
    Crash,
    Merge,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (
            proptest::collection::vec((0..KEYS, proptest::option::of(any::<u8>())), 1..4),
            any::<bool>()
        )
            .prop_map(|(ops, commit)| Op::Txn { ops, commit }),
        2 => Just(Op::Crash),
        1 => Just(Op::Merge),
    ]
}

fn cfg() -> DiffConfig {
    DiffConfig {
        base_capacity: 32,
        a_capacity: 64,
        d_capacity: 64,
        commit_frames: 8,
        ..Default::default()
    }
}

fn verify(db: &mut DiffDb, oracle: &BTreeMap<u64, Vec<u8>>) {
    let t = db.begin();
    let got = db.query(t, |_| true, ScanStrategy::Optimal).unwrap();
    let got_map: BTreeMap<u64, Vec<u8>> = got.into_iter().map(|t| (t.key, t.value)).collect();
    assert_eq!(&got_map, oracle);
    // spot-check point lookups agree with the scan
    for key in 0..KEYS {
        assert_eq!(
            db.get(t, key).unwrap(),
            oracle.get(&key).cloned(),
            "get({key})"
        );
    }
    db.abort(t).unwrap();
}

fn run_script(ops_list: Vec<Op>) {
    let base: Vec<Tuple> = (0..KEYS / 2)
        .map(|k| Tuple {
            key: k,
            value: vec![0xBB; 8],
        })
        .collect();
    let mut oracle: BTreeMap<u64, Vec<u8>> =
        base.iter().map(|t| (t.key, t.value.clone())).collect();
    let mut db = DiffDb::with_base(cfg(), base).unwrap();

    for op in ops_list {
        match op {
            Op::Txn { ops, commit } => {
                let t = db.begin();
                let mut staged: Vec<(u64, Option<Vec<u8>>)> = Vec::new();
                let mut ok = true;
                for (key, action) in ops {
                    if staged.iter().any(|(k, _)| *k == key) {
                        continue;
                    }
                    let result = match action {
                        Some(v) => db
                            .update(t, key, &[v; 4])
                            .map(|()| staged.push((key, Some(vec![v; 4])))),
                        None => db.delete(t, key).map(|()| staged.push((key, None))),
                    };
                    if result.is_err() {
                        ok = false;
                        break;
                    }
                }
                if ok && commit {
                    match db.commit(t) {
                        Ok(()) => {
                            for (key, val) in staged {
                                match val {
                                    Some(v) => {
                                        oracle.insert(key, v);
                                    }
                                    None => {
                                        oracle.remove(&key);
                                    }
                                }
                            }
                        }
                        Err(_) => {
                            // out of differential space: merge and move on
                            let _ = db.merge();
                        }
                    }
                } else {
                    db.abort(t).unwrap();
                }
            }
            Op::Crash => {
                db = DiffDb::recover(db.crash_image(), cfg()).unwrap();
            }
            Op::Merge => {
                db.merge().unwrap();
            }
        }
        verify(&mut db, &oracle);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn any_script_presents_committed_view(
        ops in proptest::collection::vec(op_strategy(), 1..16)
    ) {
        run_script(ops);
    }

    #[test]
    fn serial_and_parallel_queries_always_agree(
        updates in proptest::collection::vec((0..KEYS, any::<u8>()), 1..10),
        workers in 1usize..5,
    ) {
        let base: Vec<Tuple> = (0..KEYS).map(|k| Tuple { key: k, value: vec![1; 4] }).collect();
        let mut db = DiffDb::with_base(cfg(), base).unwrap();
        let t = db.begin();
        for (key, v) in updates {
            let _ = db.update(t, key, &[v; 4]);
        }
        db.commit(t).unwrap();
        let q = db.begin();
        let serial = db.query(q, |t| t.key % 2 == 0, ScanStrategy::Optimal).unwrap();
        let parallel = db
            .query_parallel(q, |t| t.key % 2 == 0, ScanStrategy::Optimal, workers)
            .unwrap();
        db.abort(q).unwrap();
        prop_assert_eq!(serial, parallel);
    }

    #[test]
    fn basic_and_optimal_return_identical_results(
        dels in proptest::collection::vec(0..KEYS, 0..6),
    ) {
        let base: Vec<Tuple> = (0..KEYS).map(|k| Tuple { key: k, value: vec![2; 4] }).collect();
        let mut db = DiffDb::with_base(cfg(), base).unwrap();
        let t = db.begin();
        for key in dels {
            let _ = db.delete(t, key);
        }
        db.commit(t).unwrap();
        let q = db.begin();
        let basic = db.query(q, |_| true, ScanStrategy::Basic).unwrap();
        let optimal = db.query(q, |_| true, ScanStrategy::Optimal).unwrap();
        db.abort(q).unwrap();
        prop_assert_eq!(basic, optimal, "strategy must never change results");
    }
}
