//! Stress tests for the concurrent transaction pipeline (`rmdb-exec`):
//! invariant conservation under contention, and byte-identical crash
//! recovery of concurrent runs against a committed-state oracle.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use recovery_machines::exec::{ExecConfig, ExecDb, Executor};
use recovery_machines::wal::{WalConfig, WalDb};
use std::sync::Arc;

const ACCOUNTS: u64 = 16;
const INITIAL: u64 = 100;

fn bank_cfg(seed: u64) -> ExecConfig {
    ExecConfig {
        wal: WalConfig {
            data_pages: 64,
            pool_frames: 24,
            log_streams: 3,
            log_frames: 4096,
            seed,
            ..WalConfig::default()
        },
        pool_shards: 4,
        ..ExecConfig::default()
    }
}

fn read_balance(db: &ExecDb, ctx_page: u64) -> u64 {
    let mut t = db.begin(0);
    let bytes = db.read(&mut t, ctx_page, 0, 8).expect("read balance");
    db.commit(t).expect("commit").wait().expect("ack");
    u64::from_le_bytes(bytes.try_into().unwrap())
}

fn seed_accounts(db: &ExecDb) {
    let mut t = db.begin(0);
    for acct in 0..ACCOUNTS {
        db.write(&mut t, acct, 0, &INITIAL.to_le_bytes()).unwrap();
    }
    db.commit(t).unwrap().wait().unwrap();
}

/// Transfer a random amount between two distinct random accounts; the
/// total must be conserved no matter how transfers interleave.
fn transfer_storm(db: &Arc<ExecDb>, workers: usize, txns_per_worker: usize, seed: u64) {
    crossbeam::thread::scope(|s| {
        for w in 0..workers {
            let db = Arc::clone(db);
            s.spawn(move |_| {
                let mut rng = StdRng::seed_from_u64(seed ^ (w as u64) << 17);
                for _ in 0..txns_per_worker {
                    let from = rng.gen_range(0..ACCOUNTS);
                    let mut to = rng.gen_range(0..ACCOUNTS);
                    while to == from {
                        to = rng.gen_range(0..ACCOUNTS);
                    }
                    let amount = rng.gen_range(1..10u64);
                    db.run_txn(w, |ctx| {
                        let a = u64::from_le_bytes(ctx.read(from, 0, 8)?.try_into().unwrap());
                        let b = u64::from_le_bytes(ctx.read(to, 0, 8)?.try_into().unwrap());
                        let moved = amount.min(a); // never overdraw
                        ctx.write(from, 0, &(a - moved).to_le_bytes())?;
                        ctx.write(to, 0, &(b + moved).to_le_bytes())
                    })
                    .expect("transfer txn");
                }
            });
        }
    })
    .unwrap();
}

#[test]
fn bank_transfers_conserve_total_balance() {
    for workers in [1usize, 2, 4] {
        let db = Arc::new(ExecDb::new(bank_cfg(0xBA2C + workers as u64)));
        seed_accounts(&db);
        transfer_storm(&db, workers, 50, 7 * workers as u64 + 1);
        let total: u64 = (0..ACCOUNTS).map(|a| read_balance(&db, a)).sum();
        assert_eq!(
            total,
            ACCOUNTS * INITIAL,
            "{workers} workers: money created or destroyed"
        );
        let stats = db.stats();
        assert_eq!(stats.starved, 0, "{workers} workers: starvation");
        assert_eq!(
            stats.committed,
            // seeding txn + transfers + one read-only txn per account
            1 + 50 * workers as u64 + ACCOUNTS,
            "{workers} workers: commit count"
        );
    }
}

/// After a quiesced concurrent run (every commit acked), a crash image
/// must recover byte-identical to the live committed state — for every
/// worker count.
#[test]
fn quiesced_concurrent_run_recovers_byte_identical() {
    for workers in [1usize, 2, 4] {
        let cfg = bank_cfg(0x1DE0 + workers as u64);
        let db = Arc::new(ExecDb::new(cfg.clone()));
        seed_accounts(&db);
        transfer_storm(&db, workers, 40, 31 * workers as u64 + 5);

        // committed-state oracle: the live engine's own reads, quiesced
        let oracle: Vec<Vec<u8>> = {
            let mut t = db.begin(0);
            let pages = (0..cfg.wal.data_pages)
                .map(|p| db.read(&mut t, p, 0, 64).expect("oracle read"))
                .collect();
            db.commit(t).unwrap().wait().unwrap();
            pages
        };

        let image = db.crash_image().expect("crash image");
        let (mut recovered, _report) = WalDb::recover(image, cfg.wal.clone()).expect("recover");
        let t = recovered.begin();
        for (page, expect) in oracle.iter().enumerate() {
            let got = recovered.read(t, page as u64, 0, 64).expect("read");
            assert_eq!(
                &got, expect,
                "{workers} workers: page {page} not byte-identical after recovery"
            );
        }
    }
}

/// A crash image taken *mid-run* (workers still transferring) recovers to
/// a state that still conserves the total balance: group commit never
/// exposes a half-applied transfer.
#[test]
fn mid_run_crash_image_conserves_balance() {
    let cfg = bank_cfg(0xC4A5);
    let db = Arc::new(ExecDb::new(cfg.clone()));
    seed_accounts(&db);
    let mut images = Vec::new();
    crossbeam::thread::scope(|s| {
        for w in 0..3usize {
            let db = Arc::clone(&db);
            s.spawn(move |_| {
                let mut rng = StdRng::seed_from_u64(0x5EED ^ (w as u64) << 9);
                for _ in 0..60 {
                    let from = rng.gen_range(0..ACCOUNTS);
                    let mut to = rng.gen_range(0..ACCOUNTS);
                    while to == from {
                        to = rng.gen_range(0..ACCOUNTS);
                    }
                    db.run_txn(w, |ctx| {
                        let a = u64::from_le_bytes(ctx.read(from, 0, 8)?.try_into().unwrap());
                        let b = u64::from_le_bytes(ctx.read(to, 0, 8)?.try_into().unwrap());
                        let moved = 5u64.min(a);
                        ctx.write(from, 0, &(a - moved).to_le_bytes())?;
                        ctx.write(to, 0, &(b + moved).to_le_bytes())
                    })
                    .expect("transfer txn");
                }
            });
        }
        // snapshot while the storm is in full swing, several times
        for _ in 0..3 {
            std::thread::sleep(std::time::Duration::from_millis(5));
            images.push(db.crash_image().expect("mid-run crash image"));
        }
    })
    .unwrap();
    for (i, image) in images.into_iter().enumerate() {
        let (mut recovered, _) = WalDb::recover(image, cfg.wal.clone()).expect("recover");
        let t = recovered.begin();
        let total: u64 = (0..ACCOUNTS)
            .map(|p| u64::from_le_bytes(recovered.read(t, p, 0, 8).unwrap().try_into().unwrap()))
            .sum();
        assert_eq!(
            total,
            ACCOUNTS * INITIAL,
            "image {i}: balance not conserved"
        );
    }
}

/// Double-entry accounting over the observability registry: after a
/// quiesced bank run the pipeline's independently-maintained counter
/// pairs must balance exactly. Each side of every law is incremented by
/// a different thread at a different layer, so agreement is evidence
/// the pipeline lost nothing — not a restatement of one counter.
#[test]
fn metrics_obey_conservation_laws() {
    for workers in [1usize, 2, 4] {
        let cfg = bank_cfg(0x0B5 + workers as u64);
        let streams = cfg.wal.log_streams;
        let db = Arc::new(ExecDb::new(cfg));
        seed_accounts(&db);
        transfer_storm(&db, workers, 50, 13 * workers as u64 + 3);
        // settle the appender queues so producer/consumer counters meet
        db.drain_appenders().expect("drain appenders");
        let snap = db.metrics();
        let c = |name: &str| snap.counter(name).unwrap_or(0);

        // Law 1: every commit ack a worker observed corresponds to one
        // group-commit completion the daemon recorded (read-only commits
        // bypass the daemon and are excluded from both sides).
        assert_eq!(
            c("txn.commits_acked"),
            c("group.completions"),
            "{workers} workers: acks vs completions"
        );
        assert!(c("txn.commits_acked") > 0, "no commits went through");

        // Law 2: per stream, every fragment the producers enqueued was
        // appended by the log-processor thread (nothing stuck, nothing
        // invented). Also check the rollup across the bank.
        for s in 0..streams {
            assert_eq!(
                c(&format!("wal.fragments_enqueued.s{s}")),
                c(&format!("wal.fragments_appended.s{s}")),
                "{workers} workers: stream {s} enqueue/append imbalance"
            );
        }
        let enq = snap.counter_family("wal.fragments_enqueued.");
        let app = snap.counter_family("wal.fragments_appended.");
        assert_eq!(enq, app, "{workers} workers: total enqueue/append");
        assert!(enq > 0, "no fragments flowed");

        // Law 3: the pool counts lookups independently of the hit/miss
        // split; the split must tile the lookups exactly, per shard.
        let g = |name: &str| snap.gauge(name).unwrap_or(0);
        assert_eq!(
            g("pool.hits") + g("pool.misses"),
            g("pool.lookups"),
            "{workers} workers: pool split does not tile lookups"
        );
        assert!(g("pool.lookups") > 0, "pool never consulted");
        let (hits, misses) = db.pool_hit_miss();
        assert_eq!(g("pool.hits"), hits);
        assert_eq!(g("pool.misses"), misses);

        // Latency evidence: the commit histogram saw every daemon commit
        let h = snap.histogram("txn.commit_us").expect("commit histogram");
        assert!(h.count > 0 && h.quantile(0.99) >= h.quantile(0.5));
    }
}

/// Snapshot-consistency oracle: while a transfer storm runs, concurrent
/// lock-free readers open MVCC snapshots and assert the bank-transfer
/// conservation invariant *inside every snapshot*. A transfer moves
/// value between two pages in one transaction, so any snapshot that
/// caught a half-applied transfer — or mixed two different commit
/// points — reads a wrong total. Afterwards, a quiesced check that the
/// GC watermark reclaims every version but the newest per page.
#[test]
fn snapshot_readers_see_conserved_balance_during_storm() {
    let db = Arc::new(ExecDb::new(bank_cfg(0x53AB)));
    seed_accounts(&db);
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    crossbeam::thread::scope(|s| {
        // lock-free readers: sum all accounts inside one snapshot, over
        // and over, while the writers run
        let mut readers = Vec::new();
        for r in 0..3usize {
            let db = Arc::clone(&db);
            let stop = Arc::clone(&stop);
            readers.push(s.spawn(move |_| {
                let mut checked = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Acquire) {
                    let total = db
                        .run_ro_txn(r, |snap| {
                            let mut sum = 0u64;
                            for acct in 0..ACCOUNTS {
                                let b = snap.read(acct, 0, 8)?;
                                sum += u64::from_le_bytes(b.try_into().unwrap());
                            }
                            Ok(sum)
                        })
                        .expect("snapshot read must never error");
                    assert_eq!(
                        total,
                        ACCOUNTS * INITIAL,
                        "reader {r}: snapshot saw a torn transfer"
                    );
                    checked += 1;
                }
                checked
            }));
        }
        transfer_storm(&db, 3, 60, 0x53AB);
        stop.store(true, std::sync::atomic::Ordering::Release);
        let checked: u64 = readers.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(checked > 0, "readers never completed a snapshot");
    })
    .unwrap();

    // quiesced GC check: with no snapshots open, the watermark sits at
    // the published LSN and a sweep reclaims all but the newest version
    // of every versioned page
    let mvcc = db.mvcc();
    assert_eq!(mvcc.open_snapshots(), 0, "a snapshot guard leaked");
    db.mvcc_gc();
    let snap = db.metrics();
    let c = |name: &str| snap.counter(name).unwrap_or(0);
    let pages_versioned = snap.gauge("mvcc.pages_versioned").unwrap_or(0);
    assert_eq!(
        mvcc.live_versions(),
        pages_versioned,
        "GC left more than one live version on some page"
    );
    assert!(
        pages_versioned >= ACCOUNTS,
        "fewer versioned pages than accounts"
    );
    // conservation law: every installed version was either pruned or is
    // still live — the registry never lost track of one
    assert_eq!(
        c("mvcc.versions_installed"),
        c("mvcc.versions_pruned") + mvcc.live_versions(),
        "mvcc version conservation violated"
    );
    assert!(c("mvcc.versions_installed") > 0, "no versions ever flowed");
    assert!(c("mvcc.ro_txns") > 0, "ro-txn counter never moved");
    assert_eq!(snap.gauge("mvcc.snapshots_open"), Some(0));
}

/// The bounded executor keeps every submission and survives far more
/// jobs than its queue depth (backpressure, not loss).
#[test]
fn executor_backpressure_loses_nothing() {
    let db = Arc::new(ExecDb::new(bank_cfg(0xEC5)));
    let pool = Executor::new(4, 2);
    let mut handles = Vec::new();
    for i in 0..200u64 {
        let db = Arc::clone(&db);
        handles.push(pool.submit(move || {
            db.run_txn((i % 4) as usize, |ctx| {
                ctx.write(i % 64, 0, &i.to_le_bytes())
            })
        }));
    }
    for h in handles {
        h.wait().expect("txn via executor");
    }
    pool.join();
    assert_eq!(db.stats().committed, 200);
}
