//! Property tests for the NVMe-class service-time model.
//!
//! The model underwrites the scaling bench's numbers, so its own laws get
//! pinned down here:
//!
//! * **conservation** — after any mix of reads/writes/forces across any
//!   number of namespaces sharing one controller, draining the queues
//!   leaves completions equal to submissions (no lost or phantom I/Os);
//! * **bounded latency** — every observed service-time sample lies within
//!   `[base_us, max_us]` of the configured band, whatever the workload;
//! * **determinism** — a fixed seed and a fixed sequential workload
//!   reproduce the exact same latency accounting, run after run.

use proptest::prelude::*;
use recovery_machines::storage::{BackendKind, Disk, NvmeConfig, Page, PageId};

const FRAMES: u64 = 32;

/// One modeled I/O op: (frame, write?, force-after?).
fn op_strategy() -> impl Strategy<Value = (u64, bool, bool)> {
    (0..FRAMES, any::<bool>(), any::<bool>())
}

fn run_ops(disk: &mut Disk, ops: &[(u64, bool, bool)]) {
    for &(frame, is_write, force) in ops {
        if is_write {
            let mut p = Page::new(PageId(frame));
            p.write_at(0, &frame.to_le_bytes());
            disk.write_page(frame, &p).expect("write");
        } else {
            // virgin frames error Unallocated — the submission still pays
            // its modeled service time, which is what we're testing
            let _ = disk.read_page(frame);
        }
        if force {
            disk.force().expect("force");
        }
    }
}

/// The controller behind an NVMe-backed `Disk`.
fn model(disk: &Disk) -> &recovery_machines::storage::NvmeModel {
    match disk {
        Disk::Nvme(d) => d.model(),
        other => panic!("expected nvme disk, got {}", other.kind()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn completions_equal_submissions_at_drain(
        ops in proptest::collection::vec(op_strategy(), 1..80),
        namespaces in 1usize..4,
        seed in any::<u64>(),
    ) {
        let cfg = NvmeConfig { seed, ..NvmeConfig::default() };
        let bk = BackendKind::nvme_shared(cfg);
        let mut disks: Vec<Disk> =
            (0..namespaces).map(|_| bk.provision(FRAMES).expect("provision")).collect();
        for d in &mut disks {
            run_ops(d, &ops);
        }
        let m = model(&disks[0]);
        let (submitted, completed) = m.drain();
        prop_assert_eq!(submitted, completed, "conservation at drain");
        prop_assert!(submitted > 0, "workload submitted nothing");
        prop_assert_eq!(m.queue_depth(), 0, "drained queues are empty");
    }

    #[test]
    fn latency_samples_stay_inside_configured_band(
        ops in proptest::collection::vec(op_strategy(), 1..80),
        base_us in 1u64..50,
        extra in 0u64..200,
        per_qd_us in 0u64..30,
        seed in any::<u64>(),
    ) {
        let cfg = NvmeConfig {
            base_us,
            per_qd_us,
            max_us: base_us + extra,
            seed,
            realtime: false,
        };
        let mut disk = BackendKind::nvme(cfg).provision(FRAMES).expect("provision");
        run_ops(&mut disk, &ops);
        let m = model(&disk);
        let (min, max) = m.latency_bounds();
        prop_assert!(min >= cfg.base_us, "min {} below base {}", min, cfg.base_us);
        prop_assert!(max <= cfg.max_us, "max {} above ceiling {}", max, cfg.max_us);
        let mean = m.mean_latency_us();
        prop_assert!(mean >= min && mean <= max, "mean outside observed bounds");
    }

    #[test]
    fn fixed_seed_reproduces_identical_accounting(
        ops in proptest::collection::vec(op_strategy(), 1..60),
        seed in any::<u64>(),
    ) {
        let cfg = NvmeConfig { seed, ..NvmeConfig::default() };
        let run = || {
            let mut disk = BackendKind::nvme(cfg).provision(FRAMES).expect("provision");
            run_ops(&mut disk, &ops);
            let m = model(&disk);
            (
                m.submissions(),
                m.completions(),
                m.latency_bounds(),
                m.mean_latency_us(),
            )
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a, b, "same seed + same sequential workload must replay exactly");
    }
}
