//! Cross-architecture crash-consistency: every page-granular recovery
//! engine must agree with a committed-state oracle after arbitrary crash
//! points, for many seeds.
//!
//! This is the repository's flagship correctness suite: the same random
//! transaction storm runs against all five architectures through the
//! [`recovery_machines::core::PageStore`] trait, with a crash + recovery
//! after every burst.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use recovery_machines::core::PageStore;
use recovery_machines::shadow::{
    NoRedoStore, NoUndoStore, OverwriteConfig, ShadowConfig, ShadowPager, VersionConfig,
    VersionStore,
};
use recovery_machines::wal::{LogMode, SelectionPolicy, WalConfig, WalDb};
use std::collections::HashMap;

const PAGES: u64 = 16;
const SLOT: usize = 24;

type Oracle = HashMap<u64, Vec<u8>>;

fn storm<S: PageStore>(store: &mut S, oracle: &mut Oracle, rng: &mut StdRng, ops: usize) {
    for _ in 0..ops {
        let txn = store.begin();
        let mut staged: Vec<(u64, Vec<u8>)> = Vec::new();
        for _ in 0..rng.gen_range(1..4) {
            let page = rng.gen_range(0..PAGES);
            if staged.iter().any(|(p, _)| *p == page) {
                continue;
            }
            let mut data = vec![0u8; SLOT];
            rng.fill(&mut data[..]);
            store.write(txn, page, 0, &data).expect("write");
            staged.push((page, data));
        }
        if rng.gen_bool(0.7) {
            store.commit(txn).expect("commit");
            for (page, data) in staged {
                oracle.insert(page, data);
            }
        } else {
            store.abort(txn).expect("abort");
        }
    }
}

fn verify<S: PageStore>(store: &mut S, oracle: &Oracle, context: &str) {
    let txn = store.begin();
    for page in 0..PAGES {
        let got = store.read(txn, page, 0, SLOT).expect("read");
        let want = oracle.get(&page).cloned().unwrap_or_else(|| vec![0; SLOT]);
        assert_eq!(
            got,
            want,
            "{} [{context}]: page {page} diverged",
            store.architecture()
        );
    }
    store.abort(txn).expect("read-only abort");
}

/// Drive one architecture through `rounds` storm+crash cycles.
macro_rules! crash_cycle_test {
    ($name:ident, $ty:ty, $cfg:expr, $new:expr, $recover:expr) => {
        #[test]
        fn $name() {
            for seed in [1u64, 7, 1985, 4242] {
                let cfg = $cfg;
                let mut rng = StdRng::seed_from_u64(seed);
                #[allow(clippy::redundant_closure_call)]
                let mut store: $ty = ($new)(cfg.clone());
                let mut oracle = Oracle::new();
                for round in 0..4 {
                    storm(&mut store, &mut oracle, &mut rng, 25);
                    // leave a transaction hanging over the crash sometimes
                    if rng.gen_bool(0.5) {
                        let t = store.begin();
                        let _ = store.write(t, rng.gen_range(0..PAGES), 0, b"doomed");
                    }
                    #[allow(clippy::redundant_closure_call)]
                    let recovered: $ty = ($recover)(&store, cfg.clone());
                    store = recovered;
                    verify(&mut store, &oracle, &format!("seed {seed} crash {round}"));
                    // and the engine still works after recovery
                    storm(&mut store, &mut oracle, &mut rng, 5);
                    verify(&mut store, &oracle, &format!("seed {seed} post {round}"));
                }
            }
        }
    };
}

crash_cycle_test!(
    wal_logical_survives_crashes,
    WalDb,
    WalConfig {
        data_pages: PAGES,
        pool_frames: 3,
        log_streams: 3,
        policy: SelectionPolicy::Cyclic,
        ..WalConfig::default()
    },
    WalDb::new,
    |db: &WalDb, cfg| WalDb::recover(db.crash_image(), cfg).expect("recover").0
);

crash_cycle_test!(
    wal_physical_survives_crashes,
    WalDb,
    WalConfig {
        data_pages: PAGES,
        pool_frames: 3,
        log_streams: 2,
        log_mode: LogMode::Physical,
        log_frames: 1 << 14,
        ..WalConfig::default()
    },
    WalDb::new,
    |db: &WalDb, cfg| WalDb::recover(db.crash_image(), cfg).expect("recover").0
);

crash_cycle_test!(
    wal_random_selection_survives_crashes,
    WalDb,
    WalConfig {
        data_pages: PAGES,
        pool_frames: 3,
        log_streams: 4,
        policy: SelectionPolicy::Random,
        ..WalConfig::default()
    },
    WalDb::new,
    |db: &WalDb, cfg| WalDb::recover(db.crash_image(), cfg).expect("recover").0
);

crash_cycle_test!(
    shadow_pager_survives_crashes,
    ShadowPager,
    ShadowConfig {
        logical_pages: PAGES,
        data_frames: PAGES * 4,
        ..ShadowConfig::default()
    },
    |cfg| ShadowPager::new(cfg).expect("new"),
    |db: &ShadowPager, cfg| ShadowPager::recover(db.crash_image(), cfg)
        .expect("recover")
        .0
);

crash_cycle_test!(
    version_store_survives_crashes,
    VersionStore,
    VersionConfig {
        logical_pages: PAGES,
        commit_frames: 8,
    },
    VersionStore::new,
    |db: &VersionStore, cfg| VersionStore::recover(db.crash_image(), cfg)
        .expect("recover")
        .0
);

crash_cycle_test!(
    no_undo_survives_crashes,
    NoUndoStore,
    OverwriteConfig {
        logical_pages: PAGES,
        scratch_slots: 12,
    },
    NoUndoStore::new,
    |db: &NoUndoStore, cfg| NoUndoStore::recover(db.crash_image(), cfg)
        .expect("recover")
        .0
);

crash_cycle_test!(
    no_redo_survives_crashes,
    NoRedoStore,
    OverwriteConfig {
        logical_pages: PAGES,
        scratch_slots: 12,
    },
    NoRedoStore::new,
    |db: &NoRedoStore, cfg| NoRedoStore::recover(db.crash_image(), cfg)
        .expect("recover")
        .0
);

/// All architectures fed the *identical* operation stream end up with the
/// identical committed state.
#[test]
fn architectures_agree_with_each_other() {
    let seed = 99;

    fn final_state<S: PageStore>(store: &mut S, seed: u64) -> Vec<Vec<u8>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut oracle = Oracle::new();
        storm(store, &mut oracle, &mut rng, 60);
        let txn = store.begin();
        let state = (0..PAGES)
            .map(|p| store.read(txn, p, 0, SLOT).expect("read"))
            .collect();
        store.abort(txn).expect("abort");
        state
    }

    let wal = final_state(
        &mut WalDb::new(WalConfig {
            data_pages: PAGES,
            ..WalConfig::default()
        }),
        seed,
    );
    let shadow = final_state(
        &mut ShadowPager::new(ShadowConfig {
            logical_pages: PAGES,
            data_frames: PAGES * 4,
            ..ShadowConfig::default()
        })
        .expect("new"),
        seed,
    );
    let version = final_state(
        &mut VersionStore::new(VersionConfig {
            logical_pages: PAGES,
            commit_frames: 8,
        }),
        seed,
    );
    let no_undo = final_state(
        &mut NoUndoStore::new(OverwriteConfig {
            logical_pages: PAGES,
            scratch_slots: 16,
        }),
        seed,
    );
    let no_redo = final_state(
        &mut NoRedoStore::new(OverwriteConfig {
            logical_pages: PAGES,
            scratch_slots: 16,
        }),
        seed,
    );

    assert_eq!(wal, shadow, "WAL vs shadow pager");
    assert_eq!(wal, version, "WAL vs version selection");
    assert_eq!(wal, no_undo, "WAL vs no-undo");
    assert_eq!(wal, no_redo, "WAL vs no-redo");
}
