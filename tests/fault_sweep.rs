//! Crashpoint sweep: every architecture survives a *device-level* fault
//! storm — torn writes, lost writes, transient I/O errors, read bit flips —
//! composed with a crash after the k-th frame write, for many seeds and
//! many crashpoints, with zero divergence from a committed-state oracle.
//!
//! This goes beyond `crash_consistency.rs` (which crashes only between
//! transaction bursts, on a clean device): here the crash lands in the
//! middle of whatever multi-frame protocol the engine happens to be
//! running — half-written shadow tables, torn commit-list appends,
//! partially installed no-undo directories — and the device lies on the
//! way down.
//!
//! Oracle semantics under faults: the engines absorb every *transient*
//! fault internally (verified writes and retried reads, with more retries
//! than any seeded fault's attempt budget), so the only error a
//! transaction can observe is the crash itself. A transaction whose
//! `commit` returns the crash error is *ambiguous* — the commit point may
//! or may not have hit the platter — so each page it wrote may legally
//! read as either the old or the new value after recovery. Every other
//! outcome is strict.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use recovery_machines::core::PageStore;
use recovery_machines::difffile::{
    CrashSite, DiffConfig, DiffDb, LsmConfig, LsmError, LsmRecoveryReport, LsmStore, ScanStrategy,
};
use recovery_machines::shadow::{
    NoRedoStore, NoUndoStore, OverwriteConfig, ShadowConfig, ShadowPager, VersionConfig,
    VersionStore,
};
use recovery_machines::storage::{
    BackendKind, BlockDevice, Disk, FaultInjector, FaultPlan, StorageError, FRAME_SIZE,
};
use recovery_machines::wal::{LogMode, SelectionPolicy, WalConfig, WalDb};
use std::collections::{BTreeMap, HashMap};

const PAGES: u64 = 16;
const SLOT: usize = 24;
const SEEDS: [u64; 8] = [1, 2, 7, 11, 42, 1985, 4242, 31337];
const CRASHPOINTS: [u64; 5] = [3, 17, 41, 97, 211];
/// Reduced grid for the real-file backend: every write is a pwrite and
/// every force an fdatasync, so the full grid would dominate CI time
/// without exercising anything the three-by-three doesn't.
const FILE_SEEDS: [u64; 3] = [7, 1985, 31337];
const FILE_CRASHPOINTS: [u64; 3] = [17, 41, 97];

/// Acceptable values per page. One candidate = strict; two = the page was
/// written by the single ambiguous (crash-interrupted) commit.
type Oracle = HashMap<u64, Vec<Vec<u8>>>;

fn zeros() -> Vec<Vec<u8>> {
    vec![vec![0u8; SLOT]]
}

/// Run transactions until the crash surfaces (or `max_ops` run out).
/// Returns true once an operation observed the crash.
fn faulty_storm<S: PageStore>(
    store: &mut S,
    oracle: &mut Oracle,
    rng: &mut StdRng,
    max_ops: usize,
) -> bool {
    for _ in 0..max_ops {
        let txn = store.begin();
        let mut staged: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut doomed = false;
        for _ in 0..rng.gen_range(1..4) {
            let page = rng.gen_range(0..PAGES);
            if staged.iter().any(|(p, _)| *p == page) {
                continue;
            }
            let mut data = vec![0u8; SLOT];
            rng.fill(&mut data[..]);
            if let Err(e) = store.write(txn, page, 0, &data) {
                // loser: nothing it wrote may survive recovery
                eprintln!("[storm] write error: {e}");
                doomed = true;
                break;
            }
            staged.push((page, data));
        }
        if doomed {
            return true;
        }
        if rng.gen_bool(0.7) {
            match store.commit(txn) {
                Ok(()) => {
                    for (page, data) in staged {
                        oracle.insert(page, vec![data]);
                    }
                }
                Err(e) => {
                    // ambiguous: the commit point may or may not be durable
                    eprintln!("[storm] commit error: {e}");
                    for (page, data) in staged {
                        oracle.entry(page).or_insert_with(zeros).push(data);
                    }
                    return true;
                }
            }
        } else if let Err(e) = store.abort(txn) {
            eprintln!("[storm] abort error: {e}");
            return true;
        }
    }
    false
}

/// Check every page reads as one of its acceptable values, then pin the
/// oracle to what the recovered store actually holds (recovery resolved
/// any ambiguity one way or the other — durably).
fn verify_and_pin<S: PageStore>(store: &mut S, oracle: &mut Oracle, context: &str) {
    let txn = store.begin();
    for page in 0..PAGES {
        let got = store.read(txn, page, 0, SLOT).expect("read after recovery");
        let acceptable = oracle.get(&page).cloned().unwrap_or_else(zeros);
        assert!(
            acceptable.contains(&got),
            "{} [{context}]: page {page} diverged: got {got:?}, acceptable {acceptable:?}",
            store.architecture()
        );
        oracle.insert(page, vec![got]);
    }
    store.abort(txn).expect("read-only abort");
}

/// Sweep one architecture: seeded device faults + crash after write k,
/// for every (seed, crashpoint) pair.
macro_rules! sweep_test {
    ($name:ident, $ty:ty, $cfg:expr, $new:expr, $recover:expr) => {
        sweep_test!($name, $ty, $cfg, $new, $recover, SEEDS, CRASHPOINTS);
    };
    ($name:ident, $ty:ty, $cfg:expr, $new:expr, $recover:expr,
     $seeds:expr, $crashpoints:expr) => {
        #[test]
        fn $name() {
            let mut crash_hits = 0usize;
            for seed in $seeds {
                for crashpoint in $crashpoints {
                    let cfg = $cfg;
                    let mut rng = StdRng::seed_from_u64(seed ^ (crashpoint << 32));
                    #[allow(clippy::redundant_closure_call)]
                    let mut store: $ty = ($new)(cfg.clone());
                    let plan = FaultPlan::seeded(seed, 1 << 20).crash_after_write(crashpoint);
                    let handle = FaultInjector::handle(plan);
                    store.attach_faults(&handle);

                    let mut oracle = Oracle::new();
                    let errored = faulty_storm(&mut store, &mut oracle, &mut rng, 600);
                    let (injector_crashed, writes_seen) = {
                        let inj = handle.lock();
                        (inj.crashed(), inj.writes())
                    };
                    // The storm must stop on an error: usually the
                    // scheduled crash, occasionally an exhausted retry on a
                    // clustered run of seeded transients. Either way the
                    // platter is frozen mid-protocol — exactly what
                    // recovery must survive.
                    assert!(
                        errored,
                        "seed {seed} crashpoint {crashpoint}: storm ran dry without an \
                         error (writes seen: {writes_seen})"
                    );
                    crash_hits += usize::from(injector_crashed);

                    // recovery must succeed on whatever the device holds
                    #[allow(clippy::redundant_closure_call)]
                    let mut store: $ty = ($recover)(&store, cfg.clone());
                    let ctx = format!("seed {seed} crashpoint {crashpoint}");
                    verify_and_pin(&mut store, &mut oracle, &ctx);

                    // and the engine still works on the clean device
                    let crashed = faulty_storm(&mut store, &mut oracle, &mut rng, 10);
                    assert!(!crashed, "{ctx}: error after recovery on a clean device");
                    verify_and_pin(&mut store, &mut oracle, &format!("{ctx} post"));
                }
            }
            // the sweep must actually sweep: the scheduled crash has to
            // fire in the large majority of runs
            let grid = $seeds.len() * $crashpoints.len();
            assert!(
                crash_hits * 2 >= grid,
                "scheduled crash fired in only {crash_hits}/{grid} runs"
            );
        }
    };
}

// The same storm on a real file: every platter (data disk, doublewrite
// slots, log streams, crash-image copies) is an actual temp file with
// pwrite/fdatasync durability. Torn writes land real prefixes in the file;
// recovery runs against a file copy. Cleanup needs no scaffolding: a
// `FileDisk` deletes its backing file on drop, including during a panic
// unwind, so a failing sweep leaves no litter in the temp dir.
sweep_test!(
    wal_logical_survives_fault_sweep_on_filedisk,
    WalDb,
    WalConfig {
        data_pages: PAGES,
        pool_frames: 3,
        log_streams: 2,
        policy: SelectionPolicy::Cyclic,
        backend: BackendKind::file(),
        ..WalConfig::default()
    },
    WalDb::new,
    |db: &WalDb, cfg| WalDb::recover(db.crash_image(), cfg).expect("recover").0,
    FILE_SEEDS,
    FILE_CRASHPOINTS
);

sweep_test!(
    shadow_pager_survives_fault_sweep_on_filedisk,
    ShadowPager,
    ShadowConfig {
        logical_pages: PAGES,
        data_frames: PAGES * 4,
        backend: BackendKind::file(),
        ..ShadowConfig::default()
    },
    |cfg| ShadowPager::new(cfg).expect("new"),
    |db: &ShadowPager, cfg| ShadowPager::recover(db.crash_image(), cfg)
        .expect("recover")
        .0,
    FILE_SEEDS,
    FILE_CRASHPOINTS
);

sweep_test!(
    wal_logical_survives_fault_sweep,
    WalDb,
    WalConfig {
        data_pages: PAGES,
        pool_frames: 3,
        log_streams: 3,
        policy: SelectionPolicy::Cyclic,
        ..WalConfig::default()
    },
    WalDb::new,
    |db: &WalDb, cfg| WalDb::recover(db.crash_image(), cfg).expect("recover").0
);

sweep_test!(
    wal_physical_survives_fault_sweep,
    WalDb,
    WalConfig {
        data_pages: PAGES,
        pool_frames: 3,
        log_streams: 2,
        log_mode: LogMode::Physical,
        log_frames: 1 << 14,
        ..WalConfig::default()
    },
    WalDb::new,
    |db: &WalDb, cfg| WalDb::recover(db.crash_image(), cfg).expect("recover").0
);

sweep_test!(
    shadow_pager_survives_fault_sweep,
    ShadowPager,
    ShadowConfig {
        logical_pages: PAGES,
        data_frames: PAGES * 4,
        ..ShadowConfig::default()
    },
    |cfg| ShadowPager::new(cfg).expect("new"),
    |db: &ShadowPager, cfg| ShadowPager::recover(db.crash_image(), cfg)
        .expect("recover")
        .0
);

sweep_test!(
    version_store_survives_fault_sweep,
    VersionStore,
    VersionConfig {
        logical_pages: PAGES,
        commit_frames: 8,
    },
    VersionStore::new,
    |db: &VersionStore, cfg| VersionStore::recover(db.crash_image(), cfg)
        .expect("recover")
        .0
);

sweep_test!(
    no_undo_survives_fault_sweep,
    NoUndoStore,
    OverwriteConfig {
        logical_pages: PAGES,
        scratch_slots: 16,
    },
    NoUndoStore::new,
    |db: &NoUndoStore, cfg| NoUndoStore::recover(db.crash_image(), cfg)
        .expect("recover")
        .0
);

sweep_test!(
    no_redo_survives_fault_sweep,
    NoRedoStore,
    OverwriteConfig {
        logical_pages: PAGES,
        scratch_slots: 16,
    },
    NoRedoStore::new,
    |db: &NoRedoStore, cfg| NoRedoStore::recover(db.crash_image(), cfg)
        .expect("recover")
        .0
);

/// Differential files are tuple-granular, not a [`PageStore`], so they get
/// their own sweep: same seeded device faults, same crashpoints, with a
/// key → value oracle over `R = (B ∪ A) − D` instead of a page oracle.
/// Parameterized over the block-device backend so the identical storm
/// runs on `MemDisk` and on a real pwrite/fdatasync file.
fn difffile_sweep(backend: BackendKind, seeds: &[u64], crashpoints: &[u64]) {
    let mut crash_hits = 0usize;
    for &seed in seeds {
        for &crashpoint in crashpoints {
            let cfg = DiffConfig {
                backend: backend.clone(),
                ..DiffConfig::default()
            };
            let mut rng = StdRng::seed_from_u64(seed ^ (crashpoint << 32));
            let mut db = DiffDb::new(cfg.clone());
            let plan = FaultPlan::seeded(seed, 1 << 20).crash_after_write(crashpoint);
            let handle = FaultInjector::handle(plan);
            db.attach_faults(&handle);

            // committed tuple state, plus the one ambiguous
            // (crash-interrupted) commit's net effect
            let mut committed: HashMap<u64, Option<Vec<u8>>> = HashMap::new();
            let mut ambiguous: Vec<(u64, Option<Vec<u8>>)> = Vec::new();
            let mut errored = false;
            'storm: for _ in 0..600 {
                let t = db.begin();
                let mut staged: Vec<(u64, Option<Vec<u8>>)> = Vec::new();
                for _ in 0..rng.gen_range(1..4) {
                    let key = rng.gen_range(0..48u64);
                    if staged.iter().any(|(k, _)| *k == key) {
                        continue;
                    }
                    if rng.gen_bool(0.7) {
                        let mut v = vec![0u8; 8];
                        rng.fill(&mut v[..]);
                        if db.insert(t, key, &v).is_err() {
                            errored = true;
                            break 'storm;
                        }
                        staged.push((key, Some(v)));
                    } else {
                        if db.delete(t, key).is_err() {
                            errored = true;
                            break 'storm;
                        }
                        staged.push((key, None));
                    }
                }
                match db.commit(t) {
                    Ok(()) => {
                        for (k, v) in staged {
                            committed.insert(k, v);
                        }
                    }
                    Err(_) => {
                        ambiguous = staged;
                        errored = true;
                        break 'storm;
                    }
                }
            }
            let ctx = format!("difffile seed {seed} crashpoint {crashpoint}");
            assert!(errored, "{ctx}: storm ran dry without an error");
            crash_hits += usize::from(handle.lock().crashed());

            let mut db = DiffDb::recover(db.crash_image(), cfg).expect("recover");
            let t = db.begin();
            let got: HashMap<u64, Vec<u8>> = db
                .query(t, |_| true, ScanStrategy::Optimal)
                .expect("query after recovery")
                .into_iter()
                .map(|tp| (tp.key, tp.value))
                .collect();
            db.abort(t).expect("read-only abort");

            let live = |m: &HashMap<u64, Option<Vec<u8>>>| -> HashMap<u64, Vec<u8>> {
                m.iter()
                    .filter_map(|(k, v)| v.clone().map(|v| (*k, v)))
                    .collect()
            };
            let without = live(&committed);
            for (k, v) in &ambiguous {
                committed.insert(*k, v.clone());
            }
            let with = live(&committed);
            assert!(
                got == without || got == with,
                "{ctx}: recovered relation matches neither side of the \
                 interrupted commit\n got: {got:?}\n old: {without:?}\n new: {with:?}"
            );

            // the engine still works on the clean device
            let t = db.begin();
            db.insert(t, 1_000, b"post-recovery").expect("insert");
            db.commit(t).expect("commit");
        }
    }
    let grid = seeds.len() * crashpoints.len();
    assert!(
        crash_hits * 2 >= grid,
        "scheduled crash fired in only {crash_hits}/{grid} runs"
    );
}

#[test]
fn difffile_survives_fault_sweep() {
    difffile_sweep(BackendKind::Mem, &SEEDS, &CRASHPOINTS);
}

#[test]
fn difffile_survives_fault_sweep_on_filedisk() {
    difffile_sweep(BackendKind::file(), &FILE_SEEDS, &FILE_CRASHPOINTS);
}

// ---------------------------------------------------------------------------
// Restart engine under the same storm, with fuzzy checkpoints running every
// few commits so the scheduled crash regularly lands *inside* an in-flight
// checkpoint — after its Begin records but before its End, or mid-flush.
// The checkpoint-bounded parallel restart must (a) recover the oracle state
// like serial recovery does, and (b) produce byte-identical disks for K=1
// and K=4 redo workers even on these faulted, half-checkpointed images.
// ---------------------------------------------------------------------------

#[test]
fn restart_survives_mid_checkpoint_fault_sweep() {
    use recovery_machines::restart::{restart, RestartConfig};

    let mut crash_hits = 0usize;
    for seed in SEEDS {
        for crashpoint in CRASHPOINTS {
            let cfg = WalConfig {
                data_pages: PAGES,
                pool_frames: 3,
                log_streams: 3,
                policy: SelectionPolicy::Cyclic,
                // a checkpoint every few commits: most crashpoints fall
                // within a Begin → flush → End window on some stream
                ckpt_every_commits: 5,
                ..WalConfig::default()
            };
            let mut rng = StdRng::seed_from_u64(seed ^ (crashpoint << 32));
            let mut db = WalDb::new(cfg.clone());
            let plan = FaultPlan::seeded(seed, 1 << 20).crash_after_write(crashpoint);
            let handle = FaultInjector::handle(plan);
            db.attach_faults(&handle);

            let mut oracle = Oracle::new();
            let ctx = format!("restart seed {seed} crashpoint {crashpoint}");
            let errored = faulty_storm(&mut db, &mut oracle, &mut rng, 600);
            assert!(errored, "{ctx}: storm ran dry without an error");
            crash_hits += usize::from(handle.lock().crashed());

            // K=1 and K=4 must agree byte-for-byte on the faulted image,
            // data disk and log disks alike
            let rcfg = |k| RestartConfig {
                workers: k,
                truncate_behind_bound: true,
                ..RestartConfig::default()
            };
            let (db1, rep1) =
                restart(db.crash_image(), cfg.clone(), &rcfg(1)).expect("restart K=1");
            let (db4, rep4) =
                restart(db.crash_image(), cfg.clone(), &rcfg(4)).expect("restart K=4");
            assert_eq!(
                rep1.logical_summary(),
                rep4.logical_summary(),
                "{ctx}: logical report diverged between K=1 and K=4"
            );
            let (i1, i4) = (db1.crash_image(), db4.crash_image());
            assert_disks_identical(&i1.data, &i4.data, &format!("{ctx}: data K1/K4"));
            for (i, (la, lb)) in i1.logs.iter().zip(&i4.logs).enumerate() {
                assert_disks_identical(la, lb, &format!("{ctx}: log {i} K1/K4"));
            }

            // and the recovered store holds exactly the committed state
            let mut store = db4;
            verify_and_pin(&mut store, &mut oracle, &ctx);
            let crashed = faulty_storm(&mut store, &mut oracle, &mut rng, 10);
            assert!(!crashed, "{ctx}: error after recovery on a clean device");
            verify_and_pin(&mut store, &mut oracle, &format!("{ctx} post"));
        }
    }
    let grid = SEEDS.len() * CRASHPOINTS.len();
    assert!(
        crash_hits * 2 >= grid,
        "scheduled crash fired in only {crash_hits}/{grid} runs"
    );
}

// ---------------------------------------------------------------------------
// Mixed logical+physical logs under the same storm: adaptive logging makes
// some transactions commit as one command record (re-executed at recovery)
// while wide transactions spill to physical after-image fragments — so every
// crash image in this sweep holds both record kinds, torn however the device
// faults landed. The contract:
//
//   1. recovery succeeds at every (seed, crashpoint) and the recovered
//      state matches the committed-state oracle (ambiguous tail included);
//   2. the transaction-DAG scheduler is byte-identical across K=1 and K=4,
//      logical report included, and byte-identical to page-sharded redo —
//      on faulted images, not just clean ones;
//   3. double recovery of the same image is deterministic;
//   4. the sweep actually exercises the mix: summed over the grid, command
//      re-execution AND physical installs both happened.
// ---------------------------------------------------------------------------

/// Counter pages (0..MIXED_COUNTERS) take `add_u64` bumps — the canonical
/// command-loggable op; pages MIXED_COUNTERS..PAGES take plain writes.
const MIXED_COUNTERS: u64 = 8;

/// Like [`faulty_storm`], but mixes command-loggable counter bumps, small
/// writes, and wide spilling transactions, so adaptive logging produces a
/// genuinely mixed log. Returns true once an operation observed the crash.
fn mixed_storm(db: &mut WalDb, oracle: &mut Oracle, rng: &mut StdRng, max_ops: usize) -> bool {
    for _ in 0..max_ops {
        let txn = db.begin();
        let mut staged: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut doomed = false;
        // a third of the transactions go wide: six distinct write pages
        // blows the deferred pin budget and spills to physical fragments
        let wide = rng.gen_bool(0.33);
        let ops = if wide { 6 } else { rng.gen_range(1..4) };
        for _ in 0..ops {
            let page = if wide || rng.gen_bool(0.4) {
                MIXED_COUNTERS + rng.gen_range(0..PAGES - MIXED_COUNTERS)
            } else {
                rng.gen_range(0..MIXED_COUNTERS)
            };
            if staged.iter().any(|(p, _)| *p == page) {
                continue;
            }
            if page < MIXED_COUNTERS {
                match db.add_u64(txn, page, 0, rng.gen_range(1..1_000)) {
                    Ok(new) => {
                        let mut v = vec![0u8; SLOT];
                        v[..8].copy_from_slice(&new.to_le_bytes());
                        staged.push((page, v));
                    }
                    Err(e) => {
                        eprintln!("[mixed] add_u64 error: {e}");
                        doomed = true;
                        break;
                    }
                }
            } else {
                let mut data = vec![0u8; SLOT];
                rng.fill(&mut data[..]);
                if let Err(e) = db.write(txn, page, 0, &data) {
                    eprintln!("[mixed] write error: {e}");
                    doomed = true;
                    break;
                }
                staged.push((page, data));
            }
        }
        if doomed {
            return true;
        }
        if rng.gen_bool(0.75) {
            match db.commit(txn) {
                Ok(()) => {
                    for (page, data) in staged {
                        oracle.insert(page, vec![data]);
                    }
                }
                Err(e) => {
                    eprintln!("[mixed] commit error: {e}");
                    for (page, data) in staged {
                        oracle.entry(page).or_insert_with(zeros).push(data);
                    }
                    return true;
                }
            }
        } else if let Err(e) = db.abort(txn) {
            eprintln!("[mixed] abort error: {e}");
            return true;
        }
    }
    false
}

#[test]
fn mixed_logical_physical_log_recovers_at_every_crashpoint() {
    use recovery_machines::restart::{restart, RedoScheduler, RestartConfig};
    use recovery_machines::wal::LoggingPolicy;

    let mut crash_hits = 0usize;
    let mut reexecuted = 0u64;
    let mut installed = 0u64;
    for seed in SEEDS {
        for crashpoint in CRASHPOINTS {
            let cfg = WalConfig {
                data_pages: PAGES,
                // pin budget pool_frames - 1 = 5: the wide (6-page)
                // transactions spill, the narrow ones command-log
                pool_frames: 6,
                log_streams: 3,
                policy: SelectionPolicy::Cyclic,
                logging: LoggingPolicy::Adaptive { threshold_pct: 100 },
                ..WalConfig::default()
            };
            let mut rng = StdRng::seed_from_u64(seed ^ (crashpoint << 32));
            let mut db = WalDb::new(cfg.clone());
            let plan = FaultPlan::seeded(seed, 1 << 20).crash_after_write(crashpoint);
            let handle = FaultInjector::handle(plan);
            db.attach_faults(&handle);

            let mut oracle = Oracle::new();
            let ctx = format!("mixed seed {seed} crashpoint {crashpoint}");
            let errored = mixed_storm(&mut db, &mut oracle, &mut rng, 600);
            assert!(errored, "{ctx}: storm ran dry without an error");
            crash_hits += usize::from(handle.lock().crashed());

            let image = db.crash_image();
            let rcfg = |k, scheduler| RestartConfig {
                workers: k,
                scheduler,
                truncate_behind_bound: true,
            };
            // transaction-DAG replay: K=1 and K=4 must agree on every byte
            // and on the logical report, faults and all
            let (db1, rep1) = restart(
                clone_image(&image),
                cfg.clone(),
                &rcfg(1, RedoScheduler::TxnDag),
            )
            .unwrap_or_else(|e| panic!("{ctx}: TxnDag K=1 restart failed: {e}"));
            let (db4, rep4) = restart(
                clone_image(&image),
                cfg.clone(),
                &rcfg(4, RedoScheduler::TxnDag),
            )
            .unwrap_or_else(|e| panic!("{ctx}: TxnDag K=4 restart failed: {e}"));
            assert_eq!(
                rep1.logical_summary(),
                rep4.logical_summary(),
                "{ctx}: logical report diverged between K=1 and K=4"
            );
            let (i1, i4) = (db1.crash_image(), db4.crash_image());
            assert_disks_identical(&i1.data, &i4.data, &format!("{ctx}: data K1/K4"));
            for (i, (la, lb)) in i1.logs.iter().zip(&i4.logs).enumerate() {
                assert_disks_identical(la, lb, &format!("{ctx}: log {i} K1/K4"));
            }
            if let Some(r) = &rep4.replay {
                reexecuted += r.txns_reexecuted;
                installed += r.pages_installed;
            }

            // page-sharded redo on the same mixed image: same bytes
            let (dbp, _) = restart(
                clone_image(&image),
                cfg.clone(),
                &rcfg(4, RedoScheduler::PageSharded),
            )
            .unwrap_or_else(|e| panic!("{ctx}: PageSharded restart failed: {e}"));
            let ip = dbp.crash_image();
            assert_disks_identical(
                &i1.data,
                &ip.data,
                &format!("{ctx}: data TxnDag/PageSharded"),
            );

            // double recovery of the same image is deterministic
            let (db4b, _) = restart(
                clone_image(&image),
                cfg.clone(),
                &rcfg(4, RedoScheduler::TxnDag),
            )
            .unwrap_or_else(|e| panic!("{ctx}: second TxnDag restart failed: {e}"));
            assert_disks_identical(
                &i4.data,
                &db4b.crash_image().data,
                &format!("{ctx}: double recovery"),
            );

            // the recovered store holds exactly the committed state and
            // still works on the clean device
            let mut store = db4;
            verify_and_pin(&mut store, &mut oracle, &ctx);
            let crashed = faulty_storm(&mut store, &mut oracle, &mut rng, 10);
            assert!(!crashed, "{ctx}: error after recovery on a clean device");
            verify_and_pin(&mut store, &mut oracle, &format!("{ctx} post"));
        }
    }
    let grid = SEEDS.len() * CRASHPOINTS.len();
    assert!(
        crash_hits * 2 >= grid,
        "scheduled crash fired in only {crash_hits}/{grid} runs"
    );
    assert!(
        reexecuted > 0 && installed > 0,
        "sweep never produced a mixed log: {reexecuted} command re-executions, \
         {installed} physical installs"
    );
}

// ---------------------------------------------------------------------------
// Torn logical frame: a command-logged stream's page is corrupted mid-stream.
// The scan must salvage the decodable prefix (quarantining the torn page),
// re-execute whatever command records survive, and stay deterministic and
// K-equivalent on the maimed image — never error, never panic.
// ---------------------------------------------------------------------------

#[test]
fn torn_logical_frame_is_salvaged_and_quarantined() {
    use recovery_machines::restart::{restart, RedoScheduler, RestartConfig};
    use recovery_machines::wal::LoggingPolicy;

    for seed in [7u64, 42, 1985] {
        let cfg = WalConfig {
            data_pages: PAGES,
            pool_frames: 6,
            log_streams: 3,
            policy: SelectionPolicy::Cyclic,
            logging: LoggingPolicy::Command,
            seed,
            ..WalConfig::default()
        };
        // clean command-logged history: every commit is one logical record
        let mut db = WalDb::new(cfg.clone());
        let mut rng = StdRng::seed_from_u64(seed);
        let mut oracle = Oracle::new();
        let crashed = mixed_storm(&mut db, &mut oracle, &mut rng, 120);
        assert!(!crashed, "seed {seed}: clean storm errored");

        // tear a frame in the middle of a log stream's allocated run
        let mut image = db.crash_image();
        let victim = &mut image.logs[seed as usize % 3];
        let allocated: Vec<u64> = (1..victim.capacity())
            .filter(|&a| victim.is_allocated(a))
            .collect();
        assert!(
            allocated.len() >= 2,
            "seed {seed}: stream too short to tear mid-stream"
        );
        let torn = allocated[allocated.len() / 2];
        let mut junk = [0u8; FRAME_SIZE];
        rng.fill(&mut junk[..]);
        victim
            .write_partial(torn, &junk, FRAME_SIZE / 2)
            .expect("tear log frame");

        let ctx = format!("torn-logical seed {seed}");
        let rcfg = |k| RestartConfig {
            workers: k,
            scheduler: RedoScheduler::TxnDag,
            truncate_behind_bound: true,
        };
        let (db1, rep1) = restart(clone_image(&image), cfg.clone(), &rcfg(1))
            .unwrap_or_else(|e| panic!("{ctx}: K=1 restart failed: {e}"));
        let (db4, rep4) = restart(clone_image(&image), cfg.clone(), &rcfg(4))
            .unwrap_or_else(|e| panic!("{ctx}: K=4 restart failed: {e}"));
        assert!(
            rep4.base.quarantined_log_pages > 0,
            "{ctx}: torn frame never quarantined"
        );
        assert!(
            rep4.base.salvaged_records > 0,
            "{ctx}: no records salvaged from the decodable prefix"
        );
        assert!(
            rep4.base.logical_commits > 0,
            "{ctx}: salvage re-executed no command records"
        );
        assert_eq!(
            rep1.logical_summary(),
            rep4.logical_summary(),
            "{ctx}: logical report diverged between K=1 and K=4"
        );
        let (i1, i4) = (db1.crash_image(), db4.crash_image());
        assert_disks_identical(&i1.data, &i4.data, &format!("{ctx}: data K1/K4"));

        // determinism on the maimed image
        let (db4b, _) = restart(clone_image(&image), cfg, &rcfg(4))
            .unwrap_or_else(|e| panic!("{ctx}: second restart failed: {e}"));
        assert_disks_identical(
            &i4.data,
            &db4b.crash_image().data,
            &format!("{ctx}: double recovery"),
        );
    }
}

// ---------------------------------------------------------------------------
// Recovery accounting: the observability counters recovery publishes are
// incremented at the same logical sites as the RecoveryReport fields. On
// every faulted crash image in the sweep the two books must agree exactly —
// a divergence means either the report or the metrics lies about what
// recovery replayed.
// ---------------------------------------------------------------------------

#[test]
fn recovery_obs_counters_match_report_at_every_crashpoint() {
    use recovery_machines::obs::{EventKind, Registry};
    use recovery_machines::wal::recover_observed;

    let mut crash_hits = 0usize;
    for seed in SEEDS {
        for crashpoint in CRASHPOINTS {
            let cfg = WalConfig {
                data_pages: PAGES,
                pool_frames: 3,
                log_streams: 3,
                policy: SelectionPolicy::Cyclic,
                ..WalConfig::default()
            };
            let mut rng = StdRng::seed_from_u64(seed ^ (crashpoint << 32));
            let mut db = WalDb::new(cfg.clone());
            let plan = FaultPlan::seeded(seed, 1 << 20).crash_after_write(crashpoint);
            let handle = FaultInjector::handle(plan);
            db.attach_faults(&handle);

            let mut oracle = Oracle::new();
            let ctx = format!("obs-accounting seed {seed} crashpoint {crashpoint}");
            let errored = faulty_storm(&mut db, &mut oracle, &mut rng, 600);
            assert!(errored, "{ctx}: storm ran dry without an error");
            crash_hits += usize::from(handle.lock().crashed());

            let obs = Registry::new();
            let (_recovered, report) =
                recover_observed(db.crash_image(), cfg, &obs).expect("recover");
            let snap = obs.snapshot();
            let c = |name: &str| snap.counter(name).unwrap_or(0);
            assert_eq!(
                c("recovery.records_scanned"),
                report.records_scanned as u64,
                "{ctx}: records_scanned"
            );
            assert_eq!(
                c("recovery.redone_updates"),
                report.redone_updates,
                "{ctx}: redone_updates"
            );
            assert_eq!(
                c("recovery.undone_updates"),
                report.undone_updates,
                "{ctx}: undone_updates"
            );
            assert_eq!(
                c("recovery.quarantined_log_pages"),
                report.quarantined_log_pages,
                "{ctx}: quarantined_log_pages"
            );
            assert_eq!(
                c("recovery.quarantined_data_pages"),
                report.quarantined_data_pages,
                "{ctx}: quarantined_data_pages"
            );
            assert_eq!(
                c("recovery.torn_pages_repaired"),
                report.torn_pages_repaired,
                "{ctx}: torn_pages_repaired"
            );
            assert_eq!(
                c("recovery.salvaged_records"),
                report.salvaged_records,
                "{ctx}: salvaged_records"
            );
            assert_eq!(
                c("recovery.pages_written"),
                report.pages_written,
                "{ctx}: pages_written"
            );
            assert_eq!(
                c("recovery.retried_ios"),
                report.retried_ios,
                "{ctx}: retried_ios"
            );
            // phase structure: exactly one RecoveryPhase event per phase,
            // in phase order, and every phase histogram saw one sample
            let phases: Vec<_> = obs
                .recent_events()
                .into_iter()
                .filter(|e| e.kind == EventKind::RecoveryPhase)
                .collect();
            assert_eq!(phases.len(), 4, "{ctx}: phase event count");
            for (i, ev) in phases.iter().enumerate() {
                assert_eq!(ev.stream, i as u64, "{ctx}: phase order");
            }
            for h in [
                "recovery.analysis_us",
                "recovery.redo_us",
                "recovery.undo_us",
                "recovery.flush_us",
            ] {
                assert_eq!(
                    snap.histogram(h).map(|h| h.count),
                    Some(1),
                    "{ctx}: histogram {h}"
                );
            }
        }
    }
    let grid = SEEDS.len() * CRASHPOINTS.len();
    assert!(
        crash_hits * 2 >= grid,
        "scheduled crash fired in only {crash_hits}/{grid} runs"
    );
}

// ---------------------------------------------------------------------------
// Determinism: a fault schedule is pure data. Same seed, same plan, same
// workload ⇒ byte-identical post-crash platters.
// ---------------------------------------------------------------------------

fn assert_disks_identical<A, B>(a: &A, b: &B, what: &str)
where
    A: BlockDevice + ?Sized,
    B: BlockDevice + ?Sized,
{
    assert_eq!(a.capacity(), b.capacity(), "{what}: capacity");
    for addr in 0..a.capacity() {
        assert_eq!(
            a.is_allocated(addr),
            b.is_allocated(addr),
            "{what}: allocation of frame {addr}"
        );
        if a.is_allocated(addr) {
            let fa = a.read_frame(addr).expect("frame a");
            let fb = b.read_frame(addr).expect("frame b");
            assert!(fa == fb, "{what}: frame {addr} differs between runs");
        }
    }
}

#[test]
fn fault_plan_replays_to_identical_crash_images() {
    fn run_wal(seed: u64) -> recovery_machines::wal::CrashImage {
        let cfg = WalConfig {
            data_pages: PAGES,
            pool_frames: 3,
            log_streams: 3,
            policy: SelectionPolicy::Cyclic,
            ..WalConfig::default()
        };
        let mut db = WalDb::new(cfg);
        let plan = FaultPlan::seeded(seed, 1 << 20).crash_after_write(37);
        db.attach_faults(&FaultInjector::handle(plan));
        let mut rng = StdRng::seed_from_u64(seed);
        let mut oracle = Oracle::new();
        faulty_storm(&mut db, &mut oracle, &mut rng, 600);
        db.crash_image()
    }

    fn run_shadow(seed: u64) -> recovery_machines::shadow::ShadowImage {
        let cfg = ShadowConfig {
            logical_pages: PAGES,
            data_frames: PAGES * 4,
            ..ShadowConfig::default()
        };
        let mut db = ShadowPager::new(cfg).expect("new");
        let plan = FaultPlan::seeded(seed, 1 << 20).crash_after_write(37);
        db.attach_faults(&FaultInjector::handle(plan));
        let mut rng = StdRng::seed_from_u64(seed);
        let mut oracle = Oracle::new();
        faulty_storm(&mut db, &mut oracle, &mut rng, 600);
        db.crash_image()
    }

    for seed in [3u64, 1985] {
        let (x, y) = (run_wal(seed), run_wal(seed));
        assert_disks_identical(&x.data, &y.data, "wal data");
        assert_eq!(x.logs.len(), y.logs.len(), "log stream count");
        for (i, (lx, ly)) in x.logs.iter().zip(&y.logs).enumerate() {
            assert_disks_identical(lx, ly, &format!("wal log {i}"));
        }

        let (x, y) = (run_shadow(seed), run_shadow(seed));
        assert_disks_identical(&x.data, &y.data, "shadow data");
        assert_disks_identical(&x.pt, &y.pt, "shadow page-table");
    }
}

// ---------------------------------------------------------------------------
// Never-panic: recovery on an *arbitrarily* scribbled crash image must
// return Ok (possibly with quarantined state) or a typed error — it may
// never panic, whatever garbage the platter holds.
// ---------------------------------------------------------------------------

/// Overwrite `hits` random frame prefixes of `disk` with random bytes.
fn scribble<D: BlockDevice + ?Sized>(disk: &mut D, rng: &mut StdRng, hits: usize) {
    for _ in 0..hits {
        let addr = rng.gen_range(0..disk.capacity());
        let mut junk = [0u8; FRAME_SIZE];
        rng.fill(&mut junk[..]);
        let cut = rng.gen_range(1..=FRAME_SIZE);
        disk.write_partial(addr, &junk, cut).expect("scribble");
    }
}

/// Build a store, commit real work, scribble the crash image, recover.
/// `$corrupt` scribbles the image's disks in place; `$recover` consumes
/// the image — Ok or a typed Err are both fine, a panic fails the test.
macro_rules! never_panic_case {
    ($rng:expr, $store:expr, $corrupt:expr, $recover:expr) => {{
        let mut store = $store;
        let mut oracle = Oracle::new();
        let mut rng_w = StdRng::seed_from_u64(7);
        faulty_storm(&mut store, &mut oracle, &mut rng_w, 30);
        let mut image = store.crash_image();
        #[allow(clippy::redundant_closure_call)]
        ($corrupt)(&mut image, $rng);
        #[allow(clippy::redundant_closure_call)]
        ($recover)(image);
    }};
}

#[test]
fn recovery_never_panics_on_scribbled_images() {
    for seed in SEEDS {
        let rng = &mut StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9));

        never_panic_case!(
            rng,
            WalDb::new(WalConfig {
                data_pages: PAGES,
                pool_frames: 3,
                log_streams: 3,
                ..WalConfig::default()
            }),
            |i: &mut recovery_machines::wal::CrashImage, rng: &mut StdRng| {
                scribble(&mut i.data, rng, 4);
                for log in i.logs.iter_mut() {
                    scribble(log, rng, 2);
                }
            },
            |image| {
                if let Ok((mut db, _)) = WalDb::recover(
                    image,
                    WalConfig {
                        data_pages: PAGES,
                        pool_frames: 3,
                        log_streams: 3,
                        ..WalConfig::default()
                    },
                ) {
                    read_all(&mut db);
                }
            }
        );

        never_panic_case!(
            rng,
            ShadowPager::new(ShadowConfig {
                logical_pages: PAGES,
                data_frames: PAGES * 4,
                ..ShadowConfig::default()
            })
            .expect("new"),
            |i: &mut recovery_machines::shadow::ShadowImage, rng: &mut StdRng| {
                scribble(&mut i.data, rng, 4);
                scribble(&mut i.pt, rng, 2);
            },
            |image| {
                if let Ok((mut db, _)) = ShadowPager::recover(
                    image,
                    ShadowConfig {
                        logical_pages: PAGES,
                        data_frames: PAGES * 4,
                        ..ShadowConfig::default()
                    },
                ) {
                    read_all(&mut db);
                }
            }
        );

        never_panic_case!(
            rng,
            VersionStore::new(VersionConfig {
                logical_pages: PAGES,
                commit_frames: 8,
            }),
            |i: &mut recovery_machines::shadow::VersionImage, rng: &mut StdRng| {
                scribble(&mut i.disk, rng, 4);
            },
            |image| {
                if let Ok((mut db, _)) = VersionStore::recover(
                    image,
                    VersionConfig {
                        logical_pages: PAGES,
                        commit_frames: 8,
                    },
                ) {
                    read_all(&mut db);
                }
            }
        );

        never_panic_case!(
            rng,
            NoUndoStore::new(OverwriteConfig {
                logical_pages: PAGES,
                scratch_slots: 16,
            }),
            |i: &mut recovery_machines::shadow::OverwriteImage, rng: &mut StdRng| {
                scribble(&mut i.disk, rng, 4);
            },
            |image| {
                if let Ok((mut db, _)) = NoUndoStore::recover(
                    image,
                    OverwriteConfig {
                        logical_pages: PAGES,
                        scratch_slots: 16,
                    },
                ) {
                    read_all(&mut db);
                }
            }
        );

        never_panic_case!(
            rng,
            NoRedoStore::new(OverwriteConfig {
                logical_pages: PAGES,
                scratch_slots: 16,
            }),
            |i: &mut recovery_machines::shadow::OverwriteImage, rng: &mut StdRng| {
                scribble(&mut i.disk, rng, 4);
            },
            |image| {
                if let Ok((mut db, _)) = NoRedoStore::recover(
                    image,
                    OverwriteConfig {
                        logical_pages: PAGES,
                        scratch_slots: 16,
                    },
                ) {
                    read_all(&mut db);
                }
            }
        );

        // differential files are tuple-granular, not a PageStore — drive
        // them directly
        let mut db = DiffDb::new(DiffConfig::default());
        for k in 0..40u64 {
            let t = db.begin();
            db.insert(t, k, &k.to_le_bytes()).expect("insert");
            if k % 3 == 0 {
                db.delete(t, k / 2).expect("delete");
            }
            db.commit(t).expect("commit");
        }
        let mut image = db.crash_image();
        scribble(&mut image.disk, rng, 6);
        if let Ok(mut db) = DiffDb::recover(image, DiffConfig::default()) {
            let t = db.begin();
            let _ = db.query(t, |_| true, ScanStrategy::Optimal);
        }
    }
}

/// Post-recovery read sweep: every page must read or fail typed, no panic.
fn read_all<S: PageStore>(store: &mut S) {
    let txn = store.begin();
    for page in 0..PAGES {
        let _ = store.read(txn, page, 0, SLOT);
    }
    let _ = store.abort(txn);
}

// ---------------------------------------------------------------------------
// Concurrent pipeline under the crash sweep: crash images snapped while
// real worker threads are mid-commit through the group-commit daemon. Every
// transaction whose commit was *acknowledged* before the snapshot must be
// durable in the recovered image — the exec pipeline's ack is a durability
// promise, and the snapshot protocol (commit gate + data-first ordering)
// must keep it even when the snapshot lands between a fragment force and
// the commit-record force.
// ---------------------------------------------------------------------------

#[test]
fn exec_pipeline_acked_commits_survive_mid_run_crash() {
    use recovery_machines::exec::{ExecConfig, ExecDb};
    use std::collections::HashSet;
    use std::sync::{Arc, Mutex};

    const TXNS_PER_WORKER: u64 = 16;
    for seed in SEEDS {
        for workers in [2u64, 4] {
            let cfg = ExecConfig {
                wal: WalConfig {
                    data_pages: workers * TXNS_PER_WORKER,
                    pool_frames: 24,
                    log_streams: 3,
                    log_frames: 1 << 14,
                    seed,
                    ..WalConfig::default()
                },
                pool_shards: 4,
                ..ExecConfig::default()
            };
            let db = Arc::new(ExecDb::new(cfg.clone()));
            let acked: Arc<Mutex<HashSet<u64>>> = Arc::new(Mutex::new(HashSet::new()));
            // (acked-before-snapshot, image) pairs, snapped mid-storm
            let mut snaps: Vec<(HashSet<u64>, recovery_machines::wal::CrashImage)> = Vec::new();

            let value = |page: u64| (seed << 32 | 0xAC4E_0000 | page).to_le_bytes();
            crossbeam::thread::scope(|s| {
                for w in 0..workers {
                    let db = Arc::clone(&db);
                    let acked = Arc::clone(&acked);
                    s.spawn(move |_| {
                        for i in 0..TXNS_PER_WORKER {
                            let page = w * TXNS_PER_WORKER + i;
                            db.run_txn(w as usize, |ctx| ctx.write(page, 0, &value(page)))
                                .expect("pipeline txn");
                            // run_txn returns only after the group-commit
                            // daemon acks: from here the write is durable
                            acked.lock().unwrap().insert(page);
                        }
                    });
                }
                for _ in 0..4 {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    // copy the ack set BEFORE snapping: everything in the
                    // copy was acked strictly before the crash
                    let before = acked.lock().unwrap().clone();
                    let image = db.crash_image().expect("mid-run crash image");
                    snaps.push((before, image));
                }
            })
            .unwrap();
            // one more with every commit acked: all pages must be strict
            let before = acked.lock().unwrap().clone();
            assert_eq!(before.len() as u64, workers * TXNS_PER_WORKER);
            snaps.push((before, db.crash_image().expect("final crash image")));

            for (snap, (acked_before, image)) in snaps.into_iter().enumerate() {
                let ctx = format!("exec seed {seed} workers {workers} snap {snap}");
                let (mut rec, _) =
                    WalDb::recover(image, cfg.wal.clone()).expect("recover concurrent image");
                let t = rec.begin();
                for page in 0..workers * TXNS_PER_WORKER {
                    let got = rec.read(t, page, 0, 8).expect("read after recovery");
                    if acked_before.contains(&page) {
                        assert_eq!(
                            got,
                            value(page),
                            "{ctx}: acked page {page} lost after recovery"
                        );
                    } else {
                        // unacked: the commit may or may not have hit the
                        // log before the snapshot — old or new, never torn
                        assert!(
                            got == [0u8; 8] || got == value(page),
                            "{ctx}: unacked page {page} torn: {got:?}"
                        );
                    }
                }
                rec.abort(t).expect("read-only abort");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Appender-death sweep: one log processor dies *mid-run* — its device starts
// failing every write while worker threads are streaming commits through it —
// across seeds × kill points × fleet sizes. The failover contract under test:
//
//   1. no acked commit is ever lost (the ack is a durability promise and a
//      quarantined stream's durable prefix still counts);
//   2. the survivors keep committing after the kill (rerouting works and the
//      fleet does not degrade at min_live = 1);
//   3. recovery is deterministic — recovering the same crash image twice
//      yields byte-identical data disks, for every crashpoint in the sweep.
// ---------------------------------------------------------------------------

/// Deep-copy a crash image so it can be recovered more than once. Snapshots
/// shed any attached fault handle — recovery always reads honest bytes, which
/// is exactly what a real restart off the platter would see.
fn clone_image(image: &recovery_machines::wal::CrashImage) -> recovery_machines::wal::CrashImage {
    recovery_machines::wal::CrashImage {
        data: image.data.snapshot(),
        logs: image.logs.iter().map(Disk::snapshot).collect(),
    }
}

#[test]
fn exec_pipeline_survives_mid_run_appender_death() {
    use recovery_machines::exec::{ExecConfig, ExecDb};
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    const WORKERS: u64 = 4;
    const TXNS_PER_WORKER: u64 = 12;
    const STORM_PAGES: u64 = WORKERS * TXNS_PER_WORKER;
    // extra guaranteed-post-kill commits, after the storm joins
    const TAIL_TXNS: u64 = 8;

    for seed in [7u64, 42, 31337] {
        for streams in [3usize, 4] {
            // kill point = acked-commit count that triggers the device kill
            for (kp, kill_after) in [3u64, 14].into_iter().enumerate() {
                let kill_stream = (seed as usize + kp) % streams;
                let cfg = ExecConfig {
                    wal: WalConfig {
                        data_pages: STORM_PAGES + TAIL_TXNS,
                        pool_frames: 24,
                        log_streams: streams,
                        log_frames: 1 << 14,
                        seed,
                        ..WalConfig::default()
                    },
                    pool_shards: 4,
                    ..ExecConfig::default()
                };
                let ctx = format!("kill seed {seed} streams {streams} kill_after {kill_after}");
                let db = Arc::new(ExecDb::new(cfg.clone()));
                let acked: Arc<Mutex<HashSet<u64>>> = Arc::new(Mutex::new(HashSet::new()));
                let acked_count = Arc::new(AtomicU64::new(0));
                let mut snaps: Vec<(HashSet<u64>, recovery_machines::wal::CrashImage)> = Vec::new();

                let value = |page: u64| (seed << 32 | 0xFA_1107_u64 << 8 | page).to_le_bytes();
                crossbeam::thread::scope(|s| {
                    // the killer: waits for the kill point, then makes every
                    // subsequent write to the victim's device fail forever —
                    // mid-run, while workers are racing commits through it
                    {
                        let db = Arc::clone(&db);
                        let acked_count = Arc::clone(&acked_count);
                        s.spawn(move |_| {
                            while acked_count.load(Ordering::Acquire) < kill_after {
                                std::thread::sleep(Duration::from_micros(200));
                            }
                            db.inject_stream_fault(
                                kill_stream,
                                FaultPlan::new().fail_from_write(0),
                            )
                            .expect("inject kill fault");
                        });
                    }
                    for w in 0..WORKERS {
                        let db = Arc::clone(&db);
                        let acked = Arc::clone(&acked);
                        let acked_count = Arc::clone(&acked_count);
                        s.spawn(move |_| {
                            for i in 0..TXNS_PER_WORKER {
                                let page = w * TXNS_PER_WORKER + i;
                                db.run_txn(w as usize, |ctx| ctx.write(page, 0, &value(page)))
                                    .expect("storm txn");
                                acked.lock().unwrap().insert(page);
                                acked_count.fetch_add(1, Ordering::Release);
                            }
                        });
                    }
                    // crash images snapped during the storm — these land
                    // before, across, and after the kill point
                    for _ in 0..3 {
                        std::thread::sleep(Duration::from_millis(2));
                        let before = acked.lock().unwrap().clone();
                        let image = db.crash_image().expect("mid-storm crash image");
                        snaps.push((before, image));
                    }
                })
                .unwrap();
                assert_eq!(
                    acked.lock().unwrap().len() as u64,
                    STORM_PAGES,
                    "{ctx}: storm txn lost"
                );

                // deterministic post-kill tail: the fault has fired (the
                // storm committed well past the kill point), so these
                // commits prove the survivors still make progress
                for page in STORM_PAGES..STORM_PAGES + TAIL_TXNS {
                    db.run_txn(page as usize % WORKERS as usize, |ctx| {
                        ctx.write(page, 0, &value(page))
                    })
                    .unwrap_or_else(|e| panic!("{ctx}: post-kill txn failed: {e}"));
                    acked.lock().unwrap().insert(page);
                }

                // the victim must be quarantined, the survivors alive
                assert!(
                    db.is_stream_dead(kill_stream),
                    "{ctx}: killed stream never quarantined"
                );
                assert_eq!(db.live_streams(), streams - 1, "{ctx}: wrong live count");
                assert!(!db.is_degraded(), "{ctx}: degraded at min_live=1");
                let metrics = db.obs().snapshot();
                assert!(
                    metrics.counter("failover.quarantined") >= Some(1),
                    "{ctx}: quarantine counter missing"
                );

                // final crashpoint: everything acked
                let before = acked.lock().unwrap().clone();
                snaps.push((before, db.crash_image().expect("final crash image")));

                for (snap, (acked_before, image)) in snaps.into_iter().enumerate() {
                    let sctx = format!("{ctx} snap {snap}");
                    let copy = clone_image(&image);
                    let (mut rec, _) = WalDb::recover(image, cfg.wal.clone())
                        .unwrap_or_else(|e| panic!("{sctx}: recovery failed: {e}"));
                    let t = rec.begin();
                    for page in 0..STORM_PAGES + TAIL_TXNS {
                        let got = rec.read(t, page, 0, 8).expect("read after recovery");
                        if acked_before.contains(&page) {
                            assert_eq!(
                                got,
                                value(page),
                                "{sctx}: acked page {page} lost after recovery"
                            );
                        } else {
                            assert!(
                                got == [0u8; 8] || got == value(page),
                                "{sctx}: unacked page {page} torn: {got:?}"
                            );
                        }
                    }
                    rec.abort(t).expect("read-only abort");
                    // recovery determinism: same image, same bytes
                    let (rec2, _) = WalDb::recover(copy, cfg.wal.clone())
                        .unwrap_or_else(|e| panic!("{sctx}: second recovery failed: {e}"));
                    assert_disks_identical(
                        &rec.crash_image().data,
                        &rec2.crash_image().data,
                        &sctx,
                    );
                }
                Arc::try_unwrap(db)
                    .ok()
                    .expect("storm threads joined")
                    .shutdown()
                    .ok();
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Membership-churn sweep: kill → rejoin → kill cycles on a 4-stream fleet.
// The elastic-fleet contract under test:
//
//   1. zero acked-commit loss across arbitrary churn (kills, rejoins, a
//      repeat kill of an already-rejoined stream);
//   2. a rejoin restores routing — the readmitted stream serves again and
//      degraded mode stays clear;
//   3. recovery stays deterministic across churn: every crash image, snapped
//      between cycles, recovers to byte-identical data disks twice.
// ---------------------------------------------------------------------------

#[test]
fn exec_pipeline_survives_kill_rejoin_kill_churn() {
    use recovery_machines::exec::{ExecConfig, ExecDb};
    use recovery_machines::storage::FaultHandle;
    use std::time::{Duration, Instant};

    const STREAMS: usize = 4;
    const PAGES: u64 = 96;

    // One committed burst: `n` sequential transactions over a rolling page
    // window; the acked map tracks the exact durable value per page.
    fn burst(
        db: &ExecDb,
        acked: &mut HashMap<u64, [u8; 8]>,
        next: &mut u64,
        n: u64,
        seed: u64,
        round: u64,
    ) {
        for _ in 0..n {
            let page = *next % PAGES;
            *next += 1;
            let v = (seed << 48 | round << 32 | 0xC0DE_0000 | page).to_le_bytes();
            db.run_txn(page as usize, move |ctx| ctx.write(page, 0, &v))
                .expect("churn txn");
            acked.insert(page, v);
        }
    }

    // Kill `stream`'s device through a retained handle and drive commits
    // until failover quarantines it.
    fn kill(
        db: &ExecDb,
        stream: usize,
        acked: &mut HashMap<u64, [u8; 8]>,
        next: &mut u64,
        seed: u64,
        round: u64,
        ctx: &str,
    ) -> FaultHandle {
        let handle = FaultInjector::handle(FaultPlan::new().fail_from_write(0));
        db.inject_stream_fault_handle(stream, handle.clone())
            .expect("inject kill fault");
        let t0 = Instant::now();
        while !db.is_stream_dead(stream) {
            assert!(
                t0.elapsed() < Duration::from_secs(10),
                "{ctx}: stream {stream} never quarantined"
            );
            burst(db, acked, next, 1, seed, round);
        }
        handle
    }

    for seed in SEEDS {
        let cfg = ExecConfig {
            wal: WalConfig {
                data_pages: PAGES,
                pool_frames: 24,
                log_streams: STREAMS,
                log_frames: 1 << 14,
                seed,
                ..WalConfig::default()
            },
            pool_shards: 4,
            ..ExecConfig::default()
        };
        let ctx = format!("churn seed {seed}");
        let db = ExecDb::new(cfg.clone());
        let mut acked: HashMap<u64, [u8; 8]> = HashMap::new();
        let mut next = 0u64;
        let mut snaps: Vec<(HashMap<u64, [u8; 8]>, recovery_machines::wal::CrashImage)> =
            Vec::new();

        // healthy baseline
        burst(&db, &mut acked, &mut next, 24, seed, 0);
        snaps.push((acked.clone(), db.crash_image().expect("baseline image")));

        // cycle 1: kill a stream, revive its device, rejoin it
        let k1 = seed as usize % STREAMS;
        let handle = kill(&db, k1, &mut acked, &mut next, seed, 1, &ctx);
        burst(&db, &mut acked, &mut next, 16, seed, 1);
        handle.lock().revive();
        let report = db
            .rejoin_stream(k1)
            .unwrap_or_else(|e| panic!("{ctx}: rejoin of {k1} failed: {e}"));
        assert_eq!(report.live_streams, STREAMS, "{ctx}: fleet not restored");
        assert!(!db.is_stream_dead(k1), "{ctx}: rejoined stream still dead");
        assert!(!db.is_degraded(), "{ctx}: degraded after rejoin");
        burst(&db, &mut acked, &mut next, 32, seed, 2);
        snaps.push((acked.clone(), db.crash_image().expect("post-rejoin image")));

        // cycle 2: a different stream dies and rejoins
        let k2 = (k1 + 1) % STREAMS;
        let handle = kill(&db, k2, &mut acked, &mut next, seed, 3, &ctx);
        burst(&db, &mut acked, &mut next, 16, seed, 3);
        handle.lock().revive();
        db.rejoin_stream(k2)
            .unwrap_or_else(|e| panic!("{ctx}: rejoin of {k2} failed: {e}"));
        assert_eq!(
            db.live_streams(),
            STREAMS,
            "{ctx}: fleet not restored twice"
        );
        burst(&db, &mut acked, &mut next, 32, seed, 4);

        // cycle 3: the first victim dies AGAIN (orphan ranges accumulate
        // across incarnations) and this time stays out
        let _handle = kill(&db, k1, &mut acked, &mut next, seed, 5, &ctx);
        burst(&db, &mut acked, &mut next, 24, seed, 5);
        assert_eq!(
            db.live_streams(),
            STREAMS - 1,
            "{ctx}: second kill miscounted"
        );
        assert!(!db.is_degraded(), "{ctx}: degraded at min_live=1");
        assert!(
            db.obs().snapshot().counter("failover.rejoins") >= Some(2),
            "{ctx}: rejoin counter missing"
        );
        snaps.push((acked.clone(), db.crash_image().expect("final churn image")));

        for (snap, (acked_at, image)) in snaps.into_iter().enumerate() {
            let sctx = format!("{ctx} snap {snap}");
            let copy = clone_image(&image);
            let (mut rec, _) = WalDb::recover(image, cfg.wal.clone())
                .unwrap_or_else(|e| panic!("{sctx}: recovery failed: {e}"));
            let t = rec.begin();
            for page in 0..PAGES {
                let got = rec.read(t, page, 0, 8).expect("read after recovery");
                match acked_at.get(&page) {
                    Some(v) => assert_eq!(
                        got, *v,
                        "{sctx}: acked page {page} lost or stale after churn"
                    ),
                    None => assert_eq!(got, [0u8; 8], "{sctx}: page {page} dirty"),
                }
            }
            rec.abort(t).expect("read-only abort");
            // recovery determinism survives membership churn
            let (rec2, _) = WalDb::recover(copy, cfg.wal.clone())
                .unwrap_or_else(|e| panic!("{sctx}: second recovery failed: {e}"));
            assert_disks_identical(&rec.crash_image().data, &rec2.crash_image().data, &sctx);
        }
        db.shutdown().ok();
    }
}

// ---------------------------------------------------------------------------
// Readers-during-failover: the MVCC snapshot read path must be completely
// indifferent to log-processor failure. While a kill → rejoin cycle runs,
// concurrent lock-free readers open snapshots nonstop; the contract:
//
//   1. snapshot reads NEVER error — not during the outage, not during the
//      rejoin (they depend only on already-published memory, never on the
//      appender fleet);
//   2. every snapshot sees a conserved bank total (transfer atomicity
//      inside every snapshot, across every failover phase);
//   3. recovery with MVCC enabled stays byte-identical across a double
//      recovery of the same crash image — version publication is strictly
//      a side channel and leaves no trace in the durable state.
// ---------------------------------------------------------------------------

#[test]
fn snapshot_readers_stay_consistent_through_kill_and_rejoin() {
    use recovery_machines::exec::{ExecConfig, ExecDb};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    const ACCOUNTS: u64 = 12;
    const INITIAL: u64 = 64;
    const STREAMS: usize = 3;

    // two seeds keep the tier-1 wall-clock modest; the elastic-fleet churn
    // sweep above already covers the full seed battery for the write path
    for seed in [7u64, 31337] {
        let cfg = ExecConfig {
            wal: WalConfig {
                data_pages: 32,
                pool_frames: 24,
                log_streams: STREAMS,
                log_frames: 1 << 14,
                seed,
                ..WalConfig::default()
            },
            pool_shards: 4,
            ..ExecConfig::default()
        };
        let ctx = format!("ro-failover seed {seed}");
        let db = Arc::new(ExecDb::new(cfg.clone()));
        db.run_txn(0, |c| {
            for acct in 0..ACCOUNTS {
                c.write(acct, 0, &INITIAL.to_le_bytes())?;
            }
            Ok(())
        })
        .expect("seed accounts");

        let stop = Arc::new(AtomicBool::new(false));
        let checked = Arc::new(AtomicU64::new(0));
        crossbeam::thread::scope(|s| {
            // lock-free readers, running across every failover phase
            for r in 0..2usize {
                let db = Arc::clone(&db);
                let stop = Arc::clone(&stop);
                let checked = Arc::clone(&checked);
                let rctx = format!("{ctx} reader {r}");
                s.spawn(move |_| {
                    while !stop.load(Ordering::Acquire) {
                        let total = db
                            .run_ro_txn(r, |snap| {
                                let mut sum = 0u64;
                                for acct in 0..ACCOUNTS {
                                    let b = snap.read(acct, 0, 8)?;
                                    sum += u64::from_le_bytes(b.try_into().unwrap());
                                }
                                Ok(sum)
                            })
                            .unwrap_or_else(|e| {
                                panic!("{rctx}: snapshot read errored during failover: {e}")
                            });
                        assert_eq!(
                            total,
                            ACCOUNTS * INITIAL,
                            "{rctx}: snapshot saw a torn transfer"
                        );
                        checked.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }

            // the writer drives transfers through a kill → rejoin cycle
            let transfer = |round: u64, n: u64| {
                for i in 0..n {
                    let from = (seed ^ round.wrapping_mul(31) ^ i) % ACCOUNTS;
                    let to = (from + 1 + (i % (ACCOUNTS - 1))) % ACCOUNTS;
                    db.run_txn((i % 3) as usize, |c| {
                        let a = u64::from_le_bytes(c.read(from, 0, 8)?.try_into().unwrap());
                        let b = u64::from_le_bytes(c.read(to, 0, 8)?.try_into().unwrap());
                        let moved = 3u64.min(a);
                        c.write(from, 0, &(a - moved).to_le_bytes())?;
                        c.write(to, 0, &(b + moved).to_le_bytes())
                    })
                    .expect("transfer during failover");
                }
            };
            transfer(0, 16);

            // kill: readers keep running while the fleet loses a stream
            let victim = seed as usize % STREAMS;
            let handle = FaultInjector::handle(FaultPlan::new().fail_from_write(0));
            db.inject_stream_fault_handle(victim, handle.clone())
                .expect("inject kill fault");
            let t0 = Instant::now();
            while !db.is_stream_dead(victim) {
                assert!(
                    t0.elapsed() < Duration::from_secs(10),
                    "{ctx}: stream {victim} never quarantined"
                );
                transfer(1, 1);
            }
            transfer(2, 12);

            // rejoin: readers keep running while the stream readmits
            handle.lock().revive();
            db.rejoin_stream(victim)
                .unwrap_or_else(|e| panic!("{ctx}: rejoin failed: {e}"));
            assert!(!db.is_degraded(), "{ctx}: degraded after rejoin");
            transfer(3, 16);

            stop.store(true, Ordering::Release);
        })
        .unwrap();
        assert!(
            checked.load(Ordering::Relaxed) > 0,
            "{ctx}: readers never completed a snapshot"
        );

        // recovered image must be byte-identical across a double recovery
        // with MVCC enabled, and still conserve the bank total
        let image = db.crash_image().expect("final crash image");
        let copy = clone_image(&image);
        let (mut rec, _) = WalDb::recover(image, cfg.wal.clone())
            .unwrap_or_else(|e| panic!("{ctx}: recovery failed: {e}"));
        let t = rec.begin();
        let total: u64 = (0..ACCOUNTS)
            .map(|p| u64::from_le_bytes(rec.read(t, p, 0, 8).unwrap().try_into().unwrap()))
            .sum();
        assert_eq!(
            total,
            ACCOUNTS * INITIAL,
            "{ctx}: recovered state lost money"
        );
        rec.abort(t).expect("read-only abort");
        let (rec2, _) = WalDb::recover(copy, cfg.wal.clone())
            .unwrap_or_else(|e| panic!("{ctx}: second recovery failed: {e}"));
        assert_disks_identical(&rec.crash_image().data, &rec2.crash_image().data, &ctx);
        Arc::try_unwrap(db)
            .ok()
            .expect("reader threads joined")
            .shutdown()
            .ok();
    }
}

// ---------------------------------------------------------------------------
// Leveled differential store (LSM): the flush/compaction protocol names its
// interesting crash sites — output written but install manifest unpublished,
// mid-run write after the intent publish, install published but inputs not
// yet reclaimed — and each one is tripped deterministically, per seed, per
// backend, per job kind. The manifest commit protocol's contract:
//
//   1. recovery never panics and never loses a committed key, whichever
//      protocol step the crash interrupted;
//   2. torn outputs are orphans (GC'd by free-map derivation, never read)
//      and installed transitions are never rolled back;
//   3. recovery writes nothing, so double recovery of any crash image is
//      byte-identical, report included;
//   4. the recovered store still commits, flushes, and compacts.
// ---------------------------------------------------------------------------

const LSM_SITES: [CrashSite; 3] = [
    CrashSite::PreManifestPublish,
    CrashSite::MidLevelWrite,
    CrashSite::PostPublishPreGc,
];

fn lsm_cfg(backend: BackendKind) -> LsmConfig {
    LsmConfig {
        journal_frames: 16,
        arena_frames: 128,
        memtable_limit: 8,
        l0_limit: 2,
        level_base_frames: 2,
        fanout: 2,
        max_levels: 3,
        backend,
        background: false,
    }
}

/// Committed key state: `Some(value)` for a live put, `None` for a
/// committed tombstone (the key must NOT be visible).
type LsmOracle = BTreeMap<u64, Option<Vec<u8>>>;

fn lsm_live(m: &LsmOracle) -> BTreeMap<u64, Vec<u8>> {
    m.iter()
        .filter_map(|(k, v)| v.clone().map(|v| (*k, v)))
        .collect()
}

/// Commit `n` transactions of 1–3 ops each — mostly puts, enough deletes
/// that tombstones flow down the hierarchy — updating the oracle in step.
fn lsm_commit_burst(store: &LsmStore, oracle: &mut LsmOracle, rng: &mut StdRng, n: usize) {
    for _ in 0..n {
        let t = store.begin();
        let mut staged: Vec<(u64, Option<Vec<u8>>)> = Vec::new();
        for _ in 0..rng.gen_range(1..4) {
            let key = rng.gen_range(0..32u64);
            if staged.iter().any(|(k, _)| *k == key) {
                continue;
            }
            if rng.gen_bool(0.85) {
                let mut v = vec![0u8; 8];
                rng.fill(&mut v[..]);
                store.put(t, key, &v).expect("stage put");
                staged.push((key, Some(v)));
            } else {
                store.delete(t, key).expect("stage delete");
                staged.push((key, None));
            }
        }
        store.commit(t).expect("clean commit");
        for (k, v) in staged {
            oracle.insert(k, v);
        }
    }
}

/// Post-crash checks shared by every sweep cell: recovery succeeds, the
/// committed relation is exactly intact under BOTH query strategies,
/// double recovery is byte-identical (report included), and the recovered
/// store still takes commits, flushes, and compactions.
fn lsm_check_recovery(
    store: &LsmStore,
    cfg: &LsmConfig,
    oracle: &LsmOracle,
    ctx: &str,
) -> LsmRecoveryReport {
    let (rec, report) = LsmStore::recover(store.crash_image(), cfg.clone())
        .unwrap_or_else(|e| panic!("{ctx}: recovery failed: {e}"));
    let want = lsm_live(oracle);
    for strategy in [ScanStrategy::Optimal, ScanStrategy::Basic] {
        let got: BTreeMap<u64, Vec<u8>> = rec
            .scan(strategy)
            .unwrap_or_else(|e| panic!("{ctx}: {strategy:?} scan failed: {e}"))
            .into_iter()
            .collect();
        assert!(
            got == want,
            "{ctx}: {strategy:?} scan diverged from the committed oracle\n \
             got: {got:?}\nwant: {want:?}"
        );
    }
    // recovery performs zero writes: recovering the recovered store's own
    // image must agree byte for byte and file the identical report
    let d1 = rec.crash_image().dump();
    let (rec2, report2) = LsmStore::recover(rec.crash_image(), cfg.clone())
        .unwrap_or_else(|e| panic!("{ctx}: second recovery failed: {e}"));
    assert_eq!(report, report2, "{ctx}: recovery report not deterministic");
    assert!(
        d1 == rec2.crash_image().dump(),
        "{ctx}: double recovery is not byte-identical"
    );
    // liveness: the recovered store still runs the full pipeline
    let t = rec.begin();
    rec.put(t, 10_000, b"post-crash").expect("post-crash put");
    rec.commit(t)
        .unwrap_or_else(|e| panic!("{ctx}: post-crash commit failed: {e}"));
    rec.flush_now()
        .unwrap_or_else(|e| panic!("{ctx}: post-crash flush failed: {e}"));
    rec.maintain()
        .unwrap_or_else(|e| panic!("{ctx}: post-crash maintain failed: {e}"));
    assert_eq!(
        rec.get(10_000).expect("post-crash get").as_deref(),
        Some(&b"post-crash"[..]),
        "{ctx}: post-crash key lost"
    );
    report
}

/// Per-site accounting the recovery report must show, given which job
/// (flush vs compaction) tripped the site.
fn lsm_check_site_accounting(
    site: CrashSite,
    compaction: bool,
    report: &LsmRecoveryReport,
    ctx: &str,
) {
    match site {
        CrashSite::PreManifestPublish | CrashSite::MidLevelWrite => {
            assert!(
                report.orphan_runs >= 1,
                "{ctx}: torn output not counted as an orphan: {report:?}"
            );
            assert_eq!(
                report.reclaimed_runs, 0,
                "{ctx}: nothing was retired before the install: {report:?}"
            );
        }
        CrashSite::PostPublishPreGc => {
            assert_eq!(
                report.orphan_runs, 0,
                "{ctx}: installed output miscounted as an orphan: {report:?}"
            );
            if compaction {
                assert!(
                    report.reclaimed_runs >= 1,
                    "{ctx}: retired inputs not reclaimed: {report:?}"
                );
            } else {
                // an installed flush bumps the journal generation: its
                // batches must not replay on top of the installed run
                assert_eq!(
                    report.replayed_batches, 0,
                    "{ctx}: stale journal replayed after an installed flush: {report:?}"
                );
            }
        }
    }
}

/// The named-crash-site sweep proper: seeds × sites × {flush, compaction},
/// on one backend. Committed state is built clean; the armed site then
/// crashes the device at the exact protocol step under the maintenance
/// job of choice.
fn lsm_named_site_sweep(backend: BackendKind, seeds: &[u64]) {
    for &seed in seeds {
        for (si, &site) in LSM_SITES.iter().enumerate() {
            for compaction in [false, true] {
                let cfg = lsm_cfg(backend.clone());
                let store = LsmStore::new(cfg.clone()).expect("new lsm store");
                let handle = FaultInjector::handle(FaultPlan::new());
                store.attach_faults(&handle);
                let mut rng = StdRng::seed_from_u64(
                    seed ^ ((si as u64 + 1) << 32) ^ ((compaction as u64) << 40),
                );
                let ctx = format!("lsm seed {seed} site {site:?} compaction {compaction}");

                // multi-level base state, committed clean: flush rounds,
                // then a full drain so deeper levels exist
                let mut oracle = LsmOracle::new();
                for _ in 0..3 {
                    lsm_commit_burst(&store, &mut oracle, &mut rng, 6);
                    store.flush_now().expect("clean flush");
                }
                store.maintain().expect("clean maintain");

                let err = if compaction {
                    // fill L0 past its limit without compacting; maintain()
                    // then picks CompactL0 and trips mid-merge
                    while store.manifest().l0.len() <= cfg.l0_limit {
                        lsm_commit_burst(&store, &mut oracle, &mut rng, 4);
                        store.flush_now().expect("clean flush");
                    }
                    store.set_crash_site(site);
                    store
                        .maintain()
                        .expect_err(&format!("{ctx}: armed compaction did not crash"))
                } else {
                    lsm_commit_burst(&store, &mut oracle, &mut rng, 3);
                    assert!(store.memtable_len() > 0, "{ctx}: nothing to flush");
                    store.set_crash_site(site);
                    store
                        .flush_now()
                        .expect_err(&format!("{ctx}: armed flush did not crash"))
                };
                assert!(
                    matches!(err, LsmError::Storage(StorageError::Offline)),
                    "{ctx}: unexpected crash error: {err}"
                );
                assert!(
                    handle.lock().crashed(),
                    "{ctx}: crash site never tripped the injector"
                );

                let report = lsm_check_recovery(&store, &cfg, &oracle, &ctx);
                lsm_check_site_accounting(site, compaction, &report, &ctx);
            }
        }
    }
}

#[test]
fn lsm_survives_named_crash_site_sweep() {
    lsm_named_site_sweep(BackendKind::Mem, &SEEDS);
}

#[test]
fn lsm_survives_named_crash_site_sweep_on_filedisk() {
    lsm_named_site_sweep(BackendKind::file(), &FILE_SEEDS);
}

/// The same three sites tripped on the BACKGROUND maintenance thread: the
/// worker observes the armed site through the very same fault handle the
/// foreground path uses, fails its job, and surfaces the error through
/// `wait_idle` — then recovery behaves exactly as in the foreground sweep.
#[test]
fn lsm_background_worker_trips_crash_sites_and_recovers() {
    for seed in [7u64, 1985, 31337] {
        for (si, &site) in LSM_SITES.iter().enumerate() {
            let cfg = LsmConfig {
                background: true,
                ..lsm_cfg(BackendKind::Mem)
            };
            let store = LsmStore::new(cfg.clone()).expect("new lsm store");
            let handle = FaultInjector::handle(FaultPlan::new());
            store.attach_faults(&handle);
            let mut rng = StdRng::seed_from_u64(seed ^ ((si as u64 + 1) << 32));
            let ctx = format!("lsm-bg seed {seed} site {site:?}");

            let mut oracle = LsmOracle::new();
            lsm_commit_burst(&store, &mut oracle, &mut rng, 10);
            store.wait_idle().expect("clean drain");

            // arm FIRST, then push the memtable over its limit: the worker
            // picks the flush up on its own thread and trips the site there.
            // A commit racing past the trip fails all-or-nothing (its
            // journal batch is either complete on the platter or dropped),
            // so at most one commit is ambiguous.
            store.set_crash_site(site);
            let mut ambiguous: Vec<(u64, Option<Vec<u8>>)> = Vec::new();
            loop {
                let t = store.begin();
                let key = rng.gen_range(32..64u64);
                let mut v = vec![0u8; 8];
                rng.fill(&mut v[..]);
                store.put(t, key, &v).expect("stage put");
                match store.commit(t) {
                    Ok(()) => {
                        oracle.insert(key, Some(v));
                    }
                    Err(_) => {
                        ambiguous.push((key, Some(v)));
                        break;
                    }
                }
                if store.memtable_len() >= cfg.memtable_limit {
                    break;
                }
            }
            let err = store
                .wait_idle()
                .expect_err(&format!("{ctx}: armed background flush did not crash"));
            assert!(
                matches!(err, LsmError::Storage(StorageError::Offline)),
                "{ctx}: unexpected crash error: {err}"
            );
            assert!(
                handle.lock().crashed(),
                "{ctx}: worker never tripped the injector"
            );

            // recover into foreground mode: the byte-identity and report
            // oracles need a quiescent store, and a background worker would
            // immediately flush the replayed memtable underneath them
            let rcfg = LsmConfig {
                background: false,
                ..cfg.clone()
            };
            let (rec, report) = LsmStore::recover(store.crash_image(), rcfg.clone())
                .unwrap_or_else(|e| panic!("{ctx}: recovery failed: {e}"));
            let got: BTreeMap<u64, Vec<u8>> = rec
                .scan(ScanStrategy::Optimal)
                .unwrap_or_else(|e| panic!("{ctx}: scan failed: {e}"))
                .into_iter()
                .collect();
            let without = lsm_live(&oracle);
            let mut with_m = oracle.clone();
            for (k, v) in &ambiguous {
                with_m.insert(*k, v.clone());
            }
            let with = lsm_live(&with_m);
            assert!(
                got == without || got == with,
                "{ctx}: recovered relation matches neither side of the \
                 interrupted commit\n got: {got:?}\n old: {without:?}\n new: {with:?}"
            );
            lsm_check_site_accounting(site, false, &report, &ctx);

            // double recovery and liveness, as in the foreground sweep
            let d1 = rec.crash_image().dump();
            let (rec2, report2) = LsmStore::recover(rec.crash_image(), rcfg)
                .unwrap_or_else(|e| panic!("{ctx}: second recovery failed: {e}"));
            assert_eq!(report, report2, "{ctx}: recovery report not deterministic");
            assert!(
                d1 == rec2.crash_image().dump(),
                "{ctx}: double recovery is not byte-identical"
            );
            let t = rec2.begin();
            rec2.put(t, 10_000, b"post-crash").expect("post-crash put");
            rec2.commit(t)
                .unwrap_or_else(|e| panic!("{ctx}: post-crash commit failed: {e}"));
            rec2.maintain()
                .unwrap_or_else(|e| panic!("{ctx}: post-crash maintain failed: {e}"));
        }
    }
}

/// Seeded-storm sweep: the same global-write-index crashpoint grid the
/// page engines run, against the LSM store — device faults land wherever
/// the protocol happens to be, foreground flushes and compactions
/// included. One commit (the crash-adjacent one) may be ambiguous; its
/// journal batch is all-or-nothing, so the recovered relation must equal
/// the oracle with or without it — nothing in between.
fn lsm_storm_sweep(backend: BackendKind, seeds: &[u64], crashpoints: &[u64]) {
    let mut crash_hits = 0usize;
    for &seed in seeds {
        for &crashpoint in crashpoints {
            let cfg = lsm_cfg(backend.clone());
            let store = LsmStore::new(cfg.clone()).expect("new lsm store");
            let plan = FaultPlan::seeded(seed, 1 << 20).crash_after_write(crashpoint);
            let handle = FaultInjector::handle(plan);
            store.attach_faults(&handle);
            let mut rng = StdRng::seed_from_u64(seed ^ (crashpoint << 32));
            let ctx = format!("lsm-storm seed {seed} crashpoint {crashpoint}");

            let mut committed = LsmOracle::new();
            let mut ambiguous: Vec<(u64, Option<Vec<u8>>)> = Vec::new();
            let mut errored = false;
            'storm: for i in 0..400usize {
                let t = store.begin();
                let mut staged: Vec<(u64, Option<Vec<u8>>)> = Vec::new();
                for _ in 0..rng.gen_range(1..4) {
                    let key = rng.gen_range(0..32u64);
                    if staged.iter().any(|(k, _)| *k == key) {
                        continue;
                    }
                    if rng.gen_bool(0.8) {
                        let mut v = vec![0u8; 8];
                        rng.fill(&mut v[..]);
                        store.put(t, key, &v).expect("stage put");
                        staged.push((key, Some(v)));
                    } else {
                        store.delete(t, key).expect("stage delete");
                        staged.push((key, None));
                    }
                }
                match store.commit(t) {
                    Ok(()) => {
                        for (k, v) in staged {
                            committed.insert(k, v);
                        }
                    }
                    Err(e) => {
                        // the batch may or may not have sealed before the
                        // crash — all-or-nothing either way
                        eprintln!("[lsm-storm] commit error: {e}");
                        ambiguous = staged;
                        errored = true;
                        break 'storm;
                    }
                }
                // periodic maintenance: flushes + compactions run through
                // the same faulted device the commits use
                if i % 4 == 3 {
                    if let Err(e) = store.maintain() {
                        // maintenance holds no staged data: committed
                        // state stays strict
                        eprintln!("[lsm-storm] maintain error: {e}");
                        errored = true;
                        break 'storm;
                    }
                }
            }
            assert!(errored, "{ctx}: storm ran dry without an error");
            crash_hits += usize::from(handle.lock().crashed());

            let (rec, _) = LsmStore::recover(store.crash_image(), cfg.clone())
                .unwrap_or_else(|e| panic!("{ctx}: recovery failed: {e}"));
            let got: BTreeMap<u64, Vec<u8>> = rec
                .scan(ScanStrategy::Optimal)
                .unwrap_or_else(|e| panic!("{ctx}: scan failed: {e}"))
                .into_iter()
                .collect();
            let got_basic: BTreeMap<u64, Vec<u8>> = rec
                .scan(ScanStrategy::Basic)
                .unwrap_or_else(|e| panic!("{ctx}: basic scan failed: {e}"))
                .into_iter()
                .collect();
            assert!(
                got == got_basic,
                "{ctx}: basic and optimal disagree after recovery"
            );
            let without = lsm_live(&committed);
            for (k, v) in &ambiguous {
                committed.insert(*k, v.clone());
            }
            let with = lsm_live(&committed);
            assert!(
                got == without || got == with,
                "{ctx}: recovered relation matches neither side of the \
                 interrupted commit\n got: {got:?}\n old: {without:?}\n new: {with:?}"
            );

            // double recovery is byte-identical even on storm-faulted images
            let d1 = rec.crash_image().dump();
            let (rec2, _) = LsmStore::recover(rec.crash_image(), cfg.clone())
                .unwrap_or_else(|e| panic!("{ctx}: second recovery failed: {e}"));
            assert!(
                d1 == rec2.crash_image().dump(),
                "{ctx}: double recovery is not byte-identical"
            );

            // the engine still works on the clean device
            let t = rec.begin();
            rec.put(t, 10_000, b"post-recovery").expect("put");
            rec.commit(t).expect("commit");
            rec.flush_now().expect("flush");
            rec.maintain().expect("maintain");
        }
    }
    let grid = seeds.len() * crashpoints.len();
    assert!(
        crash_hits * 2 >= grid,
        "scheduled crash fired in only {crash_hits}/{grid} runs"
    );
}

#[test]
fn lsm_survives_seeded_crashpoint_storm() {
    lsm_storm_sweep(BackendKind::Mem, &SEEDS, &CRASHPOINTS);
}

#[test]
fn lsm_survives_seeded_crashpoint_storm_on_filedisk() {
    lsm_storm_sweep(BackendKind::file(), &FILE_SEEDS, &FILE_CRASHPOINTS);
}

/// The satellite regression: the SAME fault plan, observed once by the
/// background compaction thread and once by the foreground `maintain`
/// path, must produce the SAME retry accounting and the SAME bytes. Both
/// paths share one counted-I/O layer and one injector handle, so any
/// divergence means background I/O stopped going through them.
#[test]
fn lsm_background_fault_accounting_matches_foreground() {
    for seed in [7u64, 42, 1985, 31337] {
        let run = |background: bool| {
            let cfg = LsmConfig {
                l0_limit: 0, // compact after every flush
                background,
                ..lsm_cfg(BackendKind::Mem)
            };
            let store = LsmStore::new(cfg.clone()).expect("new lsm store");
            // deterministic clean prefix: stop one key short of the flush
            // threshold so no maintenance runs before the plan attaches
            for k in 0..cfg.memtable_limit as u64 - 1 {
                let t = store.begin();
                store.put(t, k, &(seed ^ k).to_le_bytes()).expect("stage");
                store.commit(t).expect("clean commit");
            }
            // identical transient plan from here on: the final commit, the
            // flush, and the L0 compaction all run through it. Sparse on
            // purpose — a faulted write burns extra attempt indices on its
            // retries, and stacking a second per-index fault inside that
            // window would exhaust the store's bounded retry budget.
            let plan = (0..24u64).fold(FaultPlan::new(), |p, i| {
                let p = if i % 5 == 0 {
                    p.transient_write(i, 1)
                } else {
                    p
                };
                if i % 7 == 3 {
                    p.transient_read(i, 1)
                } else {
                    p
                }
            });
            store.attach_faults(&FaultInjector::handle(plan));
            let t = store.begin();
            store.put(t, 99, b"trip-the-threshold").expect("stage");
            store.commit(t).expect("final commit");
            if background {
                store.wait_idle().expect("background maintenance");
            } else {
                store.maintain().expect("foreground maintenance");
            }
            let stats = store.stats();
            assert!(
                stats.flushes >= 1 && stats.compactions >= 1,
                "seed {seed} background={background}: maintenance never ran: {stats:?}"
            );
            (stats, store.crash_image().dump())
        };
        let (fg, fg_dump) = run(false);
        let (bg, bg_dump) = run(true);
        assert_eq!(
            fg, bg,
            "seed {seed}: background maintenance accounted faults differently"
        );
        assert!(
            fg.write_retries > 0,
            "seed {seed}: the plan never forced a write retry: {fg:?}"
        );
        assert!(
            fg_dump == bg_dump,
            "seed {seed}: background and foreground maintenance diverged on disk"
        );
    }
}
