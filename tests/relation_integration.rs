//! The relation layer across every recovery architecture: the identical
//! relational workload (heap file + B+tree index kept in sync) must
//! behave identically on all five `PageStore` engines, and survive
//! crashes on the recoverable ones.

use recovery_machines::core::PageStore;
use recovery_machines::relation::{BTree, HeapFile};
use recovery_machines::shadow::{
    NoRedoStore, NoUndoStore, OverwriteConfig, ShadowConfig, ShadowPager, VersionConfig,
    VersionStore,
};
use recovery_machines::wal::{WalConfig, WalDb};

/// Maintain a heap file and a B+tree index over it in one transaction
/// stream; return the final (sorted) table contents read back through
/// *both* access paths.
type Rows = Vec<(u64, Vec<u8>)>;

fn workload<S: PageStore>(store: &mut S) -> (Rows, Rows) {
    let t = store.begin();
    let heap = HeapFile::create(store, t, 0, 32).unwrap();
    let index = BTree::create(store, t, 40, 64).unwrap();
    store.commit(t).unwrap();

    // committed batch
    let t = store.begin();
    for k in 0..60u64 {
        let v = format!("row-{k:03}");
        heap.insert(store, t, k, v.as_bytes()).unwrap();
        index.insert(store, t, k, v.as_bytes()).unwrap();
    }
    store.commit(t).unwrap();

    // aborted batch — must leave no trace in either structure
    let t = store.begin();
    for k in 60..90u64 {
        heap.insert(store, t, k, b"ghost").unwrap();
        index.insert(store, t, k, b"ghost").unwrap();
    }
    store.abort(t).unwrap();

    // committed updates + deletes
    let t = store.begin();
    for k in (0..60u64).step_by(4) {
        let v = format!("upd-{k:03}");
        heap.update(store, t, k, v.as_bytes()).unwrap();
        index.insert(store, t, k, v.as_bytes()).unwrap();
    }
    heap.delete(store, t, 13).unwrap();
    index.delete(store, t, 13).unwrap();
    store.commit(t).unwrap();

    let t = store.begin();
    let mut via_heap = heap.scan(store, t, |_, _| true).unwrap();
    via_heap.sort_by_key(|(k, _)| *k);
    let via_index = index.range(store, t, 0, u64::MAX).unwrap();
    store.abort(t).unwrap();
    (via_heap, via_index)
}

fn assert_consistent(label: &str, heap: &[(u64, Vec<u8>)], index: &[(u64, Vec<u8>)]) {
    assert_eq!(heap.len(), 59, "{label}: 60 rows - 1 delete");
    assert_eq!(heap, index, "{label}: heap and index views must agree");
    assert_eq!(heap[0].1, b"upd-000", "{label}: update applied");
    assert!(
        !heap.iter().any(|(k, _)| *k == 13),
        "{label}: delete applied"
    );
    assert!(
        !heap.iter().any(|(_, v)| v == b"ghost"),
        "{label}: abort clean"
    );
}

#[test]
fn identical_behaviour_on_all_architectures() {
    let (h, i) = workload(&mut WalDb::new(WalConfig {
        data_pages: 128,
        pool_frames: 16,
        log_frames: 1 << 15,
        ..WalConfig::default()
    }));
    assert_consistent("wal", &h, &i);
    let reference = h;

    let (h, i) = workload(
        &mut ShadowPager::new(ShadowConfig {
            logical_pages: 128,
            data_frames: 512,
            ..ShadowConfig::default()
        })
        .unwrap(),
    );
    assert_consistent("shadow", &h, &i);
    assert_eq!(h, reference, "shadow vs wal");

    let (h, i) = workload(&mut VersionStore::new(VersionConfig {
        logical_pages: 128,
        commit_frames: 8,
    }));
    assert_consistent("version", &h, &i);
    assert_eq!(h, reference, "version vs wal");

    let (h, i) = workload(&mut NoUndoStore::new(OverwriteConfig {
        logical_pages: 128,
        scratch_slots: 80,
    }));
    assert_consistent("no-undo", &h, &i);
    assert_eq!(h, reference, "no-undo vs wal");

    let (h, i) = workload(&mut NoRedoStore::new(OverwriteConfig {
        logical_pages: 128,
        scratch_slots: 80,
    }));
    assert_consistent("no-redo", &h, &i);
    assert_eq!(h, reference, "no-redo vs wal");
}

#[test]
fn relational_state_survives_crash_on_wal() {
    let cfg = WalConfig {
        data_pages: 128,
        pool_frames: 8,
        log_frames: 1 << 15,
        ..WalConfig::default()
    };
    let mut db = WalDb::new(cfg.clone());
    let (heap_view, index_view) = workload(&mut db);
    assert_consistent("pre-crash", &heap_view, &index_view);

    let (mut db2, _) = WalDb::recover(db.crash_image(), cfg).unwrap();
    let t = db2.begin();
    let heap = HeapFile::open(&mut db2, t, 0).unwrap();
    let index = BTree::open(&mut db2, t, 40, 64).unwrap();
    let mut h = heap.scan(&mut db2, t, |_, _| true).unwrap();
    h.sort_by_key(|(k, _)| *k);
    let i = index.range(&mut db2, t, 0, u64::MAX).unwrap();
    assert_consistent("post-crash", &h, &i);
    assert_eq!(h, heap_view);
}

#[test]
fn relational_state_survives_crash_on_shadow() {
    let cfg = ShadowConfig {
        logical_pages: 128,
        data_frames: 512,
        ..ShadowConfig::default()
    };
    let mut db = ShadowPager::new(cfg.clone()).unwrap();
    let (heap_view, _) = workload(&mut db);

    let (mut db2, _) = ShadowPager::recover(db.crash_image(), cfg).unwrap();
    let t = db2.begin();
    let heap = HeapFile::open(&mut db2, t, 0).unwrap();
    let mut h = heap.scan(&mut db2, t, |_, _| true).unwrap();
    h.sort_by_key(|(k, _)| *k);
    db2.abort(t).unwrap();
    assert_eq!(h, heap_view);
}
