//! Property-based equivalence of the paper-§3 query strategies over the
//! leveled differential store: for ANY committed history — puts, deletes,
//! aborts, flushes, compactions, crashes — the *basic* strategy (full
//! set-union of A entries, set-difference against D entries) and the
//! *optimal* strategy (newest-first priority walk relying on the level
//! recency invariant) must present the identical relation, and both must
//! match a straightforward in-memory oracle. The two strategies are
//! genuinely different evaluation mechanisms, so this property is a real
//! check on the compaction invariants: any level that lets a stale entry
//! shadow a newer one, or a dropped tombstone resurrect a key, splits
//! basic from optimal.

use proptest::prelude::*;
use recovery_machines::difffile::{LsmConfig, LsmStore, ScanStrategy};
use std::collections::BTreeMap;

const KEYS: u64 = 24;

#[derive(Debug, Clone)]
enum Op {
    /// One transaction: key → Some(put value) | None (delete), then
    /// commit or abort.
    Txn {
        ops: Vec<(u64, Option<u8>)>,
        commit: bool,
    },
    /// Force a memtable flush into a fresh L0 run.
    Flush,
    /// Drain all due maintenance (L0 and level compactions).
    Maintain,
    /// Crash (snapshot the device) and recover from the image.
    Crash,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (
            proptest::collection::vec((0..KEYS, proptest::option::of(any::<u8>())), 1..4),
            // aborted work is invisible by construction; weight commits 3:1
            0..4u8
        )
            .prop_map(|(ops, commit)| Op::Txn { ops, commit: commit > 0 }),
        2 => Just(Op::Flush),
        1 => Just(Op::Maintain),
        1 => Just(Op::Crash),
    ]
}

fn cfg() -> LsmConfig {
    // small enough that a few dozen transactions populate L0 AND the
    // compacted levels, so the equivalence is tested across a real
    // multi-level hierarchy, not just the memtable
    LsmConfig {
        journal_frames: 16,
        arena_frames: 128,
        memtable_limit: 6,
        l0_limit: 2,
        level_base_frames: 2,
        fanout: 2,
        max_levels: 3,
        ..LsmConfig::default()
    }
}

/// Every read path must agree with the model: full scans, point lookups
/// for every key, and a couple of interior range scans — each under both
/// strategies.
fn check_equivalence(store: &LsmStore, model: &BTreeMap<u64, Vec<u8>>, ctx: &str) {
    let want: Vec<(u64, Vec<u8>)> = model.iter().map(|(k, v)| (*k, v.clone())).collect();
    for strategy in [ScanStrategy::Basic, ScanStrategy::Optimal] {
        let got = store.scan(strategy).expect("scan");
        assert_eq!(got, want, "{ctx}: {strategy:?} full scan diverged");
    }
    for key in 0..KEYS {
        let want = model.get(&key).cloned();
        for strategy in [ScanStrategy::Basic, ScanStrategy::Optimal] {
            let got = store.get_with(key, strategy).expect("get");
            assert_eq!(got, want, "{ctx}: {strategy:?} get({key}) diverged");
        }
    }
    for (lo, hi) in [(0, KEYS / 2), (KEYS / 3, KEYS - 1), (KEYS / 2, KEYS / 2)] {
        let want: Vec<(u64, Vec<u8>)> =
            model.range(lo..=hi).map(|(k, v)| (*k, v.clone())).collect();
        for strategy in [ScanStrategy::Basic, ScanStrategy::Optimal] {
            let got = store.range(lo, hi, strategy).expect("range");
            assert_eq!(got, want, "{ctx}: {strategy:?} range({lo}..={hi}) diverged");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn basic_and_optimal_agree_over_multi_level_stores(
        ops in proptest::collection::vec(op_strategy(), 1..60)
    ) {
        let mut store = LsmStore::new(cfg()).expect("new lsm store");
        let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        for (i, op) in ops.into_iter().enumerate() {
            match op {
                Op::Txn { ops, commit } => {
                    let t = store.begin();
                    for &(key, val) in &ops {
                        match val {
                            Some(b) => store.put(t, key, &[b; 6]).expect("put"),
                            None => store.delete(t, key).expect("delete"),
                        }
                    }
                    if commit {
                        store.commit(t).expect("commit");
                        // last staged op per key wins, exactly like the
                        // transaction buffer
                        for (key, val) in ops {
                            match val {
                                Some(b) => { model.insert(key, vec![b; 6]); }
                                None => { model.remove(&key); }
                            }
                        }
                    } else {
                        store.abort(t).expect("abort");
                    }
                }
                Op::Flush => store.flush_now().expect("flush"),
                Op::Maintain => store.maintain().expect("maintain"),
                Op::Crash => {
                    let (rec, _) = LsmStore::recover(store.crash_image(), cfg())
                        .expect("recover");
                    store = rec;
                }
            }
            check_equivalence(&store, &model, &format!("after op {i}"));
        }
        // push everything through the full hierarchy and re-check: the
        // final state exercises compacted levels even if the random walk
        // never drew Maintain late
        store.flush_now().expect("final flush");
        store.maintain().expect("final maintain");
        check_equivalence(&store, &model, "after final compaction");
    }
}
