//! Property tests for the observability substrate (`rmdb-obs`).
//!
//! Three families, one per load-bearing guarantee:
//!
//! * **histogram monotonicity** — successive snapshots of a histogram
//!   under arbitrary record sequences never lose counts or sum;
//! * **percentile bucket-soundness** — for arbitrary samples, every
//!   quantile estimate lands inside the power-of-two bucket that holds
//!   the true rank-order statistic, and quantiles are monotone in `q`;
//! * **event-ring integrity** — a multi-writer storm never produces a
//!   torn event (fields from two different writers) or a duplicate
//!   sequence number, and accounting (`emitted == published + dropped`)
//!   balances.

use proptest::prelude::*;
use recovery_machines::obs::{EventKind, EventRing, Registry, BUCKET_BOUNDS};
use std::sync::atomic::{AtomicBool, Ordering};

/// Index of the bucket a value lands in (mirror of the recorder's rule).
fn bucket_of(v: u64) -> usize {
    BUCKET_BOUNDS.partition_point(|&b| b < v)
}

/// Inclusive value range covered by bucket `i`.
fn bucket_range(i: usize) -> (u64, u64) {
    let lo = if i == 0 { 0 } else { BUCKET_BOUNDS[i - 1] + 1 };
    (lo, BUCKET_BOUNDS[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Snapshots taken after each record are monotone: count and sum
    /// never decrease, min never increases, max never decreases.
    #[test]
    fn histogram_snapshots_are_monotone(
        samples in proptest::collection::vec(0u64..=1u64 << 24, 1..64),
    ) {
        let reg = Registry::new();
        let h = reg.histogram("t.lat_us");
        let mut prev = h.snapshot();
        for &s in &samples {
            h.record(s);
            let cur = h.snapshot();
            prop_assert!(cur.count >= prev.count, "count regressed");
            prop_assert!(cur.sum >= prev.sum, "sum regressed");
            prop_assert!(cur.max >= prev.max, "max regressed");
            if prev.count > 0 {
                prop_assert!(cur.min <= prev.min, "min increased");
            }
            prop_assert_eq!(cur.count, prev.count + 1);
            prev = cur;
        }
        prop_assert_eq!(prev.count, samples.len() as u64);
        prop_assert_eq!(prev.sum, samples.iter().sum::<u64>());
        prop_assert_eq!(prev.min, *samples.iter().min().unwrap());
        prop_assert_eq!(prev.max, *samples.iter().max().unwrap());
    }

    /// Every quantile estimate lies inside the bucket that contains the
    /// true rank-order statistic, never exceeds the observed max, and
    /// quantiles are monotone in `q`.
    #[test]
    fn percentiles_are_within_bucket_bounds(
        mut samples in proptest::collection::vec(0u64..=1u64 << 24, 1..128),
        q_pcts in proptest::collection::vec(0u32..=100u32, 1..8),
    ) {
        let qs: Vec<f64> = q_pcts.iter().map(|&p| p as f64 / 100.0).collect();
        let reg = Registry::new();
        let h = reg.histogram("t.lat_us");
        for &s in &samples {
            h.record(s);
        }
        let snap = h.snapshot();
        samples.sort_unstable();
        let n = samples.len() as u64;
        for &q in &qs {
            let est = snap.quantile(q);
            // the recorder's rank rule, replayed against the raw samples
            let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
            let truth = samples[rank as usize - 1];
            let (lo, hi) = bucket_range(bucket_of(truth));
            prop_assert!(
                est >= lo.min(snap.max) && est <= hi,
                "quantile({q}) = {est} outside bucket [{lo}, {hi}] of true value {truth}"
            );
            prop_assert!(est <= snap.max, "estimate above observed max");
        }
        // monotone in q
        let mut sorted_qs = qs.clone();
        sorted_qs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let ests: Vec<u64> = sorted_qs.iter().map(|&q| snap.quantile(q)).collect();
        for w in ests.windows(2) {
            prop_assert!(w[0] <= w[1], "quantiles not monotone in q: {ests:?}");
        }
    }

    /// Single-writer seqs are dense and the snapshot reproduces exactly
    /// the published payloads (no loss below capacity, no reordering).
    #[test]
    fn event_ring_single_writer_is_lossless_below_capacity(
        payloads in proptest::collection::vec(any::<u64>(), 1..96),
    ) {
        let ring = EventRing::new(128);
        for (i, &p) in payloads.iter().enumerate() {
            let seq = ring.emit(EventKind::TxnCommit, i as u64, 0, 0, p);
            prop_assert_eq!(seq, i as u64, "seqs must be dense from zero");
        }
        let events = ring.snapshot();
        prop_assert_eq!(events.len(), payloads.len());
        prop_assert_eq!(ring.dropped(), 0);
        for (i, ev) in events.iter().enumerate() {
            prop_assert_eq!(ev.seq, i as u64);
            prop_assert_eq!(ev.txn, i as u64);
            prop_assert_eq!(ev.payload, payloads[i]);
        }
    }
}

/// Multi-writer storm with a concurrent reader: no torn events, no
/// duplicate seqs, and the emit accounting balances.
#[test]
fn event_ring_multi_writer_stress_never_tears() {
    const WRITERS: u64 = 4;
    const PER_WRITER: u64 = 5_000;
    let ring = EventRing::new(256);
    let stop = AtomicBool::new(false);
    // every event carries a checksum tying its fields together; a torn
    // read (fields from two writers in one slot) breaks the relation
    let check = |w: u64, i: u64| w.wrapping_mul(0x9E37_79B9).wrapping_add(i);

    crossbeam::thread::scope(|s| {
        let writers: Vec<_> = (0..WRITERS)
            .map(|w| {
                let ring = &ring;
                s.spawn(move |_| {
                    for i in 0..PER_WRITER {
                        ring.emit(EventKind::StreamForce, w, i, w + i, check(w, i));
                    }
                })
            })
            .collect();
        // concurrent reader: every mid-storm snapshot must already be
        // seq-sorted, duplicate-free, and checksum-clean
        let ring = &ring;
        let stop = &stop;
        s.spawn(move |_| {
            while !stop.load(Ordering::Relaxed) {
                let events = ring.snapshot();
                for pair in events.windows(2) {
                    assert!(pair[0].seq < pair[1].seq, "duplicate or unsorted seq");
                }
                for ev in &events {
                    assert_eq!(ev.payload, check(ev.txn, ev.stream), "torn event");
                    assert_eq!(ev.page, ev.txn + ev.stream, "torn event");
                }
            }
        });
        for handle in writers {
            handle.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
    })
    .unwrap();

    let events = ring.snapshot();
    assert_eq!(ring.emitted(), WRITERS * PER_WRITER);
    assert!(events.len() <= ring.capacity());
    // final quiescent snapshot: the full integrity sweep once more
    let mut seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
    let before = seqs.len();
    seqs.dedup();
    assert_eq!(seqs.len(), before, "duplicate seqs in final snapshot");
    for ev in &events {
        assert_eq!(ev.payload, check(ev.txn, ev.stream), "torn event at rest");
    }
    // a bounded ring under overload drops: accounting must balance
    assert!(ring.dropped() + events.len() as u64 <= ring.emitted());
}

/// Registry-level smoke: counters, gauges, histograms and the event ring
/// round-trip through a snapshot and its JSON export.
#[test]
fn snapshot_json_round_trips_core_fields() {
    let reg = Registry::new();
    reg.counter("a.count").add(7);
    reg.gauge("b.level").set(3);
    reg.histogram("c.lat_us").record(100);
    reg.histogram("c.lat_us").record(300);
    reg.emit(EventKind::Checkpoint, 1, 2, 3, 4);
    let snap = reg.snapshot();
    assert_eq!(snap.counter("a.count"), Some(7));
    assert_eq!(snap.gauge("b.level"), Some(3));
    let h = snap.histogram("c.lat_us").expect("histogram present");
    assert_eq!(h.count, 2);
    assert_eq!(h.sum, 400);
    let json = snap.to_json();
    // the exporter is hand-rolled: pin the shape the verify gate parses
    assert!(json.contains("\"counters\""));
    assert!(json.contains("\"a.count\":7"));
    assert!(json.contains("\"c.lat_us\""));
    assert!(json.contains("\"p95\""));
    assert_eq!(reg.recent_events().len(), 1);
}
