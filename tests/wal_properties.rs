//! Property-based tests of the parallel-logging engine: arbitrary
//! operation sequences, stream counts, selection policies and log modes
//! must always recover exactly the committed state.

use proptest::prelude::*;
use recovery_machines::storage::FRAME_SIZE;
use recovery_machines::wal::{LogMode, SelectionPolicy, WalConfig, WalDb};
use std::collections::HashMap;

const PAGES: u64 = 8;
const SLOT: usize = 16;

/// A scripted operation.
#[derive(Debug, Clone)]
enum Op {
    /// Begin a txn, write the listed (page, byte) pairs, then commit or
    /// abort.
    Txn {
        writes: Vec<(u64, u8)>,
        commit: bool,
    },
    /// Take a checkpoint.
    Checkpoint,
    /// Crash and recover.
    Crash,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (
            proptest::collection::vec((0..PAGES, any::<u8>()), 1..4),
            any::<bool>()
        )
            .prop_map(|(writes, commit)| Op::Txn { writes, commit }),
        1 => Just(Op::Checkpoint),
        2 => Just(Op::Crash),
    ]
}

fn config(streams: usize, physical: bool, policy: SelectionPolicy) -> WalConfig {
    WalConfig {
        data_pages: PAGES,
        pool_frames: 2, // aggressive stealing
        log_streams: streams,
        log_frames: 1 << 14,
        log_mode: if physical {
            LogMode::Physical
        } else {
            LogMode::Logical
        },
        policy,
        ..WalConfig::default()
    }
}

fn run_script(ops: Vec<Op>, streams: usize, physical: bool, policy: SelectionPolicy) {
    let cfg = config(streams, physical, policy);
    let mut db = WalDb::new(cfg.clone());
    let mut oracle: HashMap<u64, u8> = HashMap::new();
    for op in ops {
        match op {
            Op::Txn { writes, commit } => {
                let t = db.begin();
                let mut deduped: Vec<(u64, u8)> = Vec::new();
                for (page, byte) in writes {
                    if deduped.iter().any(|&(p, _)| p == page) {
                        continue;
                    }
                    db.write(t, page, 0, &[byte; SLOT]).unwrap();
                    deduped.push((page, byte));
                }
                if commit {
                    db.commit(t).unwrap();
                    for (page, byte) in deduped {
                        oracle.insert(page, byte);
                    }
                } else {
                    db.abort(t).unwrap();
                }
            }
            Op::Checkpoint => db.checkpoint().unwrap(),
            Op::Crash => {
                let (recovered, report) = WalDb::recover(db.crash_image(), cfg.clone()).unwrap();
                // a clean crash tears nothing: salvage and quarantine are
                // strictly fault-storm phenomena
                assert_eq!(report.salvaged_records, 0, "clean crash salvaged records");
                assert_eq!(
                    report.quarantined_log_pages, 0,
                    "clean crash quarantined log pages"
                );
                assert_eq!(
                    report.quarantined_data_pages, 0,
                    "clean crash quarantined data pages"
                );
                db = recovered;
            }
        }
        // committed state must match the oracle at every step
        let t = db.begin();
        for page in 0..PAGES {
            let want = vec![oracle.get(&page).copied().unwrap_or(0); SLOT];
            assert_eq!(db.read(t, page, 0, SLOT).unwrap(), want, "page {page}");
        }
        db.abort(t).unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn logical_any_script_recovers(
        ops in proptest::collection::vec(op_strategy(), 1..20),
        streams in 1usize..5,
    ) {
        run_script(ops, streams, false, SelectionPolicy::Cyclic);
    }

    #[test]
    fn physical_any_script_recovers(
        ops in proptest::collection::vec(op_strategy(), 1..12),
        streams in 1usize..4,
    ) {
        run_script(ops, streams, true, SelectionPolicy::Cyclic);
    }

    #[test]
    fn every_policy_recovers(
        ops in proptest::collection::vec(op_strategy(), 1..12),
        policy_idx in 0usize..4,
    ) {
        run_script(ops, 3, false, SelectionPolicy::ALL[policy_idx]);
    }

    #[test]
    fn double_crash_is_idempotent(
        writes in proptest::collection::vec((0..PAGES, any::<u8>()), 1..6),
    ) {
        let cfg = config(2, false, SelectionPolicy::Cyclic);
        let mut db = WalDb::new(cfg.clone());
        let mut oracle: HashMap<u64, u8> = HashMap::new();
        // one committed txn per write
        for &(page, byte) in &writes {
            let t = db.begin();
            db.write(t, page, 0, &[byte; SLOT]).unwrap();
            db.commit(t).unwrap();
            oracle.insert(page, byte);
        }
        // a loser in flight
        let loser = db.begin();
        db.write(loser, writes[0].0, 0, &[0xEE; SLOT]).unwrap();

        let (db2, _) = WalDb::recover(db.crash_image(), cfg.clone()).unwrap();
        let (mut db3, r2) = WalDb::recover(db2.crash_image(), cfg.clone()).unwrap();
        prop_assert_eq!(r2.undone_updates, 0, "second recovery must have nothing to undo");
        let t = db3.begin();
        for page in 0..PAGES {
            let want = vec![oracle.get(&page).copied().unwrap_or(0); SLOT];
            prop_assert_eq!(db3.read(t, page, 0, SLOT).unwrap(), want);
        }
        db3.abort(t).unwrap();
    }
}

/// A torn (checksum-invalid) log page is quarantined, not fatal: recovery
/// reports it and the database stays usable.
#[test]
fn torn_log_page_is_quarantined_not_fatal() {
    let cfg = config(2, false, SelectionPolicy::Cyclic);
    let mut db = WalDb::new(cfg.clone());
    for byte in 0..6u8 {
        let t = db.begin();
        db.write(t, u64::from(byte) % PAGES, 0, &[byte; SLOT])
            .unwrap();
        db.commit(t).unwrap();
    }
    let mut image = db.crash_image();

    // scribble an allocated log frame past the stream header
    let victim = (1..image.logs[0].capacity())
        .find(|&a| image.logs[0].is_allocated(a))
        .expect("no allocated log frame to corrupt");
    image.logs[0]
        .write_partial(victim, &[0xA5u8; FRAME_SIZE], FRAME_SIZE / 2)
        .unwrap();

    let (mut db, report) = WalDb::recover(image, cfg).expect("quarantine, not fatal");
    assert!(
        report.quarantined_log_pages >= 1,
        "torn log page was not quarantined: {report:?}"
    );
    // updates at or past the torn page are lost, but the engine must still
    // serve reads and new transactions
    let t = db.begin();
    for page in 0..PAGES {
        db.read(t, page, 0, SLOT).unwrap();
    }
    db.abort(t).unwrap();
    let t = db.begin();
    db.write(t, 0, 0, &[0xBB; SLOT]).unwrap();
    db.commit(t).unwrap();
}
