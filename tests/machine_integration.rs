//! Integration tests of the database-machine simulator: determinism,
//! conservation laws, and the paper's qualitative orderings across seeds.

use recovery_machines::machine::config::{
    AccessPattern, DiffFileConfig, LoggingConfig, MachineConfig, OverwritingConfig,
    RecoveryOverlay, ShadowPtConfig,
};
use recovery_machines::machine::Machine;
use rmdb_disk::DiskMode;

fn base(seed: u64) -> MachineConfig {
    MachineConfig {
        num_txns: 15,
        seed,
        ..MachineConfig::default()
    }
}

#[test]
fn simulation_is_deterministic() {
    for overlay in [
        RecoveryOverlay::None,
        RecoveryOverlay::Logging(LoggingConfig::default()),
        RecoveryOverlay::ShadowPt(ShadowPtConfig::default()),
        RecoveryOverlay::Overwriting(OverwritingConfig::default()),
        RecoveryOverlay::DiffFile(DiffFileConfig::default()),
    ] {
        let mk = || {
            let mut c = base(7);
            c.overlay = overlay.clone();
            Machine::new(c).run()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.total_time_ms, b.total_time_ms);
        assert_eq!(a.pages_processed, b.pages_processed);
        assert_eq!(a.data_disk_accesses, b.data_disk_accesses);
    }
}

#[test]
fn every_overlay_drains_every_configuration() {
    for seed in [1u64, 2] {
        for (name, cfg) in MachineConfig::paper_configurations() {
            for overlay in [
                RecoveryOverlay::None,
                RecoveryOverlay::Logging(LoggingConfig::default()),
                RecoveryOverlay::ShadowPt(ShadowPtConfig::default()),
                RecoveryOverlay::Overwriting(OverwritingConfig::default()),
                RecoveryOverlay::DiffFile(DiffFileConfig::default()),
            ] {
                let mut c = cfg.clone();
                c.num_txns = 8;
                c.seed = seed;
                c.overlay = overlay;
                let r = Machine::new(c).run();
                assert_eq!(r.txns_completed, 8, "{name} seed {seed}");
                assert!(r.exec_time_per_page_ms > 0.0);
            }
        }
    }
}

#[test]
fn pages_processed_matches_workload() {
    // the machine must process exactly the pages the workload reads
    let cfg = base(11);
    let r = Machine::new(cfg.clone()).run();
    let mut rng = rmdb_sim::SimRng::seed_from_u64(cfg.seed);
    let specs = recovery_machines::machine::workload::generate(&cfg, &mut rng);
    let expected: usize = specs.iter().map(|s| s.n_pages()).sum();
    assert_eq!(r.pages_processed, expected as u64);
}

#[test]
fn qualitative_orderings_hold_across_seeds() {
    for seed in [5u64, 23, 77] {
        // sequential beats random on conventional disks
        let rnd = Machine::new(base(seed)).run();
        let seq = Machine::new(MachineConfig {
            access: AccessPattern::Sequential,
            ..base(seed)
        })
        .run();
        assert!(
            seq.exec_time_per_page_ms < rnd.exec_time_per_page_ms,
            "seed {seed}: sequential should beat random"
        );

        // parallel-access disks shine on sequential workloads
        let par_seq = Machine::new(MachineConfig {
            access: AccessPattern::Sequential,
            disk_mode: DiskMode::ParallelAccess,
            ..base(seed)
        })
        .run();
        assert!(
            par_seq.exec_time_per_page_ms < 0.5 * seq.exec_time_per_page_ms,
            "seed {seed}: parallel-access should transform sequential scans"
        );

        // logical logging stays within a whisker of bare
        let logged = Machine::new(MachineConfig {
            overlay: RecoveryOverlay::Logging(LoggingConfig::default()),
            ..base(seed)
        })
        .run();
        let ratio = logged.exec_time_per_page_ms / rnd.exec_time_per_page_ms;
        assert!(
            (0.9..1.12).contains(&ratio),
            "seed {seed}: logging ratio {ratio}"
        );
    }
}

#[test]
fn dedicated_link_bandwidth_is_immaterial() {
    // the paper's §4.1.3 finding: 1.0 vs 0.01 MB/s barely matters
    let run_at = |bw: f64| {
        Machine::new(MachineConfig {
            overlay: RecoveryOverlay::Logging(LoggingConfig {
                link_bandwidth_mb_s: bw,
                ..LoggingConfig::default()
            }),
            ..base(3)
        })
        .run()
        .exec_time_per_page_ms
    };
    let fast = run_at(1.0);
    let slow = run_at(0.01);
    assert!(
        (slow - fast).abs() / fast < 0.1,
        "link bandwidth should be immaterial: {fast} vs {slow}"
    );
}

#[test]
fn routing_fragments_through_cache_is_harmless() {
    // §4.1.3's second finding
    let run_with = |via_cache: bool| {
        Machine::new(MachineConfig {
            overlay: RecoveryOverlay::Logging(LoggingConfig {
                route_through_cache: via_cache,
                ..LoggingConfig::default()
            }),
            ..base(3)
        })
        .run()
        .exec_time_per_page_ms
    };
    let dedicated = run_with(false);
    let through_cache = run_with(true);
    assert!(
        (through_cache - dedicated).abs() / dedicated < 0.1,
        "routing through the cache should not hurt: {dedicated} vs {through_cache}"
    );
}

#[test]
fn utilization_bounds_are_respected() {
    for (name, mut cfg) in MachineConfig::paper_configurations() {
        cfg.num_txns = 8;
        let r = Machine::new(cfg).run();
        for (i, u) in r.data_disk_util.iter().enumerate() {
            assert!((0.0..=1.0001).contains(u), "{name}: disk {i} util {u}");
        }
        assert!((0.0..=1.0001).contains(&r.qp_util), "{name}: qp util");
    }
}

#[test]
fn blocked_pages_stay_small_with_logical_logging() {
    let r = Machine::new(MachineConfig {
        overlay: RecoveryOverlay::Logging(LoggingConfig::default()),
        num_txns: 20,
        ..MachineConfig::default()
    })
    .run();
    // the paper: "on average, there were less than 5 pages in the cache
    // waiting for their log records"
    assert!(
        r.mean_blocked_pages < 6.0,
        "blocked pages {}",
        r.mean_blocked_pages
    );
}
