//! Restart-engine equivalence: the checkpoint-bounded parallel restart
//! must produce **byte-identical** recovered state for every redo worker
//! count K — data disk *and* log disks — and the same data-disk state as
//! serial [`WalDb::recover`] full-log replay.
//!
//! The workloads here exercise the interesting structure: fuzzy
//! auto-checkpoints held open by a long-lived drone transaction (so the
//! checkpoint bound is real but never quiescent-truncates the log),
//! aborted transactions, and in-flight losers cut by the crash.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use recovery_machines::restart::{restart, RedoScheduler, RestartConfig};
use recovery_machines::storage::Disk;
use recovery_machines::wal::{LoggingPolicy, SelectionPolicy, WalConfig, WalDb};

const PAGES: u64 = 64;

fn assert_disks_identical(a: &Disk, b: &Disk, what: &str) {
    assert_eq!(a.capacity(), b.capacity(), "{what}: capacity");
    for addr in 0..a.capacity() {
        assert_eq!(
            a.is_allocated(addr),
            b.is_allocated(addr),
            "{what}: allocation of frame {addr}"
        );
        if a.is_allocated(addr) {
            let fa = a.read_frame(addr).expect("frame a");
            let fb = b.read_frame(addr).expect("frame b");
            assert!(fa == fb, "{what}: frame {addr} differs");
        }
    }
}

fn cfg(streams: usize, ckpt_every: u64) -> WalConfig {
    WalConfig {
        data_pages: PAGES,
        pool_frames: 8,
        log_streams: streams,
        policy: SelectionPolicy::Cyclic,
        ckpt_every_commits: ckpt_every,
        ..WalConfig::default()
    }
}

/// Build a database mid-flight: a drone transaction pins every fuzzy
/// checkpoint open, `txns` transactions commit or abort, and a loser is
/// left in flight when the crash image is taken.
fn build_crashed(streams: usize, ckpt_every: u64, txns: u64) -> WalDb {
    let mut db = WalDb::new(cfg(streams, ckpt_every));
    let drone = db.begin();
    db.write(drone, PAGES - 1, 0, b"drone")
        .expect("drone write");
    for i in 0..txns {
        let t = db.begin();
        let payload = [(i % 251) as u8; 24];
        db.write(t, i % (PAGES - 2), (i % 8) as usize * 24, &payload)
            .expect("write");
        if i % 7 == 3 {
            db.abort(t).expect("abort");
        } else {
            db.commit(t).expect("commit");
        }
    }
    let loser = db.begin();
    db.write(loser, 1, 0, b"loser in flight")
        .expect("loser write");
    db
}

/// Restart the same image at each K and demand byte-identical outcomes:
/// identical data disks, identical log disks (undo compensations and
/// truncation included), and identical logical reports.
fn assert_k_equivalence(db: &WalDb, streams: usize, ckpt_every: u64, ks: &[usize]) {
    let mut baseline: Option<(recovery_machines::wal::CrashImage, String, usize)> = None;
    for &k in ks {
        let rcfg = RestartConfig {
            workers: k,
            truncate_behind_bound: true,
            ..RestartConfig::default()
        };
        let (db_k, report) =
            restart(db.crash_image(), cfg(streams, ckpt_every), &rcfg).expect("restart");
        let image = db_k.crash_image();
        let summary = report.logical_summary();
        match &baseline {
            None => baseline = Some((image, summary, k)),
            Some((base, base_summary, base_k)) => {
                assert_eq!(
                    &summary, base_summary,
                    "logical report differs between K={base_k} and K={k}"
                );
                assert_disks_identical(&base.data, &image.data, &format!("data K={base_k}/K={k}"));
                assert_eq!(base.logs.len(), image.logs.len(), "stream count");
                for (i, (la, lb)) in base.logs.iter().zip(&image.logs).enumerate() {
                    assert_disks_identical(la, lb, &format!("log {i} K={base_k}/K={k}"));
                }
            }
        }
    }
}

/// Fast, deterministic K=1 vs K=4 check — the CI smoke target
/// (`scripts/verify.sh` runs exactly this test by name).
#[test]
fn smoke_k1_vs_k4() {
    let db = build_crashed(3, 11, 150);
    assert_k_equivalence(&db, 3, 11, &[1, 4]);
}

/// The restart engine's data-disk state must match serial full-log replay
/// exactly, checkpoints and all: bounding the scan may skip redo work only
/// when the skipped updates are already home.
#[test]
fn restart_matches_serial_recovery() {
    for (streams, ckpt_every, txns) in [(1, 0, 60), (2, 9, 120), (4, 17, 200)] {
        let db = build_crashed(streams, ckpt_every, txns);
        let (serial_db, _) =
            WalDb::recover(db.crash_image(), cfg(streams, ckpt_every)).expect("serial recover");
        let rcfg = RestartConfig::default();
        let (restart_db, report) =
            restart(db.crash_image(), cfg(streams, ckpt_every), &rcfg).expect("restart");
        let what = format!("streams={streams} ckpt_every={ckpt_every}");
        assert_disks_identical(
            &serial_db.crash_image().data,
            &restart_db.crash_image().data,
            &what,
        );
        if ckpt_every > 0 {
            assert!(
                report.records_skipped > 0,
                "{what}: checkpointed history produced no bound"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For arbitrary stream counts, checkpoint intervals, and workload
    /// sizes, every K ∈ {1, 2, 4, 8} recovers byte-identical state.
    #[test]
    fn workers_are_equivalent_bytewise(
        streams in 1usize..=4,
        ckpt_every in 0u64..24,
        txns in 20u64..160,
    ) {
        let db = build_crashed(streams, ckpt_every, txns);
        assert_k_equivalence(&db, streams, ckpt_every, &[1, 2, 4, 8]);
    }
}

// ---------------------------------------------------------------------------
// Adaptive logging × dependency-aware replay equivalence. Two databases run
// the *same* random workload — one under adaptive command/logical logging
// (recovered by the transaction-DAG scheduler), one under pure physical
// fragment logging (recovered by serial full-log replay). Re-executing
// command records in DAG order must land exactly the payload bytes that
// physical after-image installation lands; and the DAG schedule itself must
// be byte-identical (disks, logs, logical report) for every K ∈ {1,2,4,8}.
//
// The comparison is page *payloads*, not raw disks: deferred capture pins
// pages and allocates commit LSNs differently from fragment logging, so the
// two runs' frame headers legitimately differ — the recovered contents may
// not.
// ---------------------------------------------------------------------------

/// Counter pages (0..16) take `add_u64` bumps; pages 16..PAGES-1 take plain
/// writes; PAGES-1 hosts the in-flight loser.
const EQ_COUNTERS: u64 = 16;

fn mixed_cfg(ckpt_every: u64, logging: LoggingPolicy) -> WalConfig {
    WalConfig {
        logging,
        ..cfg(3, ckpt_every)
    }
}

/// Deterministic mixed workload: the same (seed, txns) pair drives the
/// identical op sequence whatever the logging policy, so two builds are
/// comparable transaction for transaction. Wide (8-page) transactions blow
/// the deferred pin budget and spill to fragments even under command
/// logging; every ninth transaction aborts; a loser is left in flight.
fn build_mixed_crashed(seed: u64, txns: u64, ckpt_every: u64, logging: LoggingPolicy) -> WalDb {
    let mut db = WalDb::new(mixed_cfg(ckpt_every, logging));
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..txns {
        let t = db.begin();
        let wide = rng.gen_bool(0.3);
        let ops = if wide { 8 } else { rng.gen_range(1..4) };
        let mut touched: Vec<u64> = Vec::new();
        for _ in 0..ops {
            let page = if wide || rng.gen_bool(0.5) {
                EQ_COUNTERS + rng.gen_range(0..PAGES - EQ_COUNTERS - 1)
            } else {
                rng.gen_range(0..EQ_COUNTERS)
            };
            if touched.contains(&page) {
                continue;
            }
            touched.push(page);
            if page < EQ_COUNTERS {
                db.add_u64(t, page, 0, rng.gen_range(1..1_000))
                    .expect("add_u64");
            } else {
                let payload = [(i % 251) as u8; 24];
                db.write(t, page, rng.gen_range(0..8usize) * 24, &payload)
                    .expect("write");
            }
        }
        if i % 9 == 4 {
            db.abort(t).expect("abort");
        } else {
            db.commit(t).expect("commit");
        }
    }
    let loser = db.begin();
    db.write(loser, PAGES - 1, 0, b"loser in flight")
        .expect("loser write");
    db
}

/// Every page's full recovered payload.
fn payloads(db: &mut WalDb) -> Vec<Vec<u8>> {
    let t = db.begin();
    let out = (0..PAGES)
        .map(|p| {
            db.read(t, p, 0, recovery_machines::storage::PAYLOAD_SIZE)
                .expect("read recovered page")
        })
        .collect();
    db.abort(t).expect("read-only abort");
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn adaptive_dag_replay_matches_serial_physical_replay(
        seed in any::<u64>(),
        ckpt_every in 0u64..16,
        txns in 30u64..140,
    ) {
        let adaptive = LoggingPolicy::Adaptive { threshold_pct: 100 };
        let db = build_mixed_crashed(seed, txns, ckpt_every, adaptive);

        // the DAG schedule is byte-identical for every worker count
        let mut k1: Option<WalDb> = None;
        let mut baseline: Option<(recovery_machines::wal::CrashImage, String)> = None;
        for k in [1usize, 2, 4, 8] {
            let rcfg = RestartConfig {
                workers: k,
                truncate_behind_bound: true,
                scheduler: RedoScheduler::TxnDag,
            };
            let (db_k, report) =
                restart(db.crash_image(), mixed_cfg(ckpt_every, adaptive), &rcfg)
                    .expect("TxnDag restart");
            let image = db_k.crash_image();
            let summary = report.logical_summary();
            prop_assert!(report.replay.is_some(), "TxnDag restart reported no replay summary");
            match &baseline {
                None => {
                    baseline = Some((image, summary));
                    k1 = Some(db_k);
                }
                Some((base, base_summary)) => {
                    prop_assert_eq!(&summary, base_summary, "logical report differs at K={}", k);
                    assert_disks_identical(&base.data, &image.data, &format!("data K=1/K={k}"));
                    for (i, (la, lb)) in base.logs.iter().zip(&image.logs).enumerate() {
                        assert_disks_identical(la, lb, &format!("log {i} K=1/K={k}"));
                    }
                }
            }
        }

        // the same workload under pure physical logging, serially recovered:
        // command re-execution and after-image installation agree on every
        // payload byte of every page
        let physical = build_mixed_crashed(seed, txns, ckpt_every, LoggingPolicy::Fragments);
        let (mut serial, _) = WalDb::recover(
            physical.crash_image(),
            mixed_cfg(ckpt_every, LoggingPolicy::Fragments),
        )
        .expect("serial physical recover");
        let mut dag_db = k1.expect("K=1 restart ran");
        let (dag, phys) = (payloads(&mut dag_db), payloads(&mut serial));
        for (page, (d, p)) in dag.iter().zip(&phys).enumerate() {
            prop_assert!(
                d == p,
                "page {} payload diverged between adaptive DAG replay and serial physical replay",
                page
            );
        }
    }
}
