//! Restart-engine equivalence: the checkpoint-bounded parallel restart
//! must produce **byte-identical** recovered state for every redo worker
//! count K — data disk *and* log disks — and the same data-disk state as
//! serial [`WalDb::recover`] full-log replay.
//!
//! The workloads here exercise the interesting structure: fuzzy
//! auto-checkpoints held open by a long-lived drone transaction (so the
//! checkpoint bound is real but never quiescent-truncates the log),
//! aborted transactions, and in-flight losers cut by the crash.

use proptest::prelude::*;
use recovery_machines::restart::{restart, RestartConfig};
use recovery_machines::storage::MemDisk;
use recovery_machines::wal::{SelectionPolicy, WalConfig, WalDb};

const PAGES: u64 = 64;

fn assert_disks_identical(a: &MemDisk, b: &MemDisk, what: &str) {
    assert_eq!(a.capacity(), b.capacity(), "{what}: capacity");
    for addr in 0..a.capacity() {
        assert_eq!(
            a.is_allocated(addr),
            b.is_allocated(addr),
            "{what}: allocation of frame {addr}"
        );
        if a.is_allocated(addr) {
            let fa = a.read_frame(addr).expect("frame a");
            let fb = b.read_frame(addr).expect("frame b");
            assert!(fa == fb, "{what}: frame {addr} differs");
        }
    }
}

fn cfg(streams: usize, ckpt_every: u64) -> WalConfig {
    WalConfig {
        data_pages: PAGES,
        pool_frames: 8,
        log_streams: streams,
        policy: SelectionPolicy::Cyclic,
        ckpt_every_commits: ckpt_every,
        ..WalConfig::default()
    }
}

/// Build a database mid-flight: a drone transaction pins every fuzzy
/// checkpoint open, `txns` transactions commit or abort, and a loser is
/// left in flight when the crash image is taken.
fn build_crashed(streams: usize, ckpt_every: u64, txns: u64) -> WalDb {
    let mut db = WalDb::new(cfg(streams, ckpt_every));
    let drone = db.begin();
    db.write(drone, PAGES - 1, 0, b"drone")
        .expect("drone write");
    for i in 0..txns {
        let t = db.begin();
        let payload = [(i % 251) as u8; 24];
        db.write(t, i % (PAGES - 2), (i % 8) as usize * 24, &payload)
            .expect("write");
        if i % 7 == 3 {
            db.abort(t).expect("abort");
        } else {
            db.commit(t).expect("commit");
        }
    }
    let loser = db.begin();
    db.write(loser, 1, 0, b"loser in flight")
        .expect("loser write");
    db
}

/// Restart the same image at each K and demand byte-identical outcomes:
/// identical data disks, identical log disks (undo compensations and
/// truncation included), and identical logical reports.
fn assert_k_equivalence(db: &WalDb, streams: usize, ckpt_every: u64, ks: &[usize]) {
    let mut baseline: Option<(recovery_machines::wal::CrashImage, String, usize)> = None;
    for &k in ks {
        let rcfg = RestartConfig {
            workers: k,
            truncate_behind_bound: true,
        };
        let (db_k, report) =
            restart(db.crash_image(), cfg(streams, ckpt_every), &rcfg).expect("restart");
        let image = db_k.crash_image();
        let summary = report.logical_summary();
        match &baseline {
            None => baseline = Some((image, summary, k)),
            Some((base, base_summary, base_k)) => {
                assert_eq!(
                    &summary, base_summary,
                    "logical report differs between K={base_k} and K={k}"
                );
                assert_disks_identical(&base.data, &image.data, &format!("data K={base_k}/K={k}"));
                assert_eq!(base.logs.len(), image.logs.len(), "stream count");
                for (i, (la, lb)) in base.logs.iter().zip(&image.logs).enumerate() {
                    assert_disks_identical(la, lb, &format!("log {i} K={base_k}/K={k}"));
                }
            }
        }
    }
}

/// Fast, deterministic K=1 vs K=4 check — the CI smoke target
/// (`scripts/verify.sh` runs exactly this test by name).
#[test]
fn smoke_k1_vs_k4() {
    let db = build_crashed(3, 11, 150);
    assert_k_equivalence(&db, 3, 11, &[1, 4]);
}

/// The restart engine's data-disk state must match serial full-log replay
/// exactly, checkpoints and all: bounding the scan may skip redo work only
/// when the skipped updates are already home.
#[test]
fn restart_matches_serial_recovery() {
    for (streams, ckpt_every, txns) in [(1, 0, 60), (2, 9, 120), (4, 17, 200)] {
        let db = build_crashed(streams, ckpt_every, txns);
        let (serial_db, _) =
            WalDb::recover(db.crash_image(), cfg(streams, ckpt_every)).expect("serial recover");
        let rcfg = RestartConfig::default();
        let (restart_db, report) =
            restart(db.crash_image(), cfg(streams, ckpt_every), &rcfg).expect("restart");
        let what = format!("streams={streams} ckpt_every={ckpt_every}");
        assert_disks_identical(
            &serial_db.crash_image().data,
            &restart_db.crash_image().data,
            &what,
        );
        if ckpt_every > 0 {
            assert!(
                report.records_skipped > 0,
                "{what}: checkpointed history produced no bound"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For arbitrary stream counts, checkpoint intervals, and workload
    /// sizes, every K ∈ {1, 2, 4, 8} recovers byte-identical state.
    #[test]
    fn workers_are_equivalent_bytewise(
        streams in 1usize..=4,
        ckpt_every in 0u64..24,
        txns in 20u64..160,
    ) {
        let db = build_crashed(streams, ckpt_every, txns);
        assert_k_equivalence(&db, streams, ckpt_every, &[1, 2, 4, 8]);
    }
}
