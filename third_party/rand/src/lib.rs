//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! `StdRng` is xoshiro256** seeded through SplitMix64 — deterministic and
//! statistically solid for simulation workloads, but **not** the same
//! stream as upstream `rand`'s StdRng (ChaCha12). Everything in this
//! workspace seeds explicitly and asserts only self-consistency, so the
//! stream identity does not matter; determinism does.

pub mod rngs {
    /// The standard seeded generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn next_u64_impl(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// SplitMix64 step, used to expand a 64-bit seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        rngs::StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

/// Types `Rng::gen` can produce.
pub trait Standard: Sized {
    fn sample(next: &mut dyn FnMut() -> u64) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample(next: &mut dyn FnMut() -> u64) -> Self {
                next() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample(next: &mut dyn FnMut() -> u64) -> Self {
        next() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample(next: &mut dyn FnMut() -> u64) -> Self {
        // 53 uniform mantissa bits in [0, 1)
        (next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample(next: &mut dyn FnMut() -> u64) -> Self {
        (next() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges `Rng::gen_range` accepts; `T` is the produced type, left as an
/// inference variable so integer literals adapt to the use site (as in
/// real rand 0.8).
pub trait SampleRange<T> {
    fn sample_from(self, next: &mut dyn FnMut() -> u64) -> T;
}

/// Unbiased uniform draw from `[0, bound)` via Lemire-style rejection.
fn uniform_below(bound: u64, next: &mut dyn FnMut() -> u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return next() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound) - 1;
    loop {
        let v = next();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from(self, next: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(span, next) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from(self, next: &mut dyn FnMut() -> u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return next() as $t;
                }
                lo + uniform_below(span + 1, next) as $t
            }
        }
    )*};
}
sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! sample_range_int {
    ($($t:ty as $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from(self, next: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_below(span, next) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from(self, next: &mut dyn FnMut() -> u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return next() as $t;
                }
                lo.wrapping_add(uniform_below(span + 1, next) as $t)
            }
        }
    )*};
}
sample_range_int!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from(self, next: &mut dyn FnMut() -> u64) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(next) * (self.end - self.start)
    }
}

/// The generator operations the workspace uses.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(&mut || self.next_u64())
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(&mut || self.next_u64())
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        self.gen::<f64>() < p
    }

    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

impl Rng for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next_u64_impl()
    }
}

impl<R: Rng> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

pub mod seq {
    use super::Rng;

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        type Item;
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
        fn choose<'a, R: Rng>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: Rng>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn determinism_and_ranges() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u64 = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: u64 = r.gen_range(3..=3);
            assert_eq!(w, 3);
            let f = r.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
            let i: i64 = r.gen_range(-5..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fill_covers_tail() {
        let mut r = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        r.fill(&mut buf[..]);
        // overwhelming probability: some nonzero byte in the odd tail
        assert!(buf.iter().any(|&b| b != 0));
    }
}
