//! Offline stand-in for the `criterion` crate.
//!
//! Keeps bench targets compiling and runnable without the crates.io
//! registry. There is no statistical machinery: each benchmark body runs a
//! single timed iteration and prints `name ... elapsed`. That is enough for
//! smoke-running `cargo bench` and for `cargo test`, which executes
//! `harness = false` bench binaries.

use std::fmt::Display;
use std::time::Instant;

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Entry point handed to benchmark functions.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _c: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), &mut f);
        self
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        let mut b = Bencher::default();
        let start = Instant::now();
        f(&mut b, input);
        report(&label, start, b.iters);
        self
    }

    pub fn finish(self) {}
}

/// Identifies one parameterized benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn from_parameter(p: impl Display) -> Self {
        BenchmarkId(p.to_string())
    }

    pub fn new(name: impl Display, p: impl Display) -> Self {
        BenchmarkId(format!("{name}/{p}"))
    }
}

/// Runs the measured closure.
#[derive(Default)]
pub struct Bencher {
    iters: u64,
}

impl Bencher {
    /// One timed iteration (the stand-in does not sample repeatedly).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        self.iters += 1;
        black_box(f());
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, f: &mut F) {
    let mut b = Bencher::default();
    let start = Instant::now();
    f(&mut b);
    report(label, start, b.iters);
}

fn report(label: &str, start: Instant, iters: u64) {
    let elapsed = start.elapsed();
    println!("bench {label:<60} {elapsed:>12?} ({iters} iter)");
}

/// Collects benchmark functions under one group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let _ = $cfg;
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
