//! Offline stand-in for the `serde` crate.
//!
//! Instead of serde's visitor-based zero-copy machinery, this stand-in
//! serializes through one concrete data model: [`__private::Value`], a JSON
//! value tree. `#[derive(Serialize, Deserialize)]` (from the companion
//! `serde_derive` stand-in) generates conversions to and from that tree;
//! the `serde_json` stand-in renders and parses it. The surface the
//! workspace relies on — deriving on plain structs/enums and
//! `serde_json::{to_string_pretty, from_str, Value}` — behaves like the
//! real thing, emitting the same externally-tagged JSON shapes.

pub use serde_derive::{Deserialize, Serialize};

pub mod __private;

/// Types that can serialize themselves into the [`__private::Value`] model.
pub trait Serialize {
    fn __to_value(&self) -> __private::Value;
}

/// Types reconstructible from the [`__private::Value`] model.
pub trait Deserialize: Sized {
    fn __from_value(v: &__private::Value) -> Result<Self, __private::Error>;
}

// ---- impls for primitives and std containers ------------------------------

use __private::{Error, Value};

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn __to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn __from_value(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::U64(n) => Ok(n as $t),
                    Value::I64(n) if n >= 0 => Ok(n as $t),
                    Value::F64(n) if n >= 0.0 && n.fract() == 0.0 => Ok(n as $t),
                    _ => Err(Error::msg(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}
ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn __to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn __from_value(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::I64(n) => Ok(n as $t),
                    Value::U64(n) => Ok(n as $t),
                    Value::F64(n) if n.fract() == 0.0 => Ok(n as $t),
                    _ => Err(Error::msg(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}
ser_de_int!(i8, i16, i32, i64, isize);

macro_rules! ser_de_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn __to_value(&self) -> Value { Value::F64(*self as f64) }
        }
        impl Deserialize for $t {
            fn __from_value(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::F64(n) => Ok(n as $t),
                    Value::I64(n) => Ok(n as $t),
                    Value::U64(n) => Ok(n as $t),
                    _ => Err(Error::msg(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}
ser_de_float!(f32, f64);

impl Serialize for bool {
    fn __to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn __from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::msg("expected bool")),
        }
    }
}

impl Serialize for str {
    fn __to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Serialize for String {
    fn __to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn __from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::msg("expected string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn __to_value(&self) -> Value {
        (**self).__to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn __to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::__to_value).collect())
    }
}
impl<T: Serialize> Serialize for Vec<T> {
    fn __to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::__to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn __from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::__from_value).collect(),
            _ => Err(Error::msg("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn __to_value(&self) -> Value {
        match self {
            Some(x) => x.__to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn __from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::__from_value(other).map(Some),
        }
    }
}

macro_rules! ser_de_tuple {
    ($(($($n:tt $t:ident),+)),*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn __to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.__to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn __from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) => Ok(($(
                        $t::__from_value(
                            items.get($n).ok_or_else(|| Error::msg("tuple too short"))?,
                        )?,
                    )+)),
                    _ => Err(Error::msg("expected tuple array")),
                }
            }
        }
    )*};
}
ser_de_tuple!((0 A), (0 A, 1 B), (0 A, 1 B, 2 C), (0 A, 1 B, 2 C, 3 D));

impl<K: ToString, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn __to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.__to_value()))
                .collect(),
        )
    }
}

impl Serialize for Value {
    fn __to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn __from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
