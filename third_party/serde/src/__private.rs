//! The concrete data model behind the serde stand-in: a JSON value tree,
//! plus the renderer/parser `serde_json` re-exports.

use std::fmt;

/// A JSON value. Object keys keep insertion order (like serde_json's
/// `preserve_order` feature) so serialized structs read in field order.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(n) => Some(*n),
            Value::I64(n) => Some(*n as f64),
            Value::U64(n) => Some(*n as f64),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            Value::I64(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(n) => Some(*n),
            Value::U64(n) => i64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// Member lookup; `Null` for misses (mirrors serde_json's `get`).
    pub fn get_field(&self, key: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(m) => m
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::msg(format!("missing field `{key}`"))),
            _ => Err(Error::msg(format!("expected object with field `{key}`"))),
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        match self {
            Value::Object(m) => m
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Value::Str(s) if s == other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        matches!(self, Value::Str(s) if s == other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde: {}", self.0)
    }
}

impl std::error::Error for Error {}

// ---- rendering ------------------------------------------------------------

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn number_to_string(v: &Value) -> String {
    match v {
        Value::I64(n) => n.to_string(),
        Value::U64(n) => n.to_string(),
        Value::F64(n) => {
            if n.is_finite() {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    format!("{n:.1}")
                } else {
                    format!("{n}")
                }
            } else {
                // JSON has no Inf/NaN; serde_json errors here, we degrade
                "null".to_string()
            }
        }
        _ => unreachable!(),
    }
}

fn render(v: &Value, indent: usize, pretty: bool, out: &mut String) {
    let (nl, pad, pad_in) = if pretty {
        ("\n", "  ".repeat(indent), "  ".repeat(indent + 1))
    } else {
        ("", String::new(), String::new())
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(_) | Value::U64(_) | Value::F64(_) => out.push_str(&number_to_string(v)),
        Value::Str(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                render(item, indent + 1, pretty, out);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(members) => {
            if members.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                escape_into(k, out);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                render(item, indent + 1, pretty, out);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Render a value as compact JSON.
pub fn render_compact(v: &Value) -> String {
    let mut out = String::new();
    render(v, 0, false, &mut out);
    out
}

/// Render a value as 2-space-indented JSON.
pub fn render_pretty(v: &Value) -> String {
    let mut out = String::new();
    render(v, 0, true, &mut out);
    out
}

// ---- parsing --------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &str) -> Error {
        Error::msg(format!("JSON parse error at byte {}: {what}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'n' => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("bad keyword"))
                }
            }
            b't' => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("bad keyword"))
                }
            }
            b'f' => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("bad keyword"))
                }
            }
            b'"' => self.parse_string().map(Value::Str),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut members = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    members.push((key, self.parse_value()?));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(members));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            b'-' | b'0'..=b'9' => self.parse_number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek().ok_or_else(|| self.err("unterminated string"))? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u"))?;
                            self.pos += 4;
                            // surrogate pairs unsupported (the renderer never emits them)
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => unreachable!(),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if !float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("bad number"))
    }
}

/// Parse a JSON document into a [`Value`].
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let v = Value::Object(vec![
            ("id".into(), Value::Str("table01".into())),
            (
                "rows".into(),
                Value::Array(vec![Value::F64(1.5), Value::U64(7), Value::Null]),
            ),
            ("ok".into(), Value::Bool(true)),
            ("neg".into(), Value::I64(-3)),
        ]);
        let pretty = render_pretty(&v);
        let parsed = parse(&pretty).unwrap();
        assert_eq!(parsed["id"], "table01");
        assert_eq!(parsed["rows"].as_array().unwrap().len(), 3);
        assert_eq!(parsed["rows"][0].as_f64(), Some(1.5));
        assert_eq!(parsed["neg"].as_i64(), Some(-3));
        let compact = render_compact(&v);
        assert_eq!(parse(&compact).unwrap(), parsed);
    }

    #[test]
    fn string_escapes() {
        let v = Value::Str("a\"b\\c\nd\u{1}".into());
        let text = render_compact(&v);
        assert_eq!(parse(&text).unwrap(), v);
    }
}
