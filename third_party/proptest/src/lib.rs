//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace uses: the [`proptest!`] test macro,
//! [`prop_oneof!`] with and without weights, `any::<T>()`, integer-range and
//! tuple strategies, `Just`, `prop_map`, `collection::{vec, btree_set}`, and
//! `option::of`. Cases are generated from a deterministic per-test seed
//! (FNV of the test path, mixed with the case index), so every run explores
//! the same inputs and failures reproduce exactly. There is **no
//! shrinking**: a failing case reports the assertion with its values, not a
//! minimized counterexample.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for `Vec`s whose length is drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.usize_in(self.size.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet`s; duplicates collapse, so the set may be
    /// smaller than the drawn size (matching proptest's behavior).
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.usize_in(self.size.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<T>`: `None` about a quarter of the time.
    pub struct OptionStrategy<S>(S);

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next().is_multiple_of(4) {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Weighted or unweighted choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $weight:expr => $strat:expr ),+ $(,)? ) => {
        $crate::strategy::Union::new(vec![
            $( (($weight) as u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
    ( $( $strat:expr ),+ $(,)? ) => {
        $crate::strategy::Union::new(vec![
            $( (1u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
}

/// Property assertion (no shrinking: behaves like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property equality assertion (no shrinking: behaves like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Assumption: skips the rest of the case when the condition fails.
/// The stand-in expresses this as an early `return` from the case closure.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// The property-test macro: each `#[test]` inside runs `cases` times with
/// inputs drawn from the named strategies.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl!{ $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:pat_param in $strat:expr ),* $(,)? ) $body:block
    )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let case_fn = |__case: u32| {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $( let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng); )*
                    $body
                };
                for case in 0..config.cases {
                    case_fn(case);
                }
            }
        )*
    };
}
