//! Value-generation strategies.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
pub trait Strategy {
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe strategy view backing [`BoxedStrategy`].
trait DynStrategy {
    type Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Weighted union of strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof: zero total weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = (rng.next() % u64::from(self.total)) as u32;
        for (w, s) in &self.arms {
            if pick < *w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("prop_oneof: weight bookkeeping")
    }
}

/// Always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a canonical full-range strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
    ArbitraryStrategy(std::marker::PhantomData)
}

pub struct ArbitraryStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for ArbitraryStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range empty");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add((rng.next() % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "strategy range empty");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                if span == u64::MAX {
                    return rng.next() as $t;
                }
                lo.wrapping_add((rng.next() % (span + 1)) as $t)
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize);

macro_rules! range_strategy_signed {
    ($($t:ty as $u:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range empty");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add((rng.next() % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "strategy range empty");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next() as $t;
                }
                lo.wrapping_add((rng.next() % (span + 1)) as $t)
            }
        }
    )*};
}
range_strategy_signed!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

macro_rules! tuple_strategy {
    ($(($($t:ident . $n:tt),+)),*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($( self.$n.generate(rng), )+)
            }
        }
    )*};
}
tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4)
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("strategy::tests", 0);
        for _ in 0..500 {
            let v = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let w = (0usize..=3).generate(&mut rng);
            assert!(w <= 3);
            let x = (-4i64..5).generate(&mut rng);
            assert!((-4..5).contains(&x));
        }
    }

    #[test]
    fn union_respects_weights() {
        let u = crate::prop_oneof![
            1 => Just(0u32),
            9 => Just(1u32),
        ];
        let mut rng = TestRng::for_case("strategy::weights", 1);
        let ones: usize = (0..1000).filter(|_| u.generate(&mut rng) == 1).count();
        assert!(ones > 700, "weighted arm drawn {ones}/1000");
    }

    #[test]
    fn vec_and_map_compose() {
        let s = crate::collection::vec((0u64..5, any::<u8>()), 1..4).prop_map(|v| v.len());
        let mut rng = TestRng::for_case("strategy::compose", 2);
        for _ in 0..100 {
            let n = s.generate(&mut rng);
            assert!((1..4).contains(&n));
        }
    }
}
