//! Deterministic case generation.

/// How many cases each property runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; the stand-in trims to keep the
        // whole suite fast on small CI boxes while still exercising a
        // meaningful sample. Tests that need more ask via `with_cases`.
        ProptestConfig { cases: 64 }
    }
}

/// Per-case RNG: SplitMix64 seeded from the test path and case index, so
/// every run of every build explores identical inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_case(test_path: &str, case: u32) -> Self {
        // FNV-1a over the path, then mix in the case index
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in test_path.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next 64 uniform bits (SplitMix64).
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from a half-open usize range.
    pub fn usize_in(&mut self, r: std::ops::Range<usize>) -> usize {
        assert!(r.start < r.end, "empty size range");
        r.start + (self.next() % (r.end - r.start) as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_case() {
        let mut a = TestRng::for_case("x::y", 3);
        let mut b = TestRng::for_case("x::y", 3);
        for _ in 0..32 {
            assert_eq!(a.next(), b.next());
        }
        let mut c = TestRng::for_case("x::y", 4);
        assert_ne!(a.next(), c.next());
    }
}
