//! Offline stand-in for `serde_json`, backed by the stand-in serde's
//! [`Value`] data model: real JSON text out, real JSON text in.

pub use serde::__private::{Error, Value};

/// Serialize to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(serde::__private::render_compact(&value.__to_value()))
}

/// Serialize to 2-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(serde::__private::render_pretty(&value.__to_value()))
}

/// Serialize directly to a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.__to_value())
}

/// Parse JSON text into any deserializable type.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let v = serde::__private::parse(text)?;
    T::__from_value(&v)
}

/// Reconstruct a type from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(v: Value) -> Result<T, Error> {
    T::__from_value(&v)
}

#[cfg(test)]
mod tests {
    #[test]
    fn value_round_trip() {
        let v: super::Value = super::from_str("{\"a\": [1, 2.5, \"x\"], \"b\": null}").unwrap();
        assert_eq!(v["a"][2], "x");
        assert_eq!(v["a"].as_array().unwrap().len(), 3);
        let text = super::to_string_pretty(&v).unwrap();
        let w: super::Value = super::from_str(&text).unwrap();
        assert_eq!(v, w);
    }
}
