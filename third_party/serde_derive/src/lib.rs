//! Offline stand-in for `serde_derive`.
//!
//! Parses the deriving item's token stream by hand (no `syn`/`quote`) and
//! emits `impl serde::Serialize` / `impl serde::Deserialize` against the
//! stand-in serde's Value data model. Supported shapes — everything this
//! workspace derives on:
//!
//! * structs with named fields → JSON object in field order
//! * tuple structs with one field (newtypes) → the inner value
//! * tuple structs with several fields → JSON array
//! * enums of unit variants → the variant name as a string
//! * enums mixing unit and one-field tuple variants → externally tagged
//!   (`{"Variant": value}`), like real serde
//!
//! Generics and `#[serde(...)]` attributes are not supported and produce a
//! compile error naming this file.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Ser)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::De)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Ser,
    De,
}

enum Shape {
    /// Named fields, in declaration order.
    NamedStruct(Vec<String>),
    /// Tuple struct with this many fields.
    TupleStruct(usize),
    /// Variants: (name, has one tuple field).
    Enum(Vec<(String, bool)>),
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let (name, shape) = match parse_item(input) {
        Ok(x) => x,
        Err(e) => {
            return format!("compile_error!({e:?});").parse().unwrap();
        }
    };
    let code = match mode {
        Mode::Ser => gen_serialize(&name, &shape),
        Mode::De => gen_deserialize(&name, &shape),
    };
    code.parse().unwrap()
}

/// Skip leading attributes (`#[...]`) and doc comments in a token slice,
/// returning the index of the first non-attribute token.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[i] {
            if p.as_char() == '#' {
                if let TokenTree::Group(g) = &tokens[i + 1] {
                    if g.delimiter() == Delimiter::Bracket {
                        i += 2;
                        continue;
                    }
                }
            }
        }
        break;
    }
    i
}

/// Skip a visibility modifier (`pub`, `pub(crate)`, …).
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

fn parse_item(input: TokenStream) -> Result<(String, Shape), String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde stand-in derive: expected `struct` or `enum`".to_string()),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde stand-in derive: expected item name".to_string()),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "serde stand-in derive: generic type `{name}` unsupported"
            ));
        }
    }

    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Shape::NamedStruct(parse_named_fields(g.stream())?)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok((name, Shape::TupleStruct(count_tuple_fields(g.stream()))))
            }
            _ => Err(format!(
                "serde stand-in derive: unsupported struct body for `{name}`"
            )),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Shape::Enum(parse_variants(g.stream())?)))
            }
            _ => Err(format!(
                "serde stand-in derive: expected enum body for `{name}`"
            )),
        },
        other => Err(format!(
            "serde stand-in derive: cannot derive for `{other}`"
        )),
    }
}

/// Field names of a named-field struct body.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_vis(&tokens, skip_attrs(&tokens, i));
        let field = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            _ => return Err("serde stand-in derive: expected field name".to_string()),
        };
        fields.push(field);
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err("serde stand-in derive: expected `:` after field".to_string()),
        }
        // Skip the type: advance to the comma at angle-bracket depth 0.
        // Parens/brackets/braces arrive as single Group tokens, so only
        // `<`/`>` need depth tracking.
        let mut angle = 0i32;
        while let Some(t) = tokens.get(i) {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    Ok(fields)
}

/// Number of fields in a tuple-struct body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut fields = 1;
    let mut angle = 0i32;
    let mut trailing_comma = false;
    for (idx, t) in tokens.iter().enumerate() {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    if idx == tokens.len() - 1 {
                        trailing_comma = true;
                    } else {
                        fields += 1;
                    }
                }
                _ => {}
            }
        }
    }
    let _ = trailing_comma;
    fields
}

/// Enum variants: name plus whether the variant carries one tuple field.
fn parse_variants(body: TokenStream) -> Result<Vec<(String, bool)>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            _ => return Err("serde stand-in derive: expected variant name".to_string()),
        };
        i += 1;
        let mut payload = false;
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                let mut angle = 0i32;
                for (idx, t) in inner.iter().enumerate() {
                    if let TokenTree::Punct(p) = t {
                        match p.as_char() {
                            '<' => angle += 1,
                            '>' => angle -= 1,
                            ',' if angle == 0 && idx != inner.len() - 1 => {
                                return Err(format!(
                                    "serde stand-in derive: multi-field variant `{name}` unsupported"
                                ));
                            }
                            _ => {}
                        }
                    }
                }
                payload = true;
                i += 1;
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                return Err(format!(
                    "serde stand-in derive: struct variant `{name}` unsupported"
                ));
            }
            _ => {}
        }
        // skip an optional discriminant and the separating comma
        while let Some(t) = tokens.get(i) {
            if let TokenTree::Punct(p) = t {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push((name, payload));
    }
    Ok(variants)
}

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct(fields) => {
            let mut pushes = String::new();
            for f in fields {
                pushes.push_str(&format!(
                    "fields.push(({f:?}.to_string(), ::serde::Serialize::__to_value(&self.{f})));\n"
                ));
            }
            format!(
                "let mut fields: Vec<(String, ::serde::__private::Value)> = Vec::new();\n\
                 {pushes}\
                 ::serde::__private::Value::Object(fields)"
            )
        }
        Shape::TupleStruct(1) => "::serde::Serialize::__to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::__to_value(&self.{i})"))
                .collect();
            format!(
                "::serde::__private::Value::Array(vec![{}])",
                items.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for (v, payload) in variants {
                if *payload {
                    arms.push_str(&format!(
                        "{name}::{v}(inner) => ::serde::__private::Value::Object(vec![({v:?}.to_string(), ::serde::Serialize::__to_value(inner))]),\n"
                    ));
                } else {
                    arms.push_str(&format!(
                        "{name}::{v} => ::serde::__private::Value::Str({v:?}.to_string()),\n"
                    ));
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn __to_value(&self) -> ::serde::__private::Value {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct(fields) => {
            let mut inits = String::new();
            for f in fields {
                inits.push_str(&format!(
                    "{f}: ::serde::Deserialize::__from_value(v.get_field({f:?})?)?,\n"
                ));
            }
            format!("Ok({name} {{\n{inits}}})")
        }
        Shape::TupleStruct(1) => format!("Ok({name}(::serde::Deserialize::__from_value(v)?))"),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::__from_value(\
                         arr.get({i}).ok_or_else(|| ::serde::__private::Error::msg(\"tuple too short\"))?)?"
                    )
                })
                .collect();
            format!(
                "match v {{\n\
                     ::serde::__private::Value::Array(arr) => Ok({name}({items})),\n\
                     _ => Err(::serde::__private::Error::msg(\"expected array\")),\n\
                 }}",
                items = items.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for (v, payload) in variants {
                if *payload {
                    arms.push_str(&format!(
                        "::serde::__private::Value::Object(m) if m.len() == 1 && m[0].0 == {v:?} => \
                         Ok({name}::{v}(::serde::Deserialize::__from_value(&m[0].1)?)),\n"
                    ));
                } else {
                    arms.push_str(&format!(
                        "::serde::__private::Value::Str(s) if s == {v:?} => Ok({name}::{v}),\n"
                    ));
                }
            }
            format!(
                "match v {{\n{arms}\
                 _ => Err(::serde::__private::Error::msg(concat!(\"unknown variant of \", {name:?}))),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn __from_value(v: &::serde::__private::Value) -> Result<Self, ::serde::__private::Error> {{\n{body}\n}}\n\
         }}"
    )
}
