//! Offline stand-in for the `crossbeam` crate.
//!
//! Implements `crossbeam::thread::scope` on top of `std::thread::scope`
//! (stable since 1.63). The crossbeam closure receives a `&Scope` so nested
//! spawns are expressible; this stand-in supports nesting only from the
//! outer closure, which is all the workspace uses.

pub mod thread {
    /// Result of a scoped computation: `Err` carries a thread panic payload.
    pub type Result<T> = std::result::Result<T, Box<dyn std::any::Any + Send + 'static>>;

    /// Spawn handle mirroring crossbeam's scope object.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: Option<&'scope std::thread::Scope<'scope, 'env>>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Wait for the thread and return its result (`Err` on panic).
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread bound to this scope. The closure's `&Scope`
        /// argument cannot spawn further threads in this stand-in.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let s = self
                .inner
                .expect("crossbeam stand-in: nested scope spawn unsupported");
            let inner = s.spawn(move || {
                let leaf: Scope<'scope, 'env> = Scope { inner: None };
                f(&leaf)
            });
            ScopedJoinHandle { inner }
        }
    }

    /// Run `f` with a scope; all spawned threads join before return.
    ///
    /// Unlike crossbeam, a panic in an unjoined thread propagates out of
    /// `scope` (std semantics) instead of arriving as `Err`; joined-thread
    /// panics behave identically.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: Some(s) })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_join_and_return() {
        let data = vec![1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }
}
