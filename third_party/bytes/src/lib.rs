//! Offline stand-in for the `bytes` crate.
//!
//! Provides the little-endian cursor subset of `Buf`/`BufMut` the log-record
//! codec uses: appending to a `Vec<u8>` and consuming from a `&[u8]`.

/// Read cursor over a byte source. Consuming methods advance the cursor.
pub trait Buf {
    /// Bytes remaining ahead of the cursor.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skip `cnt` bytes.
    ///
    /// # Panics
    /// If fewer than `cnt` bytes remain.
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    fn get_u16_le(&mut self) -> u16 {
        let v = u16::from_le_bytes(self.chunk()[..2].try_into().unwrap());
        self.advance(2);
        v
    }

    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.chunk()[..4].try_into().unwrap());
        self.advance(4);
        v
    }

    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.chunk()[..8].try_into().unwrap());
        self.advance(8);
        v
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write cursor over a growable byte sink.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut out: Vec<u8> = Vec::new();
        out.put_u8(7);
        out.put_u32_le(0xDEAD_BEEF);
        out.put_u64_le(42);
        out.put_slice(b"xyz");
        let mut b = &out[..];
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(b.get_u64_le(), 42);
        assert_eq!(b.remaining(), 3);
        b.advance(1);
        assert_eq!(b.chunk(), b"yz");
    }
}
