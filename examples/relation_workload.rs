//! The paper's transaction profile as a real relational workload, run
//! against two different recovery architectures with identical code.
//!
//! ```sh
//! cargo run --example relation_workload
//! ```
//!
//! A transaction scans a slice of the relation and updates 20 % of the
//! tuples it read (the paper's write-set model). The workload function is
//! written once against the `PageStore` trait; the recovery architecture
//! is a drop-in choice.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use recovery_machines::core::PageStore;
use recovery_machines::relation::HeapFile;
use recovery_machines::shadow::{ShadowConfig, ShadowPager};
use recovery_machines::wal::{WalConfig, WalDb};

const TUPLES: u64 = 400;

fn load<S: PageStore>(store: &mut S) -> HeapFile {
    let t = store.begin();
    let rel = HeapFile::create(store, t, 0, 48).expect("create");
    for k in 0..TUPLES {
        rel.insert(store, t, k, format!("balance={:04}", 100).as_bytes())
            .expect("insert");
    }
    store.commit(t).expect("load commit");
    rel
}

/// One paper-style transaction: read a contiguous slice, update 20 % of it.
fn transaction<S: PageStore>(store: &mut S, rel: &HeapFile, rng: &mut StdRng) {
    let txn = store.begin();
    let n = rng.gen_range(10..60u64);
    let start = rng.gen_range(0..TUPLES - n);
    let slice = rel
        .scan(store, txn, |k, _| (start..start + n).contains(&k))
        .expect("scan");
    let mut updated = 0;
    for (k, _) in &slice {
        if rng.gen_bool(0.2) {
            rel.update(
                store,
                txn,
                *k,
                format!("balance={:04}", rng.gen_range(0..999)).as_bytes(),
            )
            .expect("update");
            updated += 1;
        }
    }
    if rng.gen_bool(0.9) {
        store.commit(txn).expect("commit");
    } else {
        store.abort(txn).expect("abort");
    }
    let _ = updated;
}

fn drive<S: PageStore>(store: &mut S, label: &str) {
    let mut rng = StdRng::seed_from_u64(1985);
    let rel = load(store);
    for _ in 0..25 {
        transaction(store, &rel, &mut rng);
    }
    let t = store.begin();
    let count = rel.count(store, t).expect("count");
    let sample = rel.get(store, t, 7).expect("get").expect("tuple 7 exists");
    store.abort(t).expect("read-only abort");
    println!(
        "{label:<28} {count} tuples, tuple 7 = {:?}",
        String::from_utf8_lossy(&sample)
    );
    assert_eq!(count as u64, TUPLES, "updates never change cardinality");
}

fn main() {
    println!("the same workload function, two recovery architectures:\n");

    let mut wal = WalDb::new(WalConfig {
        data_pages: 64,
        pool_frames: 16,
        log_streams: 2,
        ..WalConfig::default()
    });
    drive(&mut wal, "parallel logging (WAL)");

    let mut shadow = ShadowPager::new(ShadowConfig {
        logical_pages: 64,
        data_frames: 512,
        ..ShadowConfig::default()
    })
    .expect("shadow pager");
    drive(&mut shadow, "shadow (thru page-table)");

    // and the WAL run survives a crash, relation intact
    let cfg = WalConfig {
        data_pages: 64,
        pool_frames: 16,
        log_streams: 2,
        ..WalConfig::default()
    };
    let (mut recovered, _) = WalDb::recover(wal.crash_image(), cfg).expect("recover");
    let t = recovered.begin();
    let rel = HeapFile::open(&mut recovered, t, 0).expect("open after crash");
    assert_eq!(rel.count(&mut recovered, t).expect("count") as u64, TUPLES);
    println!("\ncrash + recovery: relation intact with {TUPLES} tuples ✓");
}
