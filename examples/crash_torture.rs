//! Crash-torture all five page-granular recovery architectures with one
//! randomized workload and verify they agree with a committed-state
//! oracle after every crash.
//!
//! ```sh
//! cargo run --release --example crash_torture -- [rounds] [seed]
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use recovery_machines::core::PageStore;
use recovery_machines::shadow::{
    NoRedoStore, NoUndoStore, OverwriteConfig, ShadowConfig, ShadowPager, VersionConfig,
    VersionStore,
};
use recovery_machines::wal::{WalConfig, WalDb};
use std::collections::HashMap;

const PAGES: u64 = 24;
const SLOT: usize = 32;

/// Committed-state oracle: page → the 32 bytes at offset 0.
type Oracle = HashMap<u64, Vec<u8>>;

/// Run `ops` random transactions; returns how many committed.
fn storm<S: PageStore>(store: &mut S, oracle: &mut Oracle, rng: &mut StdRng, ops: usize) -> usize {
    let mut committed = 0;
    for _ in 0..ops {
        let txn = store.begin();
        let n_writes = rng.gen_range(1..4);
        let mut staged: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut ok = true;
        for _ in 0..n_writes {
            let page = rng.gen_range(0..PAGES);
            if staged.iter().any(|(p, _)| *p == page) {
                continue;
            }
            let mut data = vec![0u8; SLOT];
            rng.fill(&mut data[..]);
            if store.write(txn, page, 0, &data).is_err() {
                ok = false; // lock conflict in a single-threaded storm = bug elsewhere
                break;
            }
            staged.push((page, data));
        }
        if ok && rng.gen_bool(0.7) {
            store.commit(txn).expect("commit");
            for (page, data) in staged {
                oracle.insert(page, data);
            }
            committed += 1;
        } else {
            store.abort(txn).expect("abort");
        }
    }
    committed
}

fn verify<S: PageStore>(store: &mut S, oracle: &Oracle, context: &str) {
    let txn = store.begin();
    for page in 0..PAGES {
        let got = store.read(txn, page, 0, SLOT).expect("read");
        let want = oracle.get(&page).cloned().unwrap_or_else(|| vec![0; SLOT]);
        assert_eq!(
            got,
            want,
            "{} [{}]: page {page} diverged from the oracle",
            store.architecture(),
            context
        );
    }
    store.abort(txn).expect("read-only abort");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let rounds: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(6);
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1985);

    // -- parallel logging --
    {
        let cfg = WalConfig {
            data_pages: PAGES,
            pool_frames: 4,
            log_streams: 3,
            ..WalConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let mut db = WalDb::new(cfg.clone());
        let mut oracle = Oracle::new();
        let mut total = 0;
        for round in 0..rounds {
            total += storm(&mut db, &mut oracle, &mut rng, 30);
            let (recovered, _) = WalDb::recover(db.crash_image(), cfg.clone()).unwrap();
            db = recovered;
            verify(&mut db, &oracle, &format!("crash {round}"));
        }
        println!("parallel logging (WAL)      : {total} commits, {rounds} crashes ✓");
    }

    // -- shadow, thru page-table --
    {
        let cfg = ShadowConfig {
            logical_pages: PAGES,
            data_frames: PAGES * 4,
            ..ShadowConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let mut db = ShadowPager::new(cfg.clone()).unwrap();
        let mut oracle = Oracle::new();
        let mut total = 0;
        for round in 0..rounds {
            total += storm(&mut db, &mut oracle, &mut rng, 30);
            let (recovered, _) = ShadowPager::recover(db.crash_image(), cfg.clone()).unwrap();
            db = recovered;
            verify(&mut db, &oracle, &format!("crash {round}"));
        }
        println!("shadow (thru page-table)    : {total} commits, {rounds} crashes ✓");
    }

    // -- shadow, version selection --
    {
        let cfg = VersionConfig {
            logical_pages: PAGES,
            commit_frames: 8,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let mut db = VersionStore::new(cfg.clone());
        let mut oracle = Oracle::new();
        let mut total = 0;
        for round in 0..rounds {
            total += storm(&mut db, &mut oracle, &mut rng, 30);
            let (recovered, _) = VersionStore::recover(db.crash_image(), cfg.clone()).unwrap();
            db = recovered;
            verify(&mut db, &oracle, &format!("crash {round}"));
        }
        println!("shadow (version selection)  : {total} commits, {rounds} crashes ✓");
    }

    // -- overwriting, no-undo --
    {
        let cfg = OverwriteConfig {
            logical_pages: PAGES,
            scratch_slots: 16,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let mut db = NoUndoStore::new(cfg.clone());
        let mut oracle = Oracle::new();
        let mut total = 0;
        for round in 0..rounds {
            total += storm(&mut db, &mut oracle, &mut rng, 30);
            let (recovered, _) = NoUndoStore::recover(db.crash_image(), cfg.clone()).unwrap();
            db = recovered;
            verify(&mut db, &oracle, &format!("crash {round}"));
        }
        println!("overwriting (no-undo)       : {total} commits, {rounds} crashes ✓");
    }

    // -- overwriting, no-redo --
    {
        let cfg = OverwriteConfig {
            logical_pages: PAGES,
            scratch_slots: 16,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let mut db = NoRedoStore::new(cfg.clone());
        let mut oracle = Oracle::new();
        let mut total = 0;
        for round in 0..rounds {
            total += storm(&mut db, &mut oracle, &mut rng, 30);
            let (recovered, _) = NoRedoStore::recover(db.crash_image(), cfg.clone()).unwrap();
            db = recovered;
            verify(&mut db, &oracle, &format!("crash {round}"));
        }
        println!("overwriting (no-redo)       : {total} commits, {rounds} crashes ✓");
    }

    println!("\nall five architectures agree with the committed-state oracle");
}
