//! A bank ledger on the parallel-logging engine: money conservation under
//! transfers, aborts, and repeated crashes.
//!
//! ```sh
//! cargo run --example banking_wal
//! ```
//!
//! Each account's balance is a little-endian `u64` at a fixed offset of a
//! page (16 accounts per page). The invariant — total money is constant —
//! must hold after any crash, because transfers are transactions.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use recovery_machines::wal::{WalConfig, WalDb, WalError};

const ACCOUNTS: u64 = 64;
const PER_PAGE: u64 = 16;
const INITIAL: u64 = 1_000;

fn slot(account: u64) -> (u64, usize) {
    (account / PER_PAGE, (account % PER_PAGE) as usize * 8)
}

fn balance(db: &mut WalDb, txn: u64, account: u64) -> Result<u64, WalError> {
    let (page, offset) = slot(account);
    let bytes = db.read(txn, page, offset, 8)?;
    Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
}

fn set_balance(db: &mut WalDb, txn: u64, account: u64, value: u64) -> Result<(), WalError> {
    let (page, offset) = slot(account);
    db.write(txn, page, offset, &value.to_le_bytes())
}

fn transfer(db: &mut WalDb, from: u64, to: u64, amount: u64) -> Result<bool, WalError> {
    let txn = db.begin();
    let src = balance(db, txn, from)?;
    if src < amount {
        db.abort(txn)?;
        return Ok(false);
    }
    let dst = balance(db, txn, to)?;
    set_balance(db, txn, from, src - amount)?;
    set_balance(db, txn, to, dst + amount)?;
    db.commit(txn)?;
    Ok(true)
}

fn audit(db: &mut WalDb) -> u64 {
    let txn = db.begin();
    let total = (0..ACCOUNTS)
        .map(|a| balance(db, txn, a).expect("audit read"))
        .sum();
    db.abort(txn).expect("audit is read-only");
    total
}

fn main() {
    let config = WalConfig {
        data_pages: ACCOUNTS / PER_PAGE,
        pool_frames: 2, // tiny pool: plenty of dirty-page steals
        log_streams: 3,
        ..WalConfig::default()
    };
    let mut db = WalDb::new(config.clone());

    // fund the accounts
    let t = db.begin();
    for a in 0..ACCOUNTS {
        set_balance(&mut db, t, a, INITIAL).unwrap();
    }
    db.commit(t).unwrap();
    let expected_total = ACCOUNTS * INITIAL;
    assert_eq!(audit(&mut db), expected_total);

    let mut rng = StdRng::seed_from_u64(2026);
    let mut committed = 0u64;
    let mut declined = 0u64;
    let mut crashes = 0u64;

    for round in 0..10 {
        // a burst of random transfers …
        for _ in 0..50 {
            let from = rng.gen_range(0..ACCOUNTS);
            let to = rng.gen_range(0..ACCOUNTS);
            if from == to {
                continue;
            }
            let amount = rng.gen_range(1..=300);
            match transfer(&mut db, from, to, amount) {
                Ok(true) => committed += 1,
                Ok(false) => declined += 1,
                Err(e) => panic!("unexpected engine error: {e}"),
            }
        }
        // … then the machine crashes mid-operation
        let victim = db.begin();
        let _ = set_balance(&mut db, victim, round % ACCOUNTS, 0); // never commits
        let image = db.crash_image();
        let (recovered, report) = WalDb::recover(image, config.clone()).unwrap();
        db = recovered;
        crashes += 1;
        assert_eq!(
            audit(&mut db),
            expected_total,
            "money must be conserved across crash {crashes} (losers: {:?})",
            report.loser_txns
        );
    }

    println!("{committed} transfers committed, {declined} declined, {crashes} crashes survived");
    println!(
        "final audit: {} == expected {} ✓",
        audit(&mut db),
        expected_total
    );
}
