//! Quickstart: the parallel-logging engine in five minutes.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Creates a database with two parallel log streams, commits a
//! transaction, aborts another, crashes, recovers, and shows that exactly
//! the committed state survived.

use recovery_machines::wal::{SelectionPolicy, WalConfig, WalDb};

fn main() {
    // A small database: 64 pages, 8 buffer frames, fragments routed
    // cyclically over two log processors — the paper's architecture.
    let config = WalConfig {
        data_pages: 64,
        pool_frames: 8,
        log_streams: 2,
        policy: SelectionPolicy::Cyclic,
        ..WalConfig::default()
    };
    let mut db = WalDb::new(config.clone());

    // A committed transaction.
    let t1 = db.begin();
    db.write(t1, 0, 0, b"committed before the crash").unwrap();
    db.commit(t1).unwrap();

    // An aborted transaction.
    let t2 = db.begin();
    db.write(t2, 1, 0, b"explicitly rolled back").unwrap();
    db.abort(t2).unwrap();

    // A transaction still in flight when the lights go out.
    let t3 = db.begin();
    db.write(t3, 2, 0, b"in flight at crash time").unwrap();

    // 💥 — capture exactly what is durable and throw the engine away.
    let image = db.crash_image();
    let (mut recovered, report) = WalDb::recover(image, config).unwrap();

    println!(
        "recovery scanned {} log stream(s), {} records",
        report.streams_scanned, report.records_scanned
    );
    println!("winners: {:?}", report.committed_txns);
    println!("losers rolled back: {:?}", report.loser_txns);

    let t = recovered.begin();
    let page0 = recovered.read(t, 0, 0, 26).unwrap();
    let page1 = recovered.read(t, 1, 0, 22).unwrap();
    let page2 = recovered.read(t, 2, 0, 23).unwrap();
    println!("page 0: {:?}", String::from_utf8_lossy(&page0));
    assert_eq!(page0, b"committed before the crash");
    assert_eq!(page1, vec![0; 22], "aborted write left no trace");
    assert_eq!(page2, vec![0; 23], "in-flight write rolled back");
    println!("crash recovery upheld exactly the committed state ✓");
}
