//! Crash a busy WAL engine mid-flight and bring it back with the
//! checkpoint-bounded parallel restart engine, comparing serial full-log
//! replay against K-way sharded redo.
//!
//! Run with: `cargo run --example restart_demo`

use recovery_machines::restart::{restart, RestartConfig};
use recovery_machines::wal::{WalConfig, WalDb};

fn cfg() -> WalConfig {
    WalConfig {
        data_pages: 256,
        pool_frames: 32,
        log_streams: 4,
        log_frames: 1 << 14,
        ckpt_every_commits: 64, // fuzzy checkpoint every 64 commits
        ..WalConfig::default()
    }
}

fn main() {
    // Build up a history: a long-lived transaction keeps every checkpoint
    // fuzzy (so the logs are retained, not truncated), while short
    // transactions churn pages and trip the auto-checkpoint knob.
    let mut db = WalDb::new(cfg());
    let drone = db.begin();
    db.write(drone, 255, 0, b"long-lived").unwrap();
    for i in 0..400u64 {
        let t = db.begin();
        let page = i % 200;
        db.write(
            t,
            page,
            (i % 16) as usize * 16,
            format!("commit {i:06}").as_bytes(),
        )
        .unwrap();
        db.commit(t).unwrap();
    }
    // ... and one transaction caught in flight by the crash: a loser.
    let loser = db.begin();
    db.write(loser, 7, 0, b"never happened").unwrap();

    println!("-- crash! ----------------------------------------------------");
    let image = db.crash_image();

    // Restart with one worker (serial redo) and with four.
    let serial_cfg = RestartConfig {
        workers: 1,
        ..RestartConfig::default()
    };
    let (_, serial_report) = restart(db.crash_image(), cfg(), &serial_cfg).unwrap();
    let (mut db2, report) = restart(image, cfg(), &RestartConfig::default()).unwrap();

    println!("{report}");
    println!(
        "serial redo took {:?}; {}-way redo took {:?}",
        serial_report.timings.redo, report.workers, report.timings.redo
    );

    // The committed tail survived, the loser vanished.
    let t = db2.begin();
    assert_eq!(db2.read(t, 199, 240, 13).unwrap(), b"commit 000399");
    assert_eq!(db2.read(t, 255, 0, 10).unwrap(), vec![0u8; 10]);
    println!("recovered state verified: winners kept, losers rolled back");
}
