//! Drive the database-machine simulator from the command line.
//!
//! ```sh
//! cargo run --release --example machine_sim -- [config] [overlay]
//! #   config:  cr | pr | cs | ps          (default: cr)
//! #   overlay: bare | logging | shadow | scrambled | overwriting | diff
//! ```
//!
//! Prints the paper's two metrics plus device utilizations for one run of
//! the simulated multiprocessor database machine.

use recovery_machines::machine::config::{
    DiffFileConfig, LoggingConfig, MachineConfig, OverwritingConfig, RecoveryOverlay,
    ShadowPtConfig,
};
use recovery_machines::machine::Machine;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map(String::as_str).unwrap_or("cr");
    let overlay = args.get(2).map(String::as_str).unwrap_or("bare");

    let configs = MachineConfig::paper_configurations();
    let idx = match which {
        "cr" => 0,
        "pr" => 1,
        "cs" => 2,
        "ps" => 3,
        other => {
            eprintln!("unknown configuration {other:?}; use cr|pr|cs|ps");
            std::process::exit(2);
        }
    };
    let (name, mut cfg) = configs[idx].clone();
    cfg.overlay = match overlay {
        "bare" => RecoveryOverlay::None,
        "logging" => RecoveryOverlay::Logging(LoggingConfig::default()),
        "shadow" => RecoveryOverlay::ShadowPt(ShadowPtConfig::default()),
        "scrambled" => RecoveryOverlay::ShadowPt(ShadowPtConfig {
            clustered: false,
            ..ShadowPtConfig::default()
        }),
        "overwriting" => RecoveryOverlay::Overwriting(OverwritingConfig::default()),
        "diff" => RecoveryOverlay::DiffFile(DiffFileConfig::default()),
        other => {
            eprintln!("unknown overlay {other:?}");
            std::process::exit(2);
        }
    };

    println!("machine: {name}  |  recovery: {overlay}");
    println!(
        "  {} query processors, {} cache frames, {} data disks",
        cfg.query_processors, cfg.cache_frames, cfg.data_disks
    );
    let report = Machine::new(cfg).run();
    println!(
        "  execution time per page : {:>9.2} ms",
        report.exec_time_per_page_ms
    );
    println!(
        "  transaction completion  : {:>9.1} ms",
        report.mean_completion_ms
    );
    println!("  pages processed         : {:>9}", report.pages_processed);
    println!(
        "  data disk accesses      : {:>9}",
        report.data_disk_accesses
    );
    println!(
        "  data disk utilization   : {:>9}",
        report
            .data_disk_util
            .iter()
            .map(|u| format!("{u:.2}"))
            .collect::<Vec<_>>()
            .join(" / ")
    );
    println!("  query processor util    : {:>9.2}", report.qp_util);
    if !report.log_disk_util.is_empty() {
        println!(
            "  log disk utilization    : {:>9}",
            report
                .log_disk_util
                .iter()
                .map(|u| format!("{u:.3}"))
                .collect::<Vec<_>>()
                .join(" / ")
        );
        println!(
            "  blocked updated pages   : {:>9.1}",
            report.mean_blocked_pages
        );
    }
    if !report.pt_disk_util.is_empty() {
        println!(
            "  page-table disk util    : {:>9}",
            report
                .pt_disk_util
                .iter()
                .map(|u| format!("{u:.2}"))
                .collect::<Vec<_>>()
                .join(" / ")
        );
    }
}
