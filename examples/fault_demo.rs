//! Demo of the deterministic fault-injection substrate: a lying device,
//! a mid-commit crash, and a recovery that reports what it survived.
//!
//! ```text
//! cargo run --example fault_demo
//! ```

use recovery_machines::storage::{FaultInjector, FaultPlan, MemDisk, StorageError, FRAME_SIZE};
use recovery_machines::wal::{SelectionPolicy, WalConfig, WalDb};

fn main() {
    let cfg = WalConfig {
        data_pages: 16,
        pool_frames: 3,
        log_streams: 3,
        policy: SelectionPolicy::Cyclic,
        ..WalConfig::default()
    };

    // A seeded storm: ~1/16 writes torn, lost, or transiently failing,
    // ~1/32 reads bit-flipped or failing — and the machine dies after
    // the 97th frame write. Same (seed, horizon) ⇒ same plan, forever.
    let plan = FaultPlan::seeded(1985, 1 << 20).crash_after_write(97);
    println!(
        "plan: {} write faults, {} read faults scheduled before the crash",
        plan.on_write.range(..98).count(),
        plan.on_read.range(..98).count(),
    );

    let run = |cfg: &WalConfig| {
        let mut db = WalDb::new(cfg.clone());
        db.attach_faults(&FaultInjector::handle(plan.clone()));
        let mut committed = 0;
        for i in 0..1_000u64 {
            let t = db.begin();
            if db.write(t, i % 16, 0, &i.to_le_bytes()).is_err() {
                break; // the device just died mid-write
            }
            if db.commit(t).is_ok() {
                committed += 1;
            } else {
                break; // ... or mid-commit
            }
        }
        (db.crash_image(), committed)
    };

    let (image, committed) = run(&cfg);
    println!("device died; {committed} transactions committed before the crash");

    // Recovery runs on the durable platter state and reports its work.
    let (mut db, report) = WalDb::recover(image, cfg.clone()).expect("recover");
    println!(
        "recovered: {} committed, {} losers, {} redone, {} undone, \
         {} log pages quarantined, {} records salvaged",
        report.committed_txns.len(),
        report.loser_txns.len(),
        report.redone_updates,
        report.undone_updates,
        report.quarantined_log_pages,
        report.salvaged_records,
    );
    let t = db.begin();
    let v = db.read(t, 0, 0, 8).expect("read");
    db.abort(t).expect("abort");
    println!("page 0 after recovery: {v:?}");

    // Replayability: the same plan against the same workload leaves a
    // byte-identical platter.
    let (a, _) = run(&cfg);
    let (b, _) = run(&cfg);
    let identical = (0..a.data.capacity()).all(|addr| {
        a.data.is_allocated(addr) == b.data.is_allocated(addr)
            && (!a.data.is_allocated(addr)
                || a.data.read_frame(addr).unwrap() == b.data.read_frame(addr).unwrap())
    });
    println!("two runs of the same plan are byte-identical: {identical}");

    // Corruption is a typed error, never a panic.
    let mut disk = MemDisk::new(4);
    match disk.write_partial(0, &[0u8; FRAME_SIZE], FRAME_SIZE + 1) {
        Err(StorageError::BadLength { len, max }) => {
            println!("oversized partial write rejected: len {len} > max {max}")
        }
        other => println!("unexpected: {other:?}"),
    }
}
