//! Differential files as a *hypothetical database* (Stonebraker's use of
//! the decomposition the paper builds on): run what-if transactions
//! against a production relation without ever touching the base file.
//!
//! ```sh
//! cargo run --example hypothetical_db
//! ```

use recovery_machines::difffile::{DiffConfig, DiffDb, ScanStrategy, Tuple};

fn main() {
    // the production relation: product inventory, read-only base file
    let base: Vec<Tuple> = (0..100)
        .map(|sku| Tuple {
            key: sku,
            value: format!("qty={}", 50 + sku % 17).into_bytes(),
        })
        .collect();
    let mut db = DiffDb::with_base(DiffConfig::default(), base).unwrap();

    // A what-if scenario: "what would the catalog look like if we dropped
    // every tenth SKU and doubled the new line?" — run it, inspect it,
    // then throw it away. The base file never changes.
    let what_if = db.begin();
    for sku in (0..100).step_by(10) {
        db.delete(what_if, sku).unwrap();
    }
    for sku in 100..110 {
        db.insert(what_if, sku, b"qty=200 (proposed)").unwrap();
    }
    let hypothetical = db
        .query(what_if, |t| t.key >= 95, ScanStrategy::Optimal)
        .unwrap();
    println!(
        "hypothetical view of SKUs ≥ 95 ({} tuples):",
        hypothetical.len()
    );
    for t in &hypothetical {
        println!("  sku {:>3}  {}", t.key, String::from_utf8_lossy(&t.value));
    }
    db.abort(what_if).unwrap();
    println!("scenario discarded — the base file was never written\n");

    // Reality: a committed update batch.
    let real = db.begin();
    db.update(real, 7, b"qty=0 (sold out)").unwrap();
    db.delete(real, 13).unwrap();
    db.commit(real).unwrap();

    let reader = db.begin();
    let count = db
        .query(reader, |_| true, ScanStrategy::Optimal)
        .unwrap()
        .len();
    assert_eq!(count, 99, "100 base - 1 delete");
    assert_eq!(db.get(reader, 7).unwrap().unwrap(), b"qty=0 (sold out)");
    assert_eq!(db.get(reader, 13).unwrap(), None);
    db.abort(reader).unwrap();
    println!("committed view: {count} tuples, sku 7 sold out, sku 13 gone");

    // Crash: the committed delta survives, nothing else.
    let mut db = DiffDb::recover(db.crash_image(), DiffConfig::default()).unwrap();
    let reader = db.begin();
    assert_eq!(db.get(reader, 7).unwrap().unwrap(), b"qty=0 (sold out)");
    db.abort(reader).unwrap();
    println!("crash + recovery: committed delta intact ✓");

    // Merge folds A and D into a new base and empties the differential
    // files — the operation the paper's §4.3.3 decided not to model.
    println!(
        "before merge: {} A-entries, {} D-entries, {} base pages",
        db.a_entries(),
        db.d_entries(),
        db.base_pages()
    );
    db.merge().unwrap();
    println!(
        "after merge:  {} A-entries, {} D-entries, {} base pages",
        db.a_entries(),
        db.d_entries(),
        db.base_pages()
    );
    let reader = db.begin();
    assert_eq!(db.get(reader, 13).unwrap(), None);
    assert_eq!(
        db.query(reader, |_| true, ScanStrategy::Optimal)
            .unwrap()
            .len(),
        99
    );
    db.abort(reader).unwrap();
    println!("post-merge view identical ✓");
}
