/root/repo/target/release/examples/crash_torture-4b21e784ff2e4191.d: examples/crash_torture.rs

/root/repo/target/release/examples/crash_torture-4b21e784ff2e4191: examples/crash_torture.rs

examples/crash_torture.rs:
