/root/repo/target/release/examples/__ratio_probe-85fead4544fe226e.d: examples/__ratio_probe.rs

/root/repo/target/release/examples/__ratio_probe-85fead4544fe226e: examples/__ratio_probe.rs

examples/__ratio_probe.rs:
