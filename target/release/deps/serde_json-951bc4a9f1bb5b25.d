/root/repo/target/release/deps/serde_json-951bc4a9f1bb5b25.d: third_party/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-951bc4a9f1bb5b25.rlib: third_party/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-951bc4a9f1bb5b25.rmeta: third_party/serde_json/src/lib.rs

third_party/serde_json/src/lib.rs:
