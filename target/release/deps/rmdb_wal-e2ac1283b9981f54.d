/root/repo/target/release/deps/rmdb_wal-e2ac1283b9981f54.d: crates/wal/src/lib.rs crates/wal/src/concurrent.rs crates/wal/src/db.rs crates/wal/src/lock.rs crates/wal/src/manager.rs crates/wal/src/record.rs crates/wal/src/recovery.rs crates/wal/src/scheduler.rs crates/wal/src/select.rs crates/wal/src/stream.rs

/root/repo/target/release/deps/librmdb_wal-e2ac1283b9981f54.rlib: crates/wal/src/lib.rs crates/wal/src/concurrent.rs crates/wal/src/db.rs crates/wal/src/lock.rs crates/wal/src/manager.rs crates/wal/src/record.rs crates/wal/src/recovery.rs crates/wal/src/scheduler.rs crates/wal/src/select.rs crates/wal/src/stream.rs

/root/repo/target/release/deps/librmdb_wal-e2ac1283b9981f54.rmeta: crates/wal/src/lib.rs crates/wal/src/concurrent.rs crates/wal/src/db.rs crates/wal/src/lock.rs crates/wal/src/manager.rs crates/wal/src/record.rs crates/wal/src/recovery.rs crates/wal/src/scheduler.rs crates/wal/src/select.rs crates/wal/src/stream.rs

crates/wal/src/lib.rs:
crates/wal/src/concurrent.rs:
crates/wal/src/db.rs:
crates/wal/src/lock.rs:
crates/wal/src/manager.rs:
crates/wal/src/record.rs:
crates/wal/src/recovery.rs:
crates/wal/src/scheduler.rs:
crates/wal/src/select.rs:
crates/wal/src/stream.rs:
