/root/repo/target/release/deps/serde-63b7a3c68765d713.d: third_party/serde/src/lib.rs third_party/serde/src/__private.rs

/root/repo/target/release/deps/libserde-63b7a3c68765d713.rlib: third_party/serde/src/lib.rs third_party/serde/src/__private.rs

/root/repo/target/release/deps/libserde-63b7a3c68765d713.rmeta: third_party/serde/src/lib.rs third_party/serde/src/__private.rs

third_party/serde/src/lib.rs:
third_party/serde/src/__private.rs:
