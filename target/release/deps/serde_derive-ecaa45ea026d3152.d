/root/repo/target/release/deps/serde_derive-ecaa45ea026d3152.d: third_party/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-ecaa45ea026d3152.so: third_party/serde_derive/src/lib.rs

third_party/serde_derive/src/lib.rs:
