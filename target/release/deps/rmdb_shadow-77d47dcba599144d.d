/root/repo/target/release/deps/rmdb_shadow-77d47dcba599144d.d: crates/shadow/src/lib.rs crates/shadow/src/overwrite.rs crates/shadow/src/pagetable.rs crates/shadow/src/scratch.rs crates/shadow/src/version.rs

/root/repo/target/release/deps/librmdb_shadow-77d47dcba599144d.rlib: crates/shadow/src/lib.rs crates/shadow/src/overwrite.rs crates/shadow/src/pagetable.rs crates/shadow/src/scratch.rs crates/shadow/src/version.rs

/root/repo/target/release/deps/librmdb_shadow-77d47dcba599144d.rmeta: crates/shadow/src/lib.rs crates/shadow/src/overwrite.rs crates/shadow/src/pagetable.rs crates/shadow/src/scratch.rs crates/shadow/src/version.rs

crates/shadow/src/lib.rs:
crates/shadow/src/overwrite.rs:
crates/shadow/src/pagetable.rs:
crates/shadow/src/scratch.rs:
crates/shadow/src/version.rs:
