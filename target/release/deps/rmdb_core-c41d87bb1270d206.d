/root/repo/target/release/deps/rmdb_core-c41d87bb1270d206.d: crates/core/src/lib.rs crates/core/src/export.rs crates/core/src/store.rs

/root/repo/target/release/deps/librmdb_core-c41d87bb1270d206.rlib: crates/core/src/lib.rs crates/core/src/export.rs crates/core/src/store.rs

/root/repo/target/release/deps/librmdb_core-c41d87bb1270d206.rmeta: crates/core/src/lib.rs crates/core/src/export.rs crates/core/src/store.rs

crates/core/src/lib.rs:
crates/core/src/export.rs:
crates/core/src/store.rs:
