/root/repo/target/release/deps/rmdb_sim-1cd25d8f1c5285c0.d: crates/sim/src/lib.rs crates/sim/src/calendar.rs crates/sim/src/resource.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/release/deps/librmdb_sim-1cd25d8f1c5285c0.rlib: crates/sim/src/lib.rs crates/sim/src/calendar.rs crates/sim/src/resource.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/release/deps/librmdb_sim-1cd25d8f1c5285c0.rmeta: crates/sim/src/lib.rs crates/sim/src/calendar.rs crates/sim/src/resource.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/calendar.rs:
crates/sim/src/resource.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
