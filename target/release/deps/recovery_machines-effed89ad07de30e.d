/root/repo/target/release/deps/recovery_machines-effed89ad07de30e.d: src/lib.rs

/root/repo/target/release/deps/librecovery_machines-effed89ad07de30e.rlib: src/lib.rs

/root/repo/target/release/deps/librecovery_machines-effed89ad07de30e.rmeta: src/lib.rs

src/lib.rs:
