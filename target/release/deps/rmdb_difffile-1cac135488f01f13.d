/root/repo/target/release/deps/rmdb_difffile-1cac135488f01f13.d: crates/difffile/src/lib.rs crates/difffile/src/db.rs crates/difffile/src/ops.rs crates/difffile/src/tuple.rs

/root/repo/target/release/deps/librmdb_difffile-1cac135488f01f13.rlib: crates/difffile/src/lib.rs crates/difffile/src/db.rs crates/difffile/src/ops.rs crates/difffile/src/tuple.rs

/root/repo/target/release/deps/librmdb_difffile-1cac135488f01f13.rmeta: crates/difffile/src/lib.rs crates/difffile/src/db.rs crates/difffile/src/ops.rs crates/difffile/src/tuple.rs

crates/difffile/src/lib.rs:
crates/difffile/src/db.rs:
crates/difffile/src/ops.rs:
crates/difffile/src/tuple.rs:
