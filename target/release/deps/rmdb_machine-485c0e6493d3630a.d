/root/repo/target/release/deps/rmdb_machine-485c0e6493d3630a.d: crates/machine/src/lib.rs crates/machine/src/ablations.rs crates/machine/src/config.rs crates/machine/src/experiments.rs crates/machine/src/machine.rs crates/machine/src/report.rs crates/machine/src/workload.rs

/root/repo/target/release/deps/librmdb_machine-485c0e6493d3630a.rlib: crates/machine/src/lib.rs crates/machine/src/ablations.rs crates/machine/src/config.rs crates/machine/src/experiments.rs crates/machine/src/machine.rs crates/machine/src/report.rs crates/machine/src/workload.rs

/root/repo/target/release/deps/librmdb_machine-485c0e6493d3630a.rmeta: crates/machine/src/lib.rs crates/machine/src/ablations.rs crates/machine/src/config.rs crates/machine/src/experiments.rs crates/machine/src/machine.rs crates/machine/src/report.rs crates/machine/src/workload.rs

crates/machine/src/lib.rs:
crates/machine/src/ablations.rs:
crates/machine/src/config.rs:
crates/machine/src/experiments.rs:
crates/machine/src/machine.rs:
crates/machine/src/report.rs:
crates/machine/src/workload.rs:
