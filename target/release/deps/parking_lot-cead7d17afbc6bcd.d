/root/repo/target/release/deps/parking_lot-cead7d17afbc6bcd.d: third_party/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-cead7d17afbc6bcd.rlib: third_party/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-cead7d17afbc6bcd.rmeta: third_party/parking_lot/src/lib.rs

third_party/parking_lot/src/lib.rs:
