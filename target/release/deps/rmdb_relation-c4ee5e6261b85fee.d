/root/repo/target/release/deps/rmdb_relation-c4ee5e6261b85fee.d: crates/relation/src/lib.rs crates/relation/src/btree.rs crates/relation/src/heap.rs crates/relation/src/query.rs

/root/repo/target/release/deps/librmdb_relation-c4ee5e6261b85fee.rlib: crates/relation/src/lib.rs crates/relation/src/btree.rs crates/relation/src/heap.rs crates/relation/src/query.rs

/root/repo/target/release/deps/librmdb_relation-c4ee5e6261b85fee.rmeta: crates/relation/src/lib.rs crates/relation/src/btree.rs crates/relation/src/heap.rs crates/relation/src/query.rs

crates/relation/src/lib.rs:
crates/relation/src/btree.rs:
crates/relation/src/heap.rs:
crates/relation/src/query.rs:
