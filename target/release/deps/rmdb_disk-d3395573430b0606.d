/root/repo/target/release/deps/rmdb_disk-d3395573430b0606.d: crates/disk/src/lib.rs crates/disk/src/disk.rs crates/disk/src/geometry.rs crates/disk/src/model.rs

/root/repo/target/release/deps/librmdb_disk-d3395573430b0606.rlib: crates/disk/src/lib.rs crates/disk/src/disk.rs crates/disk/src/geometry.rs crates/disk/src/model.rs

/root/repo/target/release/deps/librmdb_disk-d3395573430b0606.rmeta: crates/disk/src/lib.rs crates/disk/src/disk.rs crates/disk/src/geometry.rs crates/disk/src/model.rs

crates/disk/src/lib.rs:
crates/disk/src/disk.rs:
crates/disk/src/geometry.rs:
crates/disk/src/model.rs:
