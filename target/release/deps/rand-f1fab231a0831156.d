/root/repo/target/release/deps/rand-f1fab231a0831156.d: third_party/rand/src/lib.rs

/root/repo/target/release/deps/librand-f1fab231a0831156.rlib: third_party/rand/src/lib.rs

/root/repo/target/release/deps/librand-f1fab231a0831156.rmeta: third_party/rand/src/lib.rs

third_party/rand/src/lib.rs:
