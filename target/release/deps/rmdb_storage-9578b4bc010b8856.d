/root/repo/target/release/deps/rmdb_storage-9578b4bc010b8856.d: crates/storage/src/lib.rs crates/storage/src/buffer.rs crates/storage/src/error.rs crates/storage/src/fault.rs crates/storage/src/memdisk.rs crates/storage/src/page.rs

/root/repo/target/release/deps/librmdb_storage-9578b4bc010b8856.rlib: crates/storage/src/lib.rs crates/storage/src/buffer.rs crates/storage/src/error.rs crates/storage/src/fault.rs crates/storage/src/memdisk.rs crates/storage/src/page.rs

/root/repo/target/release/deps/librmdb_storage-9578b4bc010b8856.rmeta: crates/storage/src/lib.rs crates/storage/src/buffer.rs crates/storage/src/error.rs crates/storage/src/fault.rs crates/storage/src/memdisk.rs crates/storage/src/page.rs

crates/storage/src/lib.rs:
crates/storage/src/buffer.rs:
crates/storage/src/error.rs:
crates/storage/src/fault.rs:
crates/storage/src/memdisk.rs:
crates/storage/src/page.rs:
