/root/repo/target/debug/examples/fault_demo-09e4527933246367.d: examples/fault_demo.rs

/root/repo/target/debug/examples/fault_demo-09e4527933246367: examples/fault_demo.rs

examples/fault_demo.rs:
