/root/repo/target/debug/examples/banking_wal-73e577cae8ae4282.d: examples/banking_wal.rs Cargo.toml

/root/repo/target/debug/examples/libbanking_wal-73e577cae8ae4282.rmeta: examples/banking_wal.rs Cargo.toml

examples/banking_wal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
