/root/repo/target/debug/examples/machine_sim-4b15d397bf713a3e.d: examples/machine_sim.rs Cargo.toml

/root/repo/target/debug/examples/libmachine_sim-4b15d397bf713a3e.rmeta: examples/machine_sim.rs Cargo.toml

examples/machine_sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
