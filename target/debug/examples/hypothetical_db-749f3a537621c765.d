/root/repo/target/debug/examples/hypothetical_db-749f3a537621c765.d: examples/hypothetical_db.rs

/root/repo/target/debug/examples/hypothetical_db-749f3a537621c765: examples/hypothetical_db.rs

examples/hypothetical_db.rs:
