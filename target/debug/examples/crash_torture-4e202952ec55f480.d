/root/repo/target/debug/examples/crash_torture-4e202952ec55f480.d: examples/crash_torture.rs Cargo.toml

/root/repo/target/debug/examples/libcrash_torture-4e202952ec55f480.rmeta: examples/crash_torture.rs Cargo.toml

examples/crash_torture.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
