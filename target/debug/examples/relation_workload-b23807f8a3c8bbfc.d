/root/repo/target/debug/examples/relation_workload-b23807f8a3c8bbfc.d: examples/relation_workload.rs Cargo.toml

/root/repo/target/debug/examples/librelation_workload-b23807f8a3c8bbfc.rmeta: examples/relation_workload.rs Cargo.toml

examples/relation_workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
