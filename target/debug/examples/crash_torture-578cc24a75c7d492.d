/root/repo/target/debug/examples/crash_torture-578cc24a75c7d492.d: examples/crash_torture.rs

/root/repo/target/debug/examples/crash_torture-578cc24a75c7d492: examples/crash_torture.rs

examples/crash_torture.rs:
