/root/repo/target/debug/examples/quickstart-48ea57cfb57ae84d.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-48ea57cfb57ae84d: examples/quickstart.rs

examples/quickstart.rs:
