/root/repo/target/debug/examples/banking_wal-b6208bf627b5113a.d: examples/banking_wal.rs

/root/repo/target/debug/examples/banking_wal-b6208bf627b5113a: examples/banking_wal.rs

examples/banking_wal.rs:
