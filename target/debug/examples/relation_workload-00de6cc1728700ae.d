/root/repo/target/debug/examples/relation_workload-00de6cc1728700ae.d: examples/relation_workload.rs

/root/repo/target/debug/examples/relation_workload-00de6cc1728700ae: examples/relation_workload.rs

examples/relation_workload.rs:
