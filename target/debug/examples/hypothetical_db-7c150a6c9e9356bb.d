/root/repo/target/debug/examples/hypothetical_db-7c150a6c9e9356bb.d: examples/hypothetical_db.rs Cargo.toml

/root/repo/target/debug/examples/libhypothetical_db-7c150a6c9e9356bb.rmeta: examples/hypothetical_db.rs Cargo.toml

examples/hypothetical_db.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
