/root/repo/target/debug/examples/machine_sim-4868d8d7f6e33a7a.d: examples/machine_sim.rs

/root/repo/target/debug/examples/machine_sim-4868d8d7f6e33a7a: examples/machine_sim.rs

examples/machine_sim.rs:
