/root/repo/target/debug/examples/fault_demo-1e1df048f2988068.d: examples/fault_demo.rs Cargo.toml

/root/repo/target/debug/examples/libfault_demo-1e1df048f2988068.rmeta: examples/fault_demo.rs Cargo.toml

examples/fault_demo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
