/root/repo/target/debug/deps/rmdb_wal-b716e080e51a367d.d: crates/wal/src/lib.rs crates/wal/src/concurrent.rs crates/wal/src/db.rs crates/wal/src/lock.rs crates/wal/src/manager.rs crates/wal/src/record.rs crates/wal/src/recovery.rs crates/wal/src/scheduler.rs crates/wal/src/select.rs crates/wal/src/stream.rs

/root/repo/target/debug/deps/librmdb_wal-b716e080e51a367d.rlib: crates/wal/src/lib.rs crates/wal/src/concurrent.rs crates/wal/src/db.rs crates/wal/src/lock.rs crates/wal/src/manager.rs crates/wal/src/record.rs crates/wal/src/recovery.rs crates/wal/src/scheduler.rs crates/wal/src/select.rs crates/wal/src/stream.rs

/root/repo/target/debug/deps/librmdb_wal-b716e080e51a367d.rmeta: crates/wal/src/lib.rs crates/wal/src/concurrent.rs crates/wal/src/db.rs crates/wal/src/lock.rs crates/wal/src/manager.rs crates/wal/src/record.rs crates/wal/src/recovery.rs crates/wal/src/scheduler.rs crates/wal/src/select.rs crates/wal/src/stream.rs

crates/wal/src/lib.rs:
crates/wal/src/concurrent.rs:
crates/wal/src/db.rs:
crates/wal/src/lock.rs:
crates/wal/src/manager.rs:
crates/wal/src/record.rs:
crates/wal/src/recovery.rs:
crates/wal/src/scheduler.rs:
crates/wal/src/select.rs:
crates/wal/src/stream.rs:
