/root/repo/target/debug/deps/rmdb_machine-88c441cf0e4fce37.d: crates/machine/src/lib.rs crates/machine/src/ablations.rs crates/machine/src/config.rs crates/machine/src/experiments.rs crates/machine/src/machine.rs crates/machine/src/report.rs crates/machine/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/librmdb_machine-88c441cf0e4fce37.rmeta: crates/machine/src/lib.rs crates/machine/src/ablations.rs crates/machine/src/config.rs crates/machine/src/experiments.rs crates/machine/src/machine.rs crates/machine/src/report.rs crates/machine/src/workload.rs Cargo.toml

crates/machine/src/lib.rs:
crates/machine/src/ablations.rs:
crates/machine/src/config.rs:
crates/machine/src/experiments.rs:
crates/machine/src/machine.rs:
crates/machine/src/report.rs:
crates/machine/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
