/root/repo/target/debug/deps/wal_properties-590463c64c616971.d: tests/wal_properties.rs Cargo.toml

/root/repo/target/debug/deps/libwal_properties-590463c64c616971.rmeta: tests/wal_properties.rs Cargo.toml

tests/wal_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
