/root/repo/target/debug/deps/rmdb_core-1f926c1ae63199ea.d: crates/core/src/lib.rs crates/core/src/export.rs crates/core/src/store.rs Cargo.toml

/root/repo/target/debug/deps/librmdb_core-1f926c1ae63199ea.rmeta: crates/core/src/lib.rs crates/core/src/export.rs crates/core/src/store.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/export.rs:
crates/core/src/store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
