/root/repo/target/debug/deps/table07-315ba5259ab4646b.d: crates/bench/src/bin/table07.rs

/root/repo/target/debug/deps/table07-315ba5259ab4646b: crates/bench/src/bin/table07.rs

crates/bench/src/bin/table07.rs:
