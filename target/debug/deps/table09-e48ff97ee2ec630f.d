/root/repo/target/debug/deps/table09-e48ff97ee2ec630f.d: crates/bench/src/bin/table09.rs

/root/repo/target/debug/deps/table09-e48ff97ee2ec630f: crates/bench/src/bin/table09.rs

crates/bench/src/bin/table09.rs:
