/root/repo/target/debug/deps/table02-accb9123d9ca01ad.d: crates/bench/src/bin/table02.rs

/root/repo/target/debug/deps/table02-accb9123d9ca01ad: crates/bench/src/bin/table02.rs

crates/bench/src/bin/table02.rs:
