/root/repo/target/debug/deps/rmdb_shadow-f9a153b36c62b5ab.d: crates/shadow/src/lib.rs crates/shadow/src/overwrite.rs crates/shadow/src/pagetable.rs crates/shadow/src/scratch.rs crates/shadow/src/version.rs Cargo.toml

/root/repo/target/debug/deps/librmdb_shadow-f9a153b36c62b5ab.rmeta: crates/shadow/src/lib.rs crates/shadow/src/overwrite.rs crates/shadow/src/pagetable.rs crates/shadow/src/scratch.rs crates/shadow/src/version.rs Cargo.toml

crates/shadow/src/lib.rs:
crates/shadow/src/overwrite.rs:
crates/shadow/src/pagetable.rs:
crates/shadow/src/scratch.rs:
crates/shadow/src/version.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
