/root/repo/target/debug/deps/machine_integration-82a1376c604b8866.d: tests/machine_integration.rs Cargo.toml

/root/repo/target/debug/deps/libmachine_integration-82a1376c604b8866.rmeta: tests/machine_integration.rs Cargo.toml

tests/machine_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
