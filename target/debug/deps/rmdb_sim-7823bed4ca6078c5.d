/root/repo/target/debug/deps/rmdb_sim-7823bed4ca6078c5.d: crates/sim/src/lib.rs crates/sim/src/calendar.rs crates/sim/src/resource.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/rmdb_sim-7823bed4ca6078c5: crates/sim/src/lib.rs crates/sim/src/calendar.rs crates/sim/src/resource.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/calendar.rs:
crates/sim/src/resource.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
