/root/repo/target/debug/deps/recovery_machines-4b18422049a2ce4d.d: src/lib.rs

/root/repo/target/debug/deps/librecovery_machines-4b18422049a2ce4d.rlib: src/lib.rs

/root/repo/target/debug/deps/librecovery_machines-4b18422049a2ce4d.rmeta: src/lib.rs

src/lib.rs:
