/root/repo/target/debug/deps/rmdb_storage-2f8a54e22caee9c5.d: crates/storage/src/lib.rs crates/storage/src/buffer.rs crates/storage/src/error.rs crates/storage/src/fault.rs crates/storage/src/memdisk.rs crates/storage/src/page.rs Cargo.toml

/root/repo/target/debug/deps/librmdb_storage-2f8a54e22caee9c5.rmeta: crates/storage/src/lib.rs crates/storage/src/buffer.rs crates/storage/src/error.rs crates/storage/src/fault.rs crates/storage/src/memdisk.rs crates/storage/src/page.rs Cargo.toml

crates/storage/src/lib.rs:
crates/storage/src/buffer.rs:
crates/storage/src/error.rs:
crates/storage/src/fault.rs:
crates/storage/src/memdisk.rs:
crates/storage/src/page.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
