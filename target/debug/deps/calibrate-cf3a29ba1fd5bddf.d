/root/repo/target/debug/deps/calibrate-cf3a29ba1fd5bddf.d: crates/machine/src/bin/calibrate.rs

/root/repo/target/debug/deps/calibrate-cf3a29ba1fd5bddf: crates/machine/src/bin/calibrate.rs

crates/machine/src/bin/calibrate.rs:
