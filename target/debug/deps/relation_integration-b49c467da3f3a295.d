/root/repo/target/debug/deps/relation_integration-b49c467da3f3a295.d: tests/relation_integration.rs

/root/repo/target/debug/deps/relation_integration-b49c467da3f3a295: tests/relation_integration.rs

tests/relation_integration.rs:
