/root/repo/target/debug/deps/serde_derive-c8cc5b27672874a4.d: third_party/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-c8cc5b27672874a4.so: third_party/serde_derive/src/lib.rs

third_party/serde_derive/src/lib.rs:
