/root/repo/target/debug/deps/rmdb_storage-c447eb6194e54292.d: crates/storage/src/lib.rs crates/storage/src/buffer.rs crates/storage/src/error.rs crates/storage/src/fault.rs crates/storage/src/memdisk.rs crates/storage/src/page.rs

/root/repo/target/debug/deps/rmdb_storage-c447eb6194e54292: crates/storage/src/lib.rs crates/storage/src/buffer.rs crates/storage/src/error.rs crates/storage/src/fault.rs crates/storage/src/memdisk.rs crates/storage/src/page.rs

crates/storage/src/lib.rs:
crates/storage/src/buffer.rs:
crates/storage/src/error.rs:
crates/storage/src/fault.rs:
crates/storage/src/memdisk.rs:
crates/storage/src/page.rs:
