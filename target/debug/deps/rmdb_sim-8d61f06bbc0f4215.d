/root/repo/target/debug/deps/rmdb_sim-8d61f06bbc0f4215.d: crates/sim/src/lib.rs crates/sim/src/calendar.rs crates/sim/src/resource.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/librmdb_sim-8d61f06bbc0f4215.rlib: crates/sim/src/lib.rs crates/sim/src/calendar.rs crates/sim/src/resource.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/librmdb_sim-8d61f06bbc0f4215.rmeta: crates/sim/src/lib.rs crates/sim/src/calendar.rs crates/sim/src/resource.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/calendar.rs:
crates/sim/src/resource.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
