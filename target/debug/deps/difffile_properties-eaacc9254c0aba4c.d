/root/repo/target/debug/deps/difffile_properties-eaacc9254c0aba4c.d: tests/difffile_properties.rs Cargo.toml

/root/repo/target/debug/deps/libdifffile_properties-eaacc9254c0aba4c.rmeta: tests/difffile_properties.rs Cargo.toml

tests/difffile_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
