/root/repo/target/debug/deps/rmdb_machine-29d2bbcf42fca129.d: crates/machine/src/lib.rs crates/machine/src/ablations.rs crates/machine/src/config.rs crates/machine/src/experiments.rs crates/machine/src/machine.rs crates/machine/src/report.rs crates/machine/src/workload.rs

/root/repo/target/debug/deps/rmdb_machine-29d2bbcf42fca129: crates/machine/src/lib.rs crates/machine/src/ablations.rs crates/machine/src/config.rs crates/machine/src/experiments.rs crates/machine/src/machine.rs crates/machine/src/report.rs crates/machine/src/workload.rs

crates/machine/src/lib.rs:
crates/machine/src/ablations.rs:
crates/machine/src/config.rs:
crates/machine/src/experiments.rs:
crates/machine/src/machine.rs:
crates/machine/src/report.rs:
crates/machine/src/workload.rs:
