/root/repo/target/debug/deps/rmdb_relation-2f648cde065f61c4.d: crates/relation/src/lib.rs crates/relation/src/btree.rs crates/relation/src/heap.rs crates/relation/src/query.rs Cargo.toml

/root/repo/target/debug/deps/librmdb_relation-2f648cde065f61c4.rmeta: crates/relation/src/lib.rs crates/relation/src/btree.rs crates/relation/src/heap.rs crates/relation/src/query.rs Cargo.toml

crates/relation/src/lib.rs:
crates/relation/src/btree.rs:
crates/relation/src/heap.rs:
crates/relation/src/query.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
