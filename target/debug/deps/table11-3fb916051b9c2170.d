/root/repo/target/debug/deps/table11-3fb916051b9c2170.d: crates/bench/src/bin/table11.rs

/root/repo/target/debug/deps/table11-3fb916051b9c2170: crates/bench/src/bin/table11.rs

crates/bench/src/bin/table11.rs:
