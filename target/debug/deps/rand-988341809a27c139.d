/root/repo/target/debug/deps/rand-988341809a27c139.d: third_party/rand/src/lib.rs

/root/repo/target/debug/deps/librand-988341809a27c139.rlib: third_party/rand/src/lib.rs

/root/repo/target/debug/deps/librand-988341809a27c139.rmeta: third_party/rand/src/lib.rs

third_party/rand/src/lib.rs:
