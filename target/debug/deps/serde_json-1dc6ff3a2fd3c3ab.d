/root/repo/target/debug/deps/serde_json-1dc6ff3a2fd3c3ab.d: third_party/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-1dc6ff3a2fd3c3ab.rlib: third_party/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-1dc6ff3a2fd3c3ab.rmeta: third_party/serde_json/src/lib.rs

third_party/serde_json/src/lib.rs:
