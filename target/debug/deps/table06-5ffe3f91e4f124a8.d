/root/repo/target/debug/deps/table06-5ffe3f91e4f124a8.d: crates/bench/src/bin/table06.rs

/root/repo/target/debug/deps/table06-5ffe3f91e4f124a8: crates/bench/src/bin/table06.rs

crates/bench/src/bin/table06.rs:
