/root/repo/target/debug/deps/rmdb_machine-b3b2964516a54f13.d: crates/machine/src/lib.rs crates/machine/src/ablations.rs crates/machine/src/config.rs crates/machine/src/experiments.rs crates/machine/src/machine.rs crates/machine/src/report.rs crates/machine/src/workload.rs

/root/repo/target/debug/deps/librmdb_machine-b3b2964516a54f13.rlib: crates/machine/src/lib.rs crates/machine/src/ablations.rs crates/machine/src/config.rs crates/machine/src/experiments.rs crates/machine/src/machine.rs crates/machine/src/report.rs crates/machine/src/workload.rs

/root/repo/target/debug/deps/librmdb_machine-b3b2964516a54f13.rmeta: crates/machine/src/lib.rs crates/machine/src/ablations.rs crates/machine/src/config.rs crates/machine/src/experiments.rs crates/machine/src/machine.rs crates/machine/src/report.rs crates/machine/src/workload.rs

crates/machine/src/lib.rs:
crates/machine/src/ablations.rs:
crates/machine/src/config.rs:
crates/machine/src/experiments.rs:
crates/machine/src/machine.rs:
crates/machine/src/report.rs:
crates/machine/src/workload.rs:
