/root/repo/target/debug/deps/shadow_properties-b86fcdb081166846.d: tests/shadow_properties.rs Cargo.toml

/root/repo/target/debug/deps/libshadow_properties-b86fcdb081166846.rmeta: tests/shadow_properties.rs Cargo.toml

tests/shadow_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
