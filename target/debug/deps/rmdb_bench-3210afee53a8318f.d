/root/repo/target/debug/deps/rmdb_bench-3210afee53a8318f.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/librmdb_bench-3210afee53a8318f.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/librmdb_bench-3210afee53a8318f.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
