/root/repo/target/debug/deps/rmdb_wal-0c8cd9a55db460dc.d: crates/wal/src/lib.rs crates/wal/src/concurrent.rs crates/wal/src/db.rs crates/wal/src/lock.rs crates/wal/src/manager.rs crates/wal/src/record.rs crates/wal/src/recovery.rs crates/wal/src/scheduler.rs crates/wal/src/select.rs crates/wal/src/stream.rs

/root/repo/target/debug/deps/rmdb_wal-0c8cd9a55db460dc: crates/wal/src/lib.rs crates/wal/src/concurrent.rs crates/wal/src/db.rs crates/wal/src/lock.rs crates/wal/src/manager.rs crates/wal/src/record.rs crates/wal/src/recovery.rs crates/wal/src/scheduler.rs crates/wal/src/select.rs crates/wal/src/stream.rs

crates/wal/src/lib.rs:
crates/wal/src/concurrent.rs:
crates/wal/src/db.rs:
crates/wal/src/lock.rs:
crates/wal/src/manager.rs:
crates/wal/src/record.rs:
crates/wal/src/recovery.rs:
crates/wal/src/scheduler.rs:
crates/wal/src/select.rs:
crates/wal/src/stream.rs:
