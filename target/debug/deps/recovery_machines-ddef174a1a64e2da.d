/root/repo/target/debug/deps/recovery_machines-ddef174a1a64e2da.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librecovery_machines-ddef174a1a64e2da.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
