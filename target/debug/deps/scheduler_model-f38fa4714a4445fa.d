/root/repo/target/debug/deps/scheduler_model-f38fa4714a4445fa.d: crates/wal/tests/scheduler_model.rs

/root/repo/target/debug/deps/scheduler_model-f38fa4714a4445fa: crates/wal/tests/scheduler_model.rs

crates/wal/tests/scheduler_model.rs:
