/root/repo/target/debug/deps/recovery_machines-19dbe5c8bed9d0dc.d: src/lib.rs

/root/repo/target/debug/deps/recovery_machines-19dbe5c8bed9d0dc: src/lib.rs

src/lib.rs:
