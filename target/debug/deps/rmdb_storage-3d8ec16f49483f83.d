/root/repo/target/debug/deps/rmdb_storage-3d8ec16f49483f83.d: crates/storage/src/lib.rs crates/storage/src/buffer.rs crates/storage/src/error.rs crates/storage/src/fault.rs crates/storage/src/memdisk.rs crates/storage/src/page.rs

/root/repo/target/debug/deps/librmdb_storage-3d8ec16f49483f83.rlib: crates/storage/src/lib.rs crates/storage/src/buffer.rs crates/storage/src/error.rs crates/storage/src/fault.rs crates/storage/src/memdisk.rs crates/storage/src/page.rs

/root/repo/target/debug/deps/librmdb_storage-3d8ec16f49483f83.rmeta: crates/storage/src/lib.rs crates/storage/src/buffer.rs crates/storage/src/error.rs crates/storage/src/fault.rs crates/storage/src/memdisk.rs crates/storage/src/page.rs

crates/storage/src/lib.rs:
crates/storage/src/buffer.rs:
crates/storage/src/error.rs:
crates/storage/src/fault.rs:
crates/storage/src/memdisk.rs:
crates/storage/src/page.rs:
