/root/repo/target/debug/deps/rmdb_disk-522dbc39e6337c73.d: crates/disk/src/lib.rs crates/disk/src/disk.rs crates/disk/src/geometry.rs crates/disk/src/model.rs

/root/repo/target/debug/deps/librmdb_disk-522dbc39e6337c73.rlib: crates/disk/src/lib.rs crates/disk/src/disk.rs crates/disk/src/geometry.rs crates/disk/src/model.rs

/root/repo/target/debug/deps/librmdb_disk-522dbc39e6337c73.rmeta: crates/disk/src/lib.rs crates/disk/src/disk.rs crates/disk/src/geometry.rs crates/disk/src/model.rs

crates/disk/src/lib.rs:
crates/disk/src/disk.rs:
crates/disk/src/geometry.rs:
crates/disk/src/model.rs:
