/root/repo/target/debug/deps/rmdb_relation-09bdff48c5de652b.d: crates/relation/src/lib.rs crates/relation/src/btree.rs crates/relation/src/heap.rs crates/relation/src/query.rs

/root/repo/target/debug/deps/rmdb_relation-09bdff48c5de652b: crates/relation/src/lib.rs crates/relation/src/btree.rs crates/relation/src/heap.rs crates/relation/src/query.rs

crates/relation/src/lib.rs:
crates/relation/src/btree.rs:
crates/relation/src/heap.rs:
crates/relation/src/query.rs:
