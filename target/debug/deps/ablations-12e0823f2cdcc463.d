/root/repo/target/debug/deps/ablations-12e0823f2cdcc463.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-12e0823f2cdcc463: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
