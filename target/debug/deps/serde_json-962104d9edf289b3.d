/root/repo/target/debug/deps/serde_json-962104d9edf289b3.d: third_party/serde_json/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde_json-962104d9edf289b3.rmeta: third_party/serde_json/src/lib.rs Cargo.toml

third_party/serde_json/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
