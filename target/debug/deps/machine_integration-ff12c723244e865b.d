/root/repo/target/debug/deps/machine_integration-ff12c723244e865b.d: tests/machine_integration.rs

/root/repo/target/debug/deps/machine_integration-ff12c723244e865b: tests/machine_integration.rs

tests/machine_integration.rs:
