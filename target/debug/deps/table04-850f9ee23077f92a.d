/root/repo/target/debug/deps/table04-850f9ee23077f92a.d: crates/bench/src/bin/table04.rs

/root/repo/target/debug/deps/table04-850f9ee23077f92a: crates/bench/src/bin/table04.rs

crates/bench/src/bin/table04.rs:
