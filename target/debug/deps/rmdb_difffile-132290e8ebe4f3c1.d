/root/repo/target/debug/deps/rmdb_difffile-132290e8ebe4f3c1.d: crates/difffile/src/lib.rs crates/difffile/src/db.rs crates/difffile/src/ops.rs crates/difffile/src/tuple.rs Cargo.toml

/root/repo/target/debug/deps/librmdb_difffile-132290e8ebe4f3c1.rmeta: crates/difffile/src/lib.rs crates/difffile/src/db.rs crates/difffile/src/ops.rs crates/difffile/src/tuple.rs Cargo.toml

crates/difffile/src/lib.rs:
crates/difffile/src/db.rs:
crates/difffile/src/ops.rs:
crates/difffile/src/tuple.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
