/root/repo/target/debug/deps/wal_properties-76dd5e99b7cbb676.d: tests/wal_properties.rs

/root/repo/target/debug/deps/wal_properties-76dd5e99b7cbb676: tests/wal_properties.rs

tests/wal_properties.rs:
