/root/repo/target/debug/deps/serde_json-b09547d8adaa3612.d: third_party/serde_json/src/lib.rs

/root/repo/target/debug/deps/serde_json-b09547d8adaa3612: third_party/serde_json/src/lib.rs

third_party/serde_json/src/lib.rs:
