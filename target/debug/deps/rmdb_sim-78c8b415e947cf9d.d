/root/repo/target/debug/deps/rmdb_sim-78c8b415e947cf9d.d: crates/sim/src/lib.rs crates/sim/src/calendar.rs crates/sim/src/resource.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs Cargo.toml

/root/repo/target/debug/deps/librmdb_sim-78c8b415e947cf9d.rmeta: crates/sim/src/lib.rs crates/sim/src/calendar.rs crates/sim/src/resource.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/calendar.rs:
crates/sim/src/resource.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
