/root/repo/target/debug/deps/serde-522279c6160c8461.d: third_party/serde/src/lib.rs third_party/serde/src/__private.rs

/root/repo/target/debug/deps/libserde-522279c6160c8461.rlib: third_party/serde/src/lib.rs third_party/serde/src/__private.rs

/root/repo/target/debug/deps/libserde-522279c6160c8461.rmeta: third_party/serde/src/lib.rs third_party/serde/src/__private.rs

third_party/serde/src/lib.rs:
third_party/serde/src/__private.rs:
