/root/repo/target/debug/deps/difffile_properties-94d31b11f6b02c41.d: tests/difffile_properties.rs

/root/repo/target/debug/deps/difffile_properties-94d31b11f6b02c41: tests/difffile_properties.rs

tests/difffile_properties.rs:
