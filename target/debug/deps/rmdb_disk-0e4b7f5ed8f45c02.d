/root/repo/target/debug/deps/rmdb_disk-0e4b7f5ed8f45c02.d: crates/disk/src/lib.rs crates/disk/src/disk.rs crates/disk/src/geometry.rs crates/disk/src/model.rs Cargo.toml

/root/repo/target/debug/deps/librmdb_disk-0e4b7f5ed8f45c02.rmeta: crates/disk/src/lib.rs crates/disk/src/disk.rs crates/disk/src/geometry.rs crates/disk/src/model.rs Cargo.toml

crates/disk/src/lib.rs:
crates/disk/src/disk.rs:
crates/disk/src/geometry.rs:
crates/disk/src/model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
