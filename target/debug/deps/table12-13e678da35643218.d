/root/repo/target/debug/deps/table12-13e678da35643218.d: crates/bench/src/bin/table12.rs

/root/repo/target/debug/deps/table12-13e678da35643218: crates/bench/src/bin/table12.rs

crates/bench/src/bin/table12.rs:
