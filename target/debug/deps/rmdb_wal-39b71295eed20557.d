/root/repo/target/debug/deps/rmdb_wal-39b71295eed20557.d: crates/wal/src/lib.rs crates/wal/src/concurrent.rs crates/wal/src/db.rs crates/wal/src/lock.rs crates/wal/src/manager.rs crates/wal/src/record.rs crates/wal/src/recovery.rs crates/wal/src/scheduler.rs crates/wal/src/select.rs crates/wal/src/stream.rs Cargo.toml

/root/repo/target/debug/deps/librmdb_wal-39b71295eed20557.rmeta: crates/wal/src/lib.rs crates/wal/src/concurrent.rs crates/wal/src/db.rs crates/wal/src/lock.rs crates/wal/src/manager.rs crates/wal/src/record.rs crates/wal/src/recovery.rs crates/wal/src/scheduler.rs crates/wal/src/select.rs crates/wal/src/stream.rs Cargo.toml

crates/wal/src/lib.rs:
crates/wal/src/concurrent.rs:
crates/wal/src/db.rs:
crates/wal/src/lock.rs:
crates/wal/src/manager.rs:
crates/wal/src/record.rs:
crates/wal/src/recovery.rs:
crates/wal/src/scheduler.rs:
crates/wal/src/select.rs:
crates/wal/src/stream.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
