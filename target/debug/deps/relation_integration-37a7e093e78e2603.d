/root/repo/target/debug/deps/relation_integration-37a7e093e78e2603.d: tests/relation_integration.rs Cargo.toml

/root/repo/target/debug/deps/librelation_integration-37a7e093e78e2603.rmeta: tests/relation_integration.rs Cargo.toml

tests/relation_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
