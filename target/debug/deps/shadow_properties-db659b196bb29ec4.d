/root/repo/target/debug/deps/shadow_properties-db659b196bb29ec4.d: tests/shadow_properties.rs

/root/repo/target/debug/deps/shadow_properties-db659b196bb29ec4: tests/shadow_properties.rs

tests/shadow_properties.rs:
