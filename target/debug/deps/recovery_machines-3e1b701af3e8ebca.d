/root/repo/target/debug/deps/recovery_machines-3e1b701af3e8ebca.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librecovery_machines-3e1b701af3e8ebca.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
