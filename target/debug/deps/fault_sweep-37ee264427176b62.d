/root/repo/target/debug/deps/fault_sweep-37ee264427176b62.d: tests/fault_sweep.rs

/root/repo/target/debug/deps/fault_sweep-37ee264427176b62: tests/fault_sweep.rs

tests/fault_sweep.rs:
