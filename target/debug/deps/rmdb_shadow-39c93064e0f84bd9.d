/root/repo/target/debug/deps/rmdb_shadow-39c93064e0f84bd9.d: crates/shadow/src/lib.rs crates/shadow/src/overwrite.rs crates/shadow/src/pagetable.rs crates/shadow/src/scratch.rs crates/shadow/src/version.rs

/root/repo/target/debug/deps/rmdb_shadow-39c93064e0f84bd9: crates/shadow/src/lib.rs crates/shadow/src/overwrite.rs crates/shadow/src/pagetable.rs crates/shadow/src/scratch.rs crates/shadow/src/version.rs

crates/shadow/src/lib.rs:
crates/shadow/src/overwrite.rs:
crates/shadow/src/pagetable.rs:
crates/shadow/src/scratch.rs:
crates/shadow/src/version.rs:
