/root/repo/target/debug/deps/serde_derive-1c180c7dd28a4184.d: third_party/serde_derive/src/lib.rs

/root/repo/target/debug/deps/serde_derive-1c180c7dd28a4184: third_party/serde_derive/src/lib.rs

third_party/serde_derive/src/lib.rs:
