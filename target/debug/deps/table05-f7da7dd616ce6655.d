/root/repo/target/debug/deps/table05-f7da7dd616ce6655.d: crates/bench/src/bin/table05.rs

/root/repo/target/debug/deps/table05-f7da7dd616ce6655: crates/bench/src/bin/table05.rs

crates/bench/src/bin/table05.rs:
