/root/repo/target/debug/deps/table08-e4837f5fb2269125.d: crates/bench/src/bin/table08.rs

/root/repo/target/debug/deps/table08-e4837f5fb2269125: crates/bench/src/bin/table08.rs

crates/bench/src/bin/table08.rs:
