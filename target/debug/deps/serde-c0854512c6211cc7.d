/root/repo/target/debug/deps/serde-c0854512c6211cc7.d: third_party/serde/src/lib.rs third_party/serde/src/__private.rs Cargo.toml

/root/repo/target/debug/deps/libserde-c0854512c6211cc7.rmeta: third_party/serde/src/lib.rs third_party/serde/src/__private.rs Cargo.toml

third_party/serde/src/lib.rs:
third_party/serde/src/__private.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
