/root/repo/target/debug/deps/rmdb_core-165da9754abbcec3.d: crates/core/src/lib.rs crates/core/src/export.rs crates/core/src/store.rs

/root/repo/target/debug/deps/librmdb_core-165da9754abbcec3.rlib: crates/core/src/lib.rs crates/core/src/export.rs crates/core/src/store.rs

/root/repo/target/debug/deps/librmdb_core-165da9754abbcec3.rmeta: crates/core/src/lib.rs crates/core/src/export.rs crates/core/src/store.rs

crates/core/src/lib.rs:
crates/core/src/export.rs:
crates/core/src/store.rs:
