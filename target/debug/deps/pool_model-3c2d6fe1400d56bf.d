/root/repo/target/debug/deps/pool_model-3c2d6fe1400d56bf.d: crates/storage/tests/pool_model.rs

/root/repo/target/debug/deps/pool_model-3c2d6fe1400d56bf: crates/storage/tests/pool_model.rs

crates/storage/tests/pool_model.rs:
