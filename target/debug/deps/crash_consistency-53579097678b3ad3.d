/root/repo/target/debug/deps/crash_consistency-53579097678b3ad3.d: tests/crash_consistency.rs

/root/repo/target/debug/deps/crash_consistency-53579097678b3ad3: tests/crash_consistency.rs

tests/crash_consistency.rs:
