/root/repo/target/debug/deps/rmdb_shadow-312617bd1fd78081.d: crates/shadow/src/lib.rs crates/shadow/src/overwrite.rs crates/shadow/src/pagetable.rs crates/shadow/src/scratch.rs crates/shadow/src/version.rs

/root/repo/target/debug/deps/librmdb_shadow-312617bd1fd78081.rlib: crates/shadow/src/lib.rs crates/shadow/src/overwrite.rs crates/shadow/src/pagetable.rs crates/shadow/src/scratch.rs crates/shadow/src/version.rs

/root/repo/target/debug/deps/librmdb_shadow-312617bd1fd78081.rmeta: crates/shadow/src/lib.rs crates/shadow/src/overwrite.rs crates/shadow/src/pagetable.rs crates/shadow/src/scratch.rs crates/shadow/src/version.rs

crates/shadow/src/lib.rs:
crates/shadow/src/overwrite.rs:
crates/shadow/src/pagetable.rs:
crates/shadow/src/scratch.rs:
crates/shadow/src/version.rs:
