/root/repo/target/debug/deps/rmdb_difffile-7d65f47c7b5062f5.d: crates/difffile/src/lib.rs crates/difffile/src/db.rs crates/difffile/src/ops.rs crates/difffile/src/tuple.rs

/root/repo/target/debug/deps/librmdb_difffile-7d65f47c7b5062f5.rlib: crates/difffile/src/lib.rs crates/difffile/src/db.rs crates/difffile/src/ops.rs crates/difffile/src/tuple.rs

/root/repo/target/debug/deps/librmdb_difffile-7d65f47c7b5062f5.rmeta: crates/difffile/src/lib.rs crates/difffile/src/db.rs crates/difffile/src/ops.rs crates/difffile/src/tuple.rs

crates/difffile/src/lib.rs:
crates/difffile/src/db.rs:
crates/difffile/src/ops.rs:
crates/difffile/src/tuple.rs:
