/root/repo/target/debug/deps/table01-86de556488aa9ff5.d: crates/bench/src/bin/table01.rs

/root/repo/target/debug/deps/table01-86de556488aa9ff5: crates/bench/src/bin/table01.rs

crates/bench/src/bin/table01.rs:
