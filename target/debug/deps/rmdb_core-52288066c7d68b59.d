/root/repo/target/debug/deps/rmdb_core-52288066c7d68b59.d: crates/core/src/lib.rs crates/core/src/export.rs crates/core/src/store.rs

/root/repo/target/debug/deps/rmdb_core-52288066c7d68b59: crates/core/src/lib.rs crates/core/src/export.rs crates/core/src/store.rs

crates/core/src/lib.rs:
crates/core/src/export.rs:
crates/core/src/store.rs:
