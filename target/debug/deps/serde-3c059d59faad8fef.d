/root/repo/target/debug/deps/serde-3c059d59faad8fef.d: third_party/serde/src/lib.rs third_party/serde/src/__private.rs

/root/repo/target/debug/deps/serde-3c059d59faad8fef: third_party/serde/src/lib.rs third_party/serde/src/__private.rs

third_party/serde/src/lib.rs:
third_party/serde/src/__private.rs:
