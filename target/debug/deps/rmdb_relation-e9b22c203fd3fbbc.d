/root/repo/target/debug/deps/rmdb_relation-e9b22c203fd3fbbc.d: crates/relation/src/lib.rs crates/relation/src/btree.rs crates/relation/src/heap.rs crates/relation/src/query.rs

/root/repo/target/debug/deps/librmdb_relation-e9b22c203fd3fbbc.rlib: crates/relation/src/lib.rs crates/relation/src/btree.rs crates/relation/src/heap.rs crates/relation/src/query.rs

/root/repo/target/debug/deps/librmdb_relation-e9b22c203fd3fbbc.rmeta: crates/relation/src/lib.rs crates/relation/src/btree.rs crates/relation/src/heap.rs crates/relation/src/query.rs

crates/relation/src/lib.rs:
crates/relation/src/btree.rs:
crates/relation/src/heap.rs:
crates/relation/src/query.rs:
