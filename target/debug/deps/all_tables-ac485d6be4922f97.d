/root/repo/target/debug/deps/all_tables-ac485d6be4922f97.d: crates/bench/src/bin/all_tables.rs

/root/repo/target/debug/deps/all_tables-ac485d6be4922f97: crates/bench/src/bin/all_tables.rs

crates/bench/src/bin/all_tables.rs:
