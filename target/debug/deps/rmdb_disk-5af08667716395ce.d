/root/repo/target/debug/deps/rmdb_disk-5af08667716395ce.d: crates/disk/src/lib.rs crates/disk/src/disk.rs crates/disk/src/geometry.rs crates/disk/src/model.rs

/root/repo/target/debug/deps/rmdb_disk-5af08667716395ce: crates/disk/src/lib.rs crates/disk/src/disk.rs crates/disk/src/geometry.rs crates/disk/src/model.rs

crates/disk/src/lib.rs:
crates/disk/src/disk.rs:
crates/disk/src/geometry.rs:
crates/disk/src/model.rs:
