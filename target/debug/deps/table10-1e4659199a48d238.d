/root/repo/target/debug/deps/table10-1e4659199a48d238.d: crates/bench/src/bin/table10.rs

/root/repo/target/debug/deps/table10-1e4659199a48d238: crates/bench/src/bin/table10.rs

crates/bench/src/bin/table10.rs:
