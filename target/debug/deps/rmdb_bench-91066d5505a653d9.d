/root/repo/target/debug/deps/rmdb_bench-91066d5505a653d9.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/rmdb_bench-91066d5505a653d9: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
