/root/repo/target/debug/deps/rmdb_difffile-47ae445400d31dfa.d: crates/difffile/src/lib.rs crates/difffile/src/db.rs crates/difffile/src/ops.rs crates/difffile/src/tuple.rs

/root/repo/target/debug/deps/rmdb_difffile-47ae445400d31dfa: crates/difffile/src/lib.rs crates/difffile/src/db.rs crates/difffile/src/ops.rs crates/difffile/src/tuple.rs

crates/difffile/src/lib.rs:
crates/difffile/src/db.rs:
crates/difffile/src/ops.rs:
crates/difffile/src/tuple.rs:
