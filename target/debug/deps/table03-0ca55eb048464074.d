/root/repo/target/debug/deps/table03-0ca55eb048464074.d: crates/bench/src/bin/table03.rs

/root/repo/target/debug/deps/table03-0ca55eb048464074: crates/bench/src/bin/table03.rs

crates/bench/src/bin/table03.rs:
