//! Observability for the recovery-machine pipeline: metrics + events.
//!
//! The commit/recovery pipeline is a bank of real threads (log-processor
//! appenders, the group-commit daemon, restart redo workers). Answering
//! "where did this commit's latency go?" or "what did recovery actually
//! replay?" needs two complementary instruments, both cheap enough to
//! leave on in the hot path:
//!
//! * a [`Registry`] of named **metrics** — monotonic [`Counter`]s,
//!   last-value [`Gauge`]s, and fixed-bucket [`Histogram`]s whose
//!   snapshots expose p50/p95/p99 estimates bounded by their bucket —
//!   every handle a couple of relaxed atomic ops to update;
//! * a bounded, lock-free **[`EventRing`]** of sequence-numbered
//!   structured [`Event`]s (`ts_us`, kind, txn/stream/page ids, payload)
//!   for the "what happened just before X" questions a counter cannot
//!   answer. Writers never block on readers; a snapshot never yields a
//!   torn or duplicate-sequence event.
//!
//! [`Registry::snapshot`] freezes everything into a [`MetricsSnapshot`]
//! with text ([`std::fmt::Display`]) and JSON
//! ([`MetricsSnapshot::to_json`]) exporters, so benches can persist named
//! metrics next to their throughput numbers and tests can phrase
//! conservation laws (`commits_acked == group_commit_completions`) as
//! assertions over two independently incremented counters.
//!
//! # Example
//!
//! ```
//! use rmdb_obs::{EventKind, Registry};
//!
//! let obs = Registry::new();
//! let commits = obs.counter("txn.commits_acked");
//! let latency = obs.histogram("txn.commit_us");
//!
//! commits.inc();
//! latency.record(180);
//! obs.emit(EventKind::TxnCommit, 7, 0, 0, 180);
//!
//! let snap = obs.snapshot();
//! assert_eq!(snap.counter("txn.commits_acked"), Some(1));
//! assert!(snap.histogram("txn.commit_us").unwrap().quantile(0.5) >= 180);
//! assert_eq!(obs.events().snapshot().len(), 1);
//! ```

pub mod event;
pub mod registry;

pub use event::{Event, EventKind, EventRing};
pub use registry::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry, BUCKET_BOUNDS,
};
