//! The structured-event half of the observability crate: a bounded,
//! lock-free, multi-writer ring of sequence-numbered events.
//!
//! Design: a seqlock per slot. Each slot carries a `stamp: AtomicU64`
//! alongside the event fields. A writer takes a global ticket `t`
//! (`fetch_add`, so tickets are unique and dense), maps it to slot
//! `t % capacity`, and publishes in three steps:
//!
//! 1. CAS the slot stamp from its current value to the *odd* value
//!    `2t - 1` (with `t` one-based this is always > any stamp a
//!    previous occupant left) — but **only if the current stamp is
//!    even**. An even stamp means the slot is stable, so the claim
//!    takes exclusive ownership. An odd stamp means another writer is
//!    mid-publish in this slot; claiming it would let two writers
//!    interleave field stores and publish a torn event, so the
//!    newcomer drops its event instead (counted in `dropped`). A
//!    stamp ≥ our claim means a later-lap writer already owns the
//!    slot — we are lapped and likewise drop (the ring keeps the
//!    newest events a flight recorder can publish without blocking).
//! 2. Write the event fields with `Relaxed` stores.
//! 3. Publish by CASing the stamp from `2t - 1` to the even `2t`
//!    (`Release`). Because step 1 never claims an odd stamp, no other
//!    writer can have touched the slot while we held it, so this CAS
//!    cannot fail; it is a CAS rather than a blind store purely as a
//!    guard — a failure (protocol bug) counts the event as dropped
//!    instead of publishing a potentially torn slot.
//!
//! A reader snapshots a slot with the mirror-image protocol: load the
//! stamp (`Acquire`), read the fields (`Relaxed`), `fence(Acquire)`,
//! re-load the stamp (`Relaxed`), and accepts the event only if both
//! loads saw the same *even* value. The stamp encodes the sequence
//! number (`seq = stamp / 2 - 1`), so an accepted event is untorn and
//! its sequence is unique by construction — ticket `t` maps to exactly
//! one slot and exactly one stamp value.

use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::time::Instant;

/// What happened. `repr(u16)` so events pack into fixed-size slots.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum EventKind {
    /// A transaction's commit record became durable (payload: e2e µs).
    TxnCommit = 1,
    /// A transaction hit a lock conflict and will retry after backing
    /// off (payload: backoff delay in µs).
    TxnConflictRetry = 2,
    /// A transaction aborted (payload: attempts used).
    TxnAbort = 3,
    /// A transaction exhausted its retry budget (payload: attempts).
    TxnStarved = 4,
    /// A log stream forced its tail to disk (payload: force latency µs).
    StreamForce = 5,
    /// The group-commit daemon flushed a batch (payload: batch size).
    GroupCommitBatch = 6,
    /// The buffer pool evicted a page (page id set).
    PoolEviction = 7,
    /// A recovery/restart phase finished (stream field: phase ordinal,
    /// payload: wall-clock µs).
    RecoveryPhase = 8,
    /// A checkpoint or crash image was taken (payload: pages captured).
    Checkpoint = 9,
    /// The supervisor began handling a suspected appender failure
    /// (stream field: stream ordinal, payload: failure-class ordinal).
    FailoverStarted = 10,
    /// A log stream was quarantined — no new fragments will be routed
    /// to it (stream field: stream ordinal, payload: surviving streams).
    StreamQuarantined = 11,
    /// An in-flight fragment was rerouted from a quarantined stream to
    /// a survivor (stream field: new stream, payload: old stream).
    FragmentRerouted = 12,
    /// A quarantined log stream was readmitted to the fleet after its
    /// device recovered and its durable prefix revalidated (stream field:
    /// stream ordinal, payload: live streams after the rejoin).
    StreamRejoined = 13,
    /// The membership manager resized the serving fleet — a stream was
    /// parked or unparked for load (stream field: stream ordinal,
    /// payload: live streams after the resize).
    FleetResized = 14,
    /// A read-only transaction opened an MVCC snapshot (txn field: txn
    /// id, stream field: home queue processor, payload: snapshot LSN).
    SnapshotOpened = 15,
    /// The MVCC garbage collector reclaimed dead page versions below the
    /// snapshot watermark (payload: versions reclaimed).
    VersionsPruned = 16,
    /// The dependency-aware replay scheduler finished its redo pass
    /// (stream field: worker count, page field: DAG nodes, payload:
    /// wall-clock µs).
    ReplayPhase = 17,
    /// The LSM tier began a flush or compaction (stream field: target
    /// level, page field: input runs, payload: input frames).
    CompactionStarted = 18,
    /// The LSM flush/compaction published its manifest and retired its
    /// inputs (stream field: target level, page field: output frames,
    /// payload: wall-clock µs).
    CompactionFinished = 19,
    /// The LSM flush/compaction aborted — device fault or injected crash
    /// mid-merge; the orphaned output is GC'd by recovery (stream field:
    /// target level, payload: frames written before the abort).
    CompactionAborted = 20,
    /// Catch-all for unrecognised kinds decoded from raw slots.
    Unknown = 0,
}

impl EventKind {
    /// Decode from the raw slot representation.
    pub fn from_u16(v: u16) -> EventKind {
        match v {
            1 => EventKind::TxnCommit,
            2 => EventKind::TxnConflictRetry,
            3 => EventKind::TxnAbort,
            4 => EventKind::TxnStarved,
            5 => EventKind::StreamForce,
            6 => EventKind::GroupCommitBatch,
            7 => EventKind::PoolEviction,
            8 => EventKind::RecoveryPhase,
            9 => EventKind::Checkpoint,
            10 => EventKind::FailoverStarted,
            11 => EventKind::StreamQuarantined,
            12 => EventKind::FragmentRerouted,
            13 => EventKind::StreamRejoined,
            14 => EventKind::FleetResized,
            15 => EventKind::SnapshotOpened,
            16 => EventKind::VersionsPruned,
            17 => EventKind::ReplayPhase,
            18 => EventKind::CompactionStarted,
            19 => EventKind::CompactionFinished,
            20 => EventKind::CompactionAborted,
            _ => EventKind::Unknown,
        }
    }

    /// Stable lowercase name for exporters.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::TxnCommit => "txn_commit",
            EventKind::TxnConflictRetry => "txn_conflict_retry",
            EventKind::TxnAbort => "txn_abort",
            EventKind::TxnStarved => "txn_starved",
            EventKind::StreamForce => "stream_force",
            EventKind::GroupCommitBatch => "group_commit_batch",
            EventKind::PoolEviction => "pool_eviction",
            EventKind::RecoveryPhase => "recovery_phase",
            EventKind::Checkpoint => "checkpoint",
            EventKind::FailoverStarted => "failover_started",
            EventKind::StreamQuarantined => "stream_quarantined",
            EventKind::FragmentRerouted => "fragment_rerouted",
            EventKind::StreamRejoined => "stream_rejoined",
            EventKind::FleetResized => "fleet_resized",
            EventKind::SnapshotOpened => "snapshot_opened",
            EventKind::VersionsPruned => "versions_pruned",
            EventKind::ReplayPhase => "replay_phase",
            EventKind::CompactionStarted => "compaction_started",
            EventKind::CompactionFinished => "compaction_finished",
            EventKind::CompactionAborted => "compaction_aborted",
            EventKind::Unknown => "unknown",
        }
    }
}

/// One recorded event, as returned by [`EventRing::snapshot`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Ring-wide sequence number (dense tickets; gaps in a snapshot mean
    /// older events were overwritten, never that a seq was issued twice).
    pub seq: u64,
    /// Microseconds since the ring was created.
    pub ts_us: u64,
    /// What happened.
    pub kind: EventKind,
    /// Transaction id, or 0.
    pub txn: u64,
    /// Stream / shard / phase ordinal, or 0.
    pub stream: u64,
    /// Page id, or 0.
    pub page: u64,
    /// Kind-specific payload (latency µs, batch size, attempts, …).
    pub payload: u64,
}

/// One ring slot: a seqlock stamp plus the event fields.
#[derive(Debug)]
struct Slot {
    /// 0 = empty; odd `2t-1` = writer `t` mid-publish; even `2t` =
    /// event with ticket `t` fully published.
    stamp: AtomicU64,
    ts_us: AtomicU64,
    kind: AtomicU64,
    txn: AtomicU64,
    stream: AtomicU64,
    page: AtomicU64,
    payload: AtomicU64,
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            stamp: AtomicU64::new(0),
            ts_us: AtomicU64::new(0),
            kind: AtomicU64::new(0),
            txn: AtomicU64::new(0),
            stream: AtomicU64::new(0),
            page: AtomicU64::new(0),
            payload: AtomicU64::new(0),
        }
    }
}

/// A bounded, lock-free, multi-writer structured-event ring.
///
/// Writers never block; when the ring is full they overwrite the oldest
/// slot, and a writer that gets lapped mid-claim drops its event rather
/// than stall. See the module docs for the memory-ordering protocol.
#[derive(Debug)]
pub struct EventRing {
    slots: Box<[Slot]>,
    /// Next ticket, one-based; `fetch_add` makes tickets unique.
    next: AtomicU64,
    /// Events dropped because the writer was lapped mid-claim or found
    /// its slot held by a mid-publish writer.
    dropped: AtomicU64,
    epoch: Instant,
}

impl EventRing {
    /// A ring holding the most recent `capacity` events (min 1).
    pub fn new(capacity: usize) -> EventRing {
        let capacity = capacity.max(1);
        EventRing {
            slots: (0..capacity).map(|_| Slot::empty()).collect(),
            next: AtomicU64::new(1),
            dropped: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }

    /// Slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Tickets issued so far (= events emitted, including dropped ones).
    pub fn emitted(&self) -> u64 {
        self.next.load(Ordering::Relaxed) - 1
    }

    /// Events abandoned because the writer was lapped mid-claim or its
    /// slot was held by another writer mid-publish. Always
    /// `emitted() == published + dropped()`.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Record an event; returns its sequence number (0-based). Never
    /// blocks; may silently overwrite the oldest event.
    pub fn emit(&self, kind: EventKind, txn: u64, stream: u64, page: u64, payload: u64) -> u64 {
        let ts_us = self.epoch.elapsed().as_micros().min(u64::MAX as u128) as u64;
        let ticket = self.next.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket as usize - 1) % self.slots.len()];
        let claim = 2 * ticket - 1;
        // Claim: flip the slot from a *stable* (even) stamp to our odd
        // stamp. Drop if a later-lap writer beat us to it (their stamp
        // is ≥ ours — we are lapped) or if the slot is odd (another
        // writer is mid-publish; stealing it would tear their event).
        let mut cur = slot.stamp.load(Ordering::Relaxed);
        loop {
            if cur >= claim || cur % 2 == 1 {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return ticket - 1;
            }
            match slot
                .stamp
                .compare_exchange_weak(cur, claim, Ordering::Acquire, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        slot.ts_us.store(ts_us, Ordering::Relaxed);
        slot.kind.store(kind as u16 as u64, Ordering::Relaxed);
        slot.txn.store(txn, Ordering::Relaxed);
        slot.stream.store(stream, Ordering::Relaxed);
        slot.page.store(page, Ordering::Relaxed);
        slot.payload.store(payload, Ordering::Relaxed);
        // Cannot fail (only we hold the odd stamp); guards the torn-event
        // invariant if the protocol is ever broken — see module docs.
        if slot
            .stamp
            .compare_exchange(claim, 2 * ticket, Ordering::Release, Ordering::Relaxed)
            .is_err()
        {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ticket - 1
    }

    /// Snapshot the ring's stable events, oldest first. Slots mid-write
    /// at snapshot time are skipped (never returned torn); sequence
    /// numbers in the result are strictly increasing.
    pub fn snapshot(&self) -> Vec<Event> {
        let mut out: Vec<Event> = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let s1 = slot.stamp.load(Ordering::Acquire);
            if s1 == 0 || s1 % 2 == 1 {
                continue; // empty or mid-publish
            }
            let ts_us = slot.ts_us.load(Ordering::Relaxed);
            let kind = slot.kind.load(Ordering::Relaxed);
            let txn = slot.txn.load(Ordering::Relaxed);
            let stream = slot.stream.load(Ordering::Relaxed);
            let page = slot.page.load(Ordering::Relaxed);
            let payload = slot.payload.load(Ordering::Relaxed);
            fence(Ordering::Acquire);
            let s2 = slot.stamp.load(Ordering::Relaxed);
            if s1 != s2 {
                continue; // overwritten while reading — torn, skip
            }
            out.push(Event {
                seq: s1 / 2 - 1,
                ts_us,
                kind: EventKind::from_u16(kind as u16),
                txn,
                stream,
                page,
                payload,
            });
        }
        out.sort_by_key(|e| e.seq);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn emit_then_snapshot_roundtrips_fields() {
        let ring = EventRing::new(8);
        let seq = ring.emit(EventKind::StreamForce, 1, 2, 3, 450);
        assert_eq!(seq, 0);
        let events = ring.snapshot();
        assert_eq!(events.len(), 1);
        let e = events[0];
        assert_eq!(e.seq, 0);
        assert_eq!(e.kind, EventKind::StreamForce);
        assert_eq!((e.txn, e.stream, e.page, e.payload), (1, 2, 3, 450));
    }

    #[test]
    fn ring_keeps_the_newest_events_when_full() {
        let ring = EventRing::new(4);
        for i in 0..10u64 {
            ring.emit(EventKind::TxnCommit, i, 0, 0, 0);
        }
        let events = ring.snapshot();
        assert_eq!(events.len(), 4);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        assert_eq!(ring.emitted(), 10);
    }

    #[test]
    fn snapshot_seqs_strictly_increase_under_contention() {
        let ring = Arc::new(EventRing::new(64));
        let writers: Vec<_> = (0..4)
            .map(|w| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        ring.emit(EventKind::TxnCommit, w, i, 0, 0);
                    }
                })
            })
            .collect();
        // snapshot concurrently with the writers
        for _ in 0..200 {
            let events = ring.snapshot();
            for pair in events.windows(2) {
                assert!(pair[0].seq < pair[1].seq, "duplicate or unsorted seq");
            }
        }
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(ring.emitted(), 8_000);
        assert_eq!(ring.snapshot().len(), 64);
    }

    #[test]
    fn kind_codes_roundtrip() {
        for kind in [
            EventKind::TxnCommit,
            EventKind::TxnConflictRetry,
            EventKind::TxnAbort,
            EventKind::TxnStarved,
            EventKind::StreamForce,
            EventKind::GroupCommitBatch,
            EventKind::PoolEviction,
            EventKind::RecoveryPhase,
            EventKind::Checkpoint,
            EventKind::FailoverStarted,
            EventKind::StreamQuarantined,
            EventKind::FragmentRerouted,
            EventKind::StreamRejoined,
            EventKind::FleetResized,
            EventKind::SnapshotOpened,
            EventKind::VersionsPruned,
            EventKind::ReplayPhase,
        ] {
            assert_eq!(EventKind::from_u16(kind as u16), kind);
            assert!(!kind.name().is_empty());
        }
        assert_eq!(EventKind::from_u16(999), EventKind::Unknown);
    }

    #[test]
    fn timestamps_are_monotone_per_writer() {
        let ring = EventRing::new(16);
        ring.emit(EventKind::Checkpoint, 0, 0, 0, 0);
        std::thread::sleep(std::time::Duration::from_millis(2));
        ring.emit(EventKind::Checkpoint, 0, 0, 0, 0);
        let events = ring.snapshot();
        assert!(events[0].ts_us <= events[1].ts_us);
    }
}
