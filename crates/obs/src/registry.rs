//! The metrics half of the observability crate: named counters, gauges
//! and fixed-bucket histograms behind cheap cloneable handles, plus the
//! snapshot/export machinery.
//!
//! Handles are `Arc`s onto plain atomics: updating a metric is one or two
//! relaxed atomic RMWs, no locking, so the hot paths (per-fragment
//! append, per-force latency) can record unconditionally. The registry
//! mutex is touched only at registration and snapshot time.

use crate::event::{Event, EventKind, EventRing};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Histogram bucket upper bounds (inclusive), in the recorded unit
/// (microseconds for every latency histogram in this workspace):
/// powers of two from 1 µs to ~8.4 s, plus a catch-all overflow bucket.
pub const BUCKET_BOUNDS: [u64; 25] = [
    1,
    2,
    4,
    8,
    16,
    32,
    64,
    128,
    256,
    512,
    1 << 10,
    1 << 11,
    1 << 12,
    1 << 13,
    1 << 14,
    1 << 15,
    1 << 16,
    1 << 17,
    1 << 18,
    1 << 19,
    1 << 20,
    1 << 21,
    1 << 22,
    1 << 23,
    u64::MAX,
];

const N_BUCKETS: usize = BUCKET_BOUNDS.len();

/// A monotonic counter handle.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A last-value gauge handle.
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// Overwrite the value.
    pub fn set(&self, v: u64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Shared histogram state: per-bucket counts plus count/sum/min/max.
#[derive(Debug)]
struct HistCore {
    buckets: [AtomicU64; N_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for HistCore {
    fn default() -> Self {
        HistCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// A fixed-bucket histogram handle (record in µs for latencies).
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    core: Arc<HistCore>,
}

impl Histogram {
    /// Record one sample.
    pub fn record(&self, v: u64) {
        let idx = BUCKET_BOUNDS.partition_point(|&b| b < v);
        self.core.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.core.count.fetch_add(1, Ordering::Relaxed);
        self.core.sum.fetch_add(v, Ordering::Relaxed);
        self.core.min.fetch_min(v, Ordering::Relaxed);
        self.core.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a duration as whole microseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }

    /// Freeze the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .core
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            counts,
            count: self.core.count.load(Ordering::Relaxed),
            sum: self.core.sum.load(Ordering::Relaxed),
            min: self.core.min.load(Ordering::Relaxed),
            max: self.core.max.load(Ordering::Relaxed),
        }
    }
}

/// A frozen histogram: bucket counts plus derived percentile estimates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples per bucket, aligned with [`BUCKET_BOUNDS`].
    pub counts: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample seen (`u64::MAX` when empty).
    pub min: u64,
    /// Largest sample seen (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Estimate the `q`-quantile (`0.0 < q <= 1.0`): the upper bound of
    /// the bucket holding the rank-`ceil(q·count)` sample, clamped to the
    /// observed `max`. The estimate is always within the bounds of the
    /// bucket that contains the true quantile sample.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return BUCKET_BOUNDS[i].min(self.max);
            }
        }
        self.max
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Every metric handle ever issued, keyed by name.
#[derive(Default)]
struct Metrics {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

struct Inner {
    metrics: Mutex<Metrics>,
    events: EventRing,
}

/// The metrics registry: hands out named metric handles and snapshots
/// them all at once. Cloning is cheap (`Arc`); all clones share state.
#[derive(Clone)]
pub struct Registry {
    inner: Arc<Inner>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("events_capacity", &self.inner.events.capacity())
            .finish()
    }
}

/// Default bounded event-ring capacity.
pub const DEFAULT_EVENT_CAPACITY: usize = 4096;

impl Registry {
    /// A registry with the default event-ring capacity.
    pub fn new() -> Self {
        Registry::with_event_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// A registry whose event ring holds the last `capacity` events.
    pub fn with_event_capacity(capacity: usize) -> Self {
        Registry {
            inner: Arc::new(Inner {
                metrics: Mutex::new(Metrics::default()),
                events: EventRing::new(capacity),
            }),
        }
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut m = self.inner.metrics.lock().expect("obs registry");
        m.counters.entry(name.to_string()).or_default().clone()
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut m = self.inner.metrics.lock().expect("obs registry");
        m.gauges.entry(name.to_string()).or_default().clone()
    }

    /// Get or create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut m = self.inner.metrics.lock().expect("obs registry");
        m.histograms.entry(name.to_string()).or_default().clone()
    }

    /// Emit a structured event into the ring; returns its sequence number.
    pub fn emit(&self, kind: EventKind, txn: u64, stream: u64, page: u64, payload: u64) -> u64 {
        self.inner.events.emit(kind, txn, stream, page, payload)
    }

    /// The event ring.
    pub fn events(&self) -> &EventRing {
        &self.inner.events
    }

    /// Freeze every metric (events are snapshotted separately via
    /// [`Registry::events`]).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let m = self.inner.metrics.lock().expect("obs registry");
        MetricsSnapshot {
            counters: m
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: m.gauges.iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            histograms: m
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }

    /// Recent events, oldest first (convenience for tests/exporters).
    pub fn recent_events(&self) -> Vec<Event> {
        self.inner.events.snapshot()
    }
}

/// A point-in-time dump of every registered metric.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

impl MetricsSnapshot {
    /// Value of counter `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Value of gauge `name`, if registered.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).copied()
    }

    /// Snapshot of histogram `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Sum of every counter whose name starts with `prefix` (per-stream
    /// and per-shard families roll up this way).
    pub fn counter_family(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, &v)| v)
            .sum()
    }

    /// Serialise as a single JSON object:
    /// `{"counters":{...},"gauges":{...},"histograms":{name:{count,sum,
    /// min,max,mean,p50,p95,p99}}}`. Hand-rolled so the crate stays
    /// dependency-free.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        let mut first = true;
        for (k, v) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\"{}\":{}", json_escape(k), v));
        }
        out.push_str("},\"gauges\":{");
        let mut first = true;
        for (k, v) in &self.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\"{}\":{}", json_escape(k), v));
        }
        out.push_str("},\"histograms\":{");
        let mut first = true;
        for (k, h) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            let min = if h.count == 0 { 0 } else { h.min };
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\
                 \"mean\":{:.1},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                json_escape(k),
                h.count,
                h.sum,
                min,
                h.max,
                h.mean(),
                h.quantile(0.50),
                h.quantile(0.95),
                h.quantile(0.99),
            ));
        }
        out.push_str("}}");
        out
    }
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "metrics snapshot")?;
        for (k, v) in &self.counters {
            writeln!(f, "  counter   {k:<40} {v}")?;
        }
        for (k, v) in &self.gauges {
            writeln!(f, "  gauge     {k:<40} {v}")?;
        }
        for (k, h) in &self.histograms {
            writeln!(
                f,
                "  histogram {k:<40} n={} mean={:.1} p50={} p95={} p99={} max={}",
                h.count,
                h.mean(),
                h.quantile(0.50),
                h.quantile(0.95),
                h.quantile(0.99),
                h.max,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share_state_across_handles() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.add(4);
        assert_eq!(r.counter("x").get(), 5);
        assert_eq!(r.snapshot().counter("x"), Some(5));
    }

    #[test]
    fn gauges_overwrite() {
        let r = Registry::new();
        let g = r.gauge("g");
        g.set(10);
        g.set(3);
        assert_eq!(r.snapshot().gauge("g"), Some(3));
    }

    #[test]
    fn histogram_quantiles_bound_the_samples() {
        let r = Registry::new();
        let h = r.histogram("h");
        for v in [3u64, 5, 9, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1117);
        assert_eq!(s.min, 3);
        assert_eq!(s.max, 1000);
        // p50 sample is 9 (bucket (8,16]); estimate within that bucket
        let p50 = s.quantile(0.5);
        assert!((9..=16).contains(&p50), "p50={p50}");
        assert!(s.quantile(0.95) <= s.quantile(0.99).max(s.max));
        assert_eq!(s.quantile(1.0), 1000);
    }

    #[test]
    fn empty_histogram_is_calm() {
        let r = Registry::new();
        let s = r.histogram("h").snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn snapshot_serialises_to_parseable_json_shape() {
        let r = Registry::new();
        r.counter("a.b").inc();
        r.gauge("g").set(7);
        r.histogram("h\"x").record(12);
        let json = r.snapshot().to_json();
        assert!(json.starts_with("{\"counters\":{"));
        assert!(json.contains("\"a.b\":1"));
        assert!(json.contains("\"g\":7"));
        assert!(json.contains("h\\\"x"));
        assert!(json.ends_with("}}"));
        // balanced braces (cheap structural sanity without a parser)
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn counter_family_rolls_up_prefixes() {
        let r = Registry::new();
        r.counter("wal.appends.s0").add(2);
        r.counter("wal.appends.s1").add(3);
        r.counter("wal.forces.s0").add(9);
        let snap = r.snapshot();
        assert_eq!(snap.counter_family("wal.appends."), 5);
    }

    #[test]
    fn display_lists_every_metric() {
        let r = Registry::new();
        r.counter("c").inc();
        r.histogram("h").record(1);
        let text = format!("{}", r.snapshot());
        assert!(text.contains("counter"));
        assert!(text.contains("histogram"));
    }
}
