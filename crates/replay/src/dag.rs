//! Transaction-level precedence DAG over the redo work list.
//!
//! Nodes are transactions; edges come from page-set intersections. For
//! every page, the transactions that touch it (writers from redo items,
//! readers from command records' read sets) are chained in key order:
//! writer → every reader since it → the next writer, and writer → writer
//! directly when no reader intervenes. Strict 2PL guarantees the keys
//! interleave consistently (a reader's shared lock span separates its
//! neighbouring writers' exclusive spans), so the chain is exactly lock
//! order, which is exactly per-page LSN order.
//!
//! The build is deterministic: nodes are sorted by key, pages are walked
//! in `BTreeMap` order, and edges are deduplicated — so DAG shape, node
//! numbering, and the executor's ready-queue tie-break are identical for
//! every worker count.

use crate::{LogicalMeta, RedoItem};
use rmdb_storage::PageId;
use rmdb_wal::TxnId;
use std::collections::{BTreeMap, HashMap, HashSet};

/// One transaction's slice of the redo work.
pub struct DagNode {
    pub txn: TxnId,
    /// Scheduling key: commit LSN for command-logged transactions, max
    /// fragment LSN for physical ones. Keys are globally unique (both come
    /// from the same LSN counter) and key order refines every page chain.
    pub key: u64,
    /// Whether this node re-executes command ops (vs installing fragments).
    pub reexec: bool,
    /// Pages this node writes, each with its items in LSN order.
    pub pages: Vec<(PageId, Vec<RedoItem>)>,
}

/// The precedence DAG plus everything the executor needs.
pub struct Dag {
    /// Nodes in ascending key order (a valid serial schedule).
    pub nodes: Vec<DagNode>,
    /// Successor lists, indexed like `nodes`.
    pub succ: Vec<Vec<u32>>,
    /// Incoming-edge counts, indexed like `nodes`.
    pub indegree: Vec<u32>,
    /// Distinct precedence edges.
    pub edges: u64,
    /// Per written page: does the earliest item carry a full image
    /// (torn-page rebuild is then possible without a doublewrite copy)?
    pub full_image: HashMap<PageId, bool>,
}

/// Build the precedence DAG from the per-page redo map and the command
/// records' metadata (commit LSNs + read sets).
pub fn build_dag(
    redo: BTreeMap<PageId, Vec<RedoItem>>,
    logical: &HashMap<TxnId, LogicalMeta>,
) -> Dag {
    // Group items by transaction in one pass per page. After sorting a
    // page's items by LSN, each transaction's items form one contiguous
    // run: strict 2PL holds the X lock across all of a transaction's
    // writes to the page, so two transactions' LSN ranges on it cannot
    // interleave. Partitioning the sorted list by txn boundary therefore
    // recovers exactly the per-(txn, page) item lists — without the
    // per-item nested-map inserts this pass used to cost. (If a corrupt
    // log ever did interleave, a txn would just get two runs for the
    // page, applied in LSN order — slower, never wrong.)
    let mut full_image: HashMap<PageId, bool> = HashMap::new();
    let mut node_of: HashMap<TxnId, u32> = HashMap::new();
    let mut nodes: Vec<DagNode> = Vec::new();
    let mut max_lsn: Vec<u64> = Vec::new();
    for (page, mut items) in redo {
        items.sort_by_key(|i| i.new_lsn);
        full_image.insert(page, items.first().is_some_and(|i| i.is_full_image()));
        let mut items = items.into_iter().peekable();
        while let Some(first) = items.next() {
            let txn = first.txn;
            let mut run = vec![first];
            while items.peek().is_some_and(|i| i.txn == txn) {
                run.push(items.next().expect("peeked"));
            }
            let idx = *node_of.entry(txn).or_insert_with(|| {
                nodes.push(DagNode {
                    txn,
                    key: 0,
                    reexec: false,
                    pages: Vec::new(),
                });
                max_lsn.push(0);
                (nodes.len() - 1) as u32
            }) as usize;
            max_lsn[idx] = max_lsn[idx].max(run.last().map_or(0, |i| i.new_lsn.0));
            nodes[idx].pages.push((page, run));
        }
    }
    for (idx, node) in nodes.iter_mut().enumerate() {
        let (key, reexec) = match logical.get(&node.txn) {
            Some(meta) => (meta.commit_lsn, true),
            None => (max_lsn[idx], false),
        };
        node.key = key;
        node.reexec = reexec;
    }
    nodes.sort_by_key(|n| n.key);

    // Per-page touch events: writers keyed by their first LSN on the page,
    // readers by their commit LSN. BTreeMap so the chain walk order (and
    // hence edge insertion order) is deterministic.
    struct Touch {
        key: u64,
        node: u32,
        writes: bool,
    }
    let mut touches: BTreeMap<PageId, Vec<Touch>> = BTreeMap::new();
    for (i, node) in nodes.iter().enumerate() {
        for (page, items) in &node.pages {
            touches.entry(*page).or_default().push(Touch {
                key: items.first().map_or(node.key, |it| it.new_lsn.0),
                node: i as u32,
                writes: true,
            });
        }
        if node.reexec {
            if let Some(meta) = logical.get(&node.txn) {
                let written: HashSet<PageId> = node.pages.iter().map(|(p, _)| *p).collect();
                for page in &meta.reads {
                    if !written.contains(page) {
                        touches.entry(*page).or_default().push(Touch {
                            key: node.key,
                            node: i as u32,
                            writes: false,
                        });
                    }
                }
            }
        }
    }

    let mut succ: Vec<Vec<u32>> = vec![Vec::new(); nodes.len()];
    let mut indegree: Vec<u32> = vec![0; nodes.len()];
    let mut seen_edges: HashSet<(u32, u32)> = HashSet::new();
    let mut edges = 0u64;
    let mut add_edge =
        |from: u32, to: u32, succ: &mut Vec<Vec<u32>>, indegree: &mut Vec<u32>, edges: &mut u64| {
            if from != to && seen_edges.insert((from, to)) {
                succ[from as usize].push(to);
                indegree[to as usize] += 1;
                *edges += 1;
            }
        };
    for (_, mut chain) in touches {
        chain.sort_by_key(|t| t.key);
        let mut last_writer: Option<u32> = None;
        let mut readers_since: Vec<u32> = Vec::new();
        for t in chain {
            if t.writes {
                if let Some(w) = last_writer {
                    add_edge(w, t.node, &mut succ, &mut indegree, &mut edges);
                }
                for r in readers_since.drain(..) {
                    add_edge(r, t.node, &mut succ, &mut indegree, &mut edges);
                }
                last_writer = Some(t.node);
            } else {
                if let Some(w) = last_writer {
                    add_edge(w, t.node, &mut succ, &mut indegree, &mut edges);
                }
                readers_since.push(t.node);
            }
        }
    }

    Dag {
        nodes,
        succ,
        indegree,
        edges,
        full_image,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RedoBody;
    use rmdb_storage::Lsn;
    use rmdb_wal::LogicalOp;

    fn install(txn: TxnId, lsn: u64, page: u64) -> (PageId, RedoItem) {
        (
            PageId(page),
            RedoItem {
                new_lsn: Lsn(lsn),
                txn,
                body: RedoBody::Install {
                    offset: 0,
                    data: vec![txn as u8; 4],
                },
            },
        )
    }

    fn op(txn: TxnId, lsn: u64, page: u64) -> (PageId, RedoItem) {
        (
            PageId(page),
            RedoItem {
                new_lsn: Lsn(lsn),
                txn,
                body: RedoBody::Op(LogicalOp::AddU64 {
                    page: PageId(page),
                    lsn: Lsn(lsn),
                    offset: 0,
                    delta: 1,
                }),
            },
        )
    }

    fn redo_map(items: Vec<(PageId, RedoItem)>) -> BTreeMap<PageId, Vec<RedoItem>> {
        let mut m: BTreeMap<PageId, Vec<RedoItem>> = BTreeMap::new();
        for (p, i) in items {
            m.entry(p).or_default().push(i);
        }
        m
    }

    #[test]
    fn disjoint_txns_have_no_edges() {
        let redo = redo_map(vec![install(1, 1, 10), install(2, 2, 20)]);
        let dag = build_dag(redo, &HashMap::new());
        assert_eq!(dag.nodes.len(), 2);
        assert_eq!(dag.edges, 0);
        assert!(dag.indegree.iter().all(|&d| d == 0));
    }

    #[test]
    fn writers_chain_in_lsn_order() {
        let redo = redo_map(vec![
            install(1, 1, 10),
            install(2, 5, 10),
            install(3, 9, 10),
        ]);
        let dag = build_dag(redo, &HashMap::new());
        assert_eq!(dag.edges, 2, "w->w->w chain, no transitive edge");
        // nodes sorted by key: txn 1 (lsn 1), txn 2 (lsn 5), txn 3 (lsn 9)
        assert_eq!(dag.succ[0], vec![1]);
        assert_eq!(dag.succ[1], vec![2]);
        assert_eq!(dag.indegree, vec![0, 1, 1]);
    }

    #[test]
    fn reader_sits_between_writers() {
        // txn 1 writes page 10 (lsn 1); txn 2 reads page 10 and writes page
        // 20 (op lsn 3, commit lsn 4); txn 3 overwrites page 10 (lsn 7).
        let redo = redo_map(vec![install(1, 1, 10), op(2, 3, 20), install(3, 7, 10)]);
        let logical: HashMap<TxnId, LogicalMeta> = [(
            2,
            LogicalMeta {
                commit_lsn: 4,
                reads: vec![PageId(10), PageId(20)],
            },
        )]
        .into_iter()
        .collect();
        let dag = build_dag(redo, &logical);
        assert_eq!(dag.nodes.len(), 3);
        // 1 -> 2 (write->read), 2 -> 3 (read->next write), 1 -> 3 (w->w)
        assert_eq!(dag.edges, 3);
        assert_eq!(dag.indegree, vec![0, 1, 2]);
    }

    #[test]
    fn read_of_own_written_page_adds_no_touch() {
        let redo = redo_map(vec![op(5, 2, 7)]);
        let logical: HashMap<TxnId, LogicalMeta> = [(
            5,
            LogicalMeta {
                commit_lsn: 3,
                reads: vec![PageId(7)],
            },
        )]
        .into_iter()
        .collect();
        let dag = build_dag(redo, &logical);
        assert_eq!(dag.edges, 0);
        assert!(dag.nodes[0].reexec);
        assert_eq!(dag.nodes[0].key, 3);
    }

    #[test]
    fn full_image_flag_follows_earliest_item() {
        let mut m: BTreeMap<PageId, Vec<RedoItem>> = BTreeMap::new();
        let full = RedoItem {
            new_lsn: Lsn(1),
            txn: 1,
            body: RedoBody::Install {
                offset: 0,
                data: vec![0u8; rmdb_storage::PAYLOAD_SIZE],
            },
        };
        let partial = install(2, 5, 10).1;
        m.insert(PageId(10), vec![partial.clone(), full]);
        m.insert(PageId(11), vec![partial]);
        let dag = build_dag(m, &HashMap::new());
        assert!(dag.full_image[&PageId(10)]);
        assert!(!dag.full_image[&PageId(11)]);
    }
}
