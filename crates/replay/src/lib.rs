//! Dependency-aware parallel replay for mixed command/physical logs.
//!
//! Page-sharded redo (rmdb-restart's original scheduler) parallelises by
//! hashing pages into K shards, so its speedup is bounded by the page-set
//! skew and its unit of work is the page. This crate implements the
//! alternative studied for main-memory recovery on multicores: treat the
//! **transaction** as the unit of replay, build a precedence DAG from
//! page-set intersections, and let a K-worker topological executor replay
//! independent transactions concurrently. Physical records short-circuit to
//! page installs; command (logical) records re-execute their operations
//! against the recovered state.
//!
//! Ordering model. Every redo unit carries the page LSN it produced, and
//! every logical operation writes exactly the page it read (single-page
//! ops), so per-page LSN order is a *complete* replay order — the same
//! invariant the unmerged-log architecture rests on. The DAG refines this
//! into transaction-level edges:
//!
//! * each transaction becomes one node, ordered by a scalar key — the
//!   commit LSN for command-logged transactions, the maximum fragment LSN
//!   for physical ones (both drawn from the same global counter);
//! * for every page, the transactions touching it form a chain:
//!   writer → writer edges in first-touch-LSN order, writer → reader and
//!   reader → next-writer edges with readers placed by commit LSN. Strict
//!   2PL makes these interleavings consistent — a reader's shared lock sits
//!   between its neighbours' exclusive lock spans, so key order is lock
//!   order.
//!
//! Because the chain totally orders every toucher of a page, at most one
//! in-flight node ever holds a given page: the per-page mutexes in the
//! executor are uncontended and exist only to move page images between
//! workers. Applying each page's items in chain order is exactly per-page
//! LSN order, so the recovered bytes are identical to serial replay for
//! every K — the equivalence suites pin this.
//!
//! The crate also owns the redo-unit vocabulary ([`RedoItem`],
//! [`RedoBody`]) and the torn-page load/repair helpers shared with
//! rmdb-restart's page-sharded scheduler, so both schedulers apply records
//! through literally the same code.

mod dag;
mod exec;

pub use dag::{build_dag, Dag, DagNode};
pub use exec::{replay_dag, ReplayOutcome, ReplayWorkerStats};

use rmdb_storage::{Disk, Lsn, Page, PageId, StorageError, PAYLOAD_SIZE};
use rmdb_wal::{LogicalOp, TxnId};
use std::collections::HashMap;

/// One redo unit: either a physical fragment install or a logical op
/// re-execution, applied iff the page is older than `new_lsn`.
#[derive(Debug, Clone)]
pub struct RedoItem {
    /// The page LSN this unit produced when first executed.
    pub new_lsn: Lsn,
    /// The transaction that produced it (DAG node grouping key).
    pub txn: TxnId,
    pub body: RedoBody,
}

/// The two replay paths: install bytes, or re-execute a command.
#[derive(Debug, Clone)]
pub enum RedoBody {
    /// Physical after-image: write `data` at `offset`.
    Install { offset: u32, data: Vec<u8> },
    /// Command record: re-execute the operation against recovered state.
    Op(LogicalOp),
}

impl RedoItem {
    /// Whether this install carries a full page image (physical logging's
    /// from-scratch rebuild guarantee for torn pages).
    pub fn is_full_image(&self) -> bool {
        matches!(&self.body, RedoBody::Install { offset: 0, data } if data.len() == PAYLOAD_SIZE)
    }
}

/// Apply one redo unit with the per-page idempotence check. Returns whether
/// the unit was applied (`false`: the image already reflected it). Mirrors
/// serial recovery exactly: installs bounds-check before the LSN check,
/// ops bounds-check inside [`LogicalOp::apply`].
pub fn apply_item(page: &mut Page, item: &RedoItem) -> Result<bool, StorageError> {
    match &item.body {
        RedoBody::Install { offset, data } => {
            if *offset as usize + data.len() > PAYLOAD_SIZE {
                // a fragment that was never writable; refuse rather than panic
                return Err(StorageError::Protocol("log fragment exceeds page payload"));
            }
            if page.lsn < item.new_lsn {
                page.write_at(*offset as usize, data);
                page.lsn = item.new_lsn;
                Ok(true)
            } else {
                Ok(false)
            }
        }
        RedoBody::Op(op) => {
            if page.lsn < item.new_lsn {
                op.apply(page)?;
                page.lsn = item.new_lsn;
                Ok(true)
            } else {
                Ok(false)
            }
        }
    }
}

/// What the analysis pass knows about one command-logged transaction:
/// its commit LSN (the DAG ordering key) and the pages it read.
#[derive(Debug, Clone)]
pub struct LogicalMeta {
    pub commit_lsn: u64,
    pub reads: Vec<PageId>,
}

/// Result of loading a page's home image for replay.
pub enum PageLoad {
    /// A usable image (freshly allocated, read clean, or repaired; the
    /// flag says a torn frame was repaired).
    Ready(Page, bool),
    /// Corrupt and unrebuildable: leave the torn frame so reads yield a
    /// typed error instead of invented contents.
    Quarantined,
}

/// Load the home image of `page_id` for replay, repairing a torn frame
/// from the doublewrite buffer or — when `rebuild_from_log` says the
/// earliest retained item is a full-image install — from scratch. Both
/// replay schedulers and serial recovery share this decision tree.
pub fn load_redo_page(
    data: &Disk,
    doublewrite: &HashMap<PageId, Page>,
    page_id: PageId,
    rebuild_from_log: bool,
    retried: &mut u64,
) -> Result<PageLoad, StorageError> {
    if !data.is_allocated(page_id.0) {
        return Ok(PageLoad::Ready(Page::new(page_id), false));
    }
    match read_data_retry(data, page_id.0, retried) {
        Ok(p) => Ok(PageLoad::Ready(p, false)),
        Err(StorageError::Corrupt { .. }) => {
            if let Some(copy) = doublewrite.get(&page_id) {
                // torn home write: the doublewrite buffer holds a verified
                // full image written just before it
                Ok(PageLoad::Ready(copy.clone(), true))
            } else if rebuild_from_log {
                // the earliest retained fragment is a full image, so replay
                // rebuilds the page from scratch
                Ok(PageLoad::Ready(Page::new(page_id), true))
            } else {
                Ok(PageLoad::Quarantined)
            }
        }
        Err(e) => Err(e),
    }
}

/// Bounded retry for data-disk reads: transient faults are retried,
/// persistent corruption surfaces as the final typed error for the
/// caller's repair/quarantine logic.
pub fn read_data_retry(disk: &Disk, addr: u64, retried: &mut u64) -> Result<Page, StorageError> {
    const ATTEMPTS: u32 = 4;
    let mut last = StorageError::Io { addr };
    for attempt in 0..ATTEMPTS {
        match disk.read_page(addr) {
            Err(e @ (StorageError::Io { .. } | StorageError::Corrupt { .. }))
                if attempt + 1 < ATTEMPTS =>
            {
                *retried += 1;
                last = e;
            }
            other => return other,
        }
    }
    Err(last)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn install(txn: TxnId, lsn: u64, offset: u32, data: &[u8]) -> RedoItem {
        RedoItem {
            new_lsn: Lsn(lsn),
            txn,
            body: RedoBody::Install {
                offset,
                data: data.to_vec(),
            },
        }
    }

    #[test]
    fn apply_install_respects_lsn() {
        let mut page = Page::new(PageId(1));
        let item = install(1, 5, 0, b"abc");
        assert!(apply_item(&mut page, &item).unwrap());
        assert_eq!(page.read_at(0, 3), b"abc");
        assert_eq!(page.lsn, Lsn(5));
        // replaying the same item is a no-op
        let again = install(1, 5, 0, b"xyz");
        assert!(!apply_item(&mut page, &again).unwrap());
        assert_eq!(page.read_at(0, 3), b"abc");
    }

    #[test]
    fn apply_op_reexecutes_once() {
        let mut page = Page::new(PageId(2));
        page.write_at(0, &7u64.to_le_bytes());
        let op = LogicalOp::AddU64 {
            page: PageId(2),
            lsn: Lsn(9),
            offset: 0,
            delta: 5,
        };
        let item = RedoItem {
            new_lsn: Lsn(9),
            txn: 3,
            body: RedoBody::Op(op.clone()),
        };
        assert!(apply_item(&mut page, &item).unwrap());
        assert_eq!(page.read_at(0, 8), 12u64.to_le_bytes());
        // idempotent: the LSN gate stops double-execution
        assert!(!apply_item(&mut page, &item).unwrap());
        assert_eq!(page.read_at(0, 8), 12u64.to_le_bytes());
    }

    #[test]
    fn oversized_install_is_refused() {
        let mut page = Page::new(PageId(3));
        let item = install(1, 5, (PAYLOAD_SIZE - 1) as u32, b"toolong");
        assert!(matches!(
            apply_item(&mut page, &item),
            Err(StorageError::Protocol(_))
        ));
    }

    #[test]
    fn full_image_detection() {
        assert!(install(1, 2, 0, &vec![0u8; PAYLOAD_SIZE]).is_full_image());
        assert!(!install(1, 2, 1, &vec![0u8; PAYLOAD_SIZE - 1]).is_full_image());
        assert!(!install(1, 2, 0, b"short").is_full_image());
    }
}
