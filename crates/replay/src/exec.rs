//! K-worker topological executor over the precedence DAG.
//!
//! Ready nodes (indegree zero) sit in a min-heap keyed by the node's
//! scheduling key, so K=1 degenerates to exactly the serial schedule and
//! larger K only ever runs nodes whose page chains have fully drained —
//! which is why the recovered bytes cannot depend on K. Page images move
//! between workers through per-page mutexes; the chain edges totally order
//! every toucher of a page, so those mutexes are never contended, they are
//! just the hand-off points.
//!
//! Workers never write the data disk. Each applies its nodes' items into
//! the shared page slots; the coordinator collects the final images (and
//! the quarantine set) after the scope joins.

use crate::{apply_item, build_dag, load_redo_page, LogicalMeta, PageLoad, RedoBody, RedoItem};
use rmdb_storage::{Disk, Page, PageId, StorageError};
use rmdb_wal::TxnId;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// What one replay worker did.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReplayWorkerStats {
    /// Worker index (0..K).
    pub worker: usize,
    /// DAG nodes (transactions) this worker replayed.
    pub nodes: u64,
    /// Items applied (installs + re-executed ops).
    pub redone: u64,
    /// Of `redone`: physical fragments installed.
    pub installed: u64,
    /// Of `redone`: logical ops re-executed.
    pub reexec_ops: u64,
    /// Items skipped by the per-page idempotence check.
    pub skipped_idempotent: u64,
    /// Wall-clock this worker spent replaying.
    pub busy: Duration,
}

/// What a dependency-aware replay produced. Every field except
/// `per_worker` is byte-for-byte identical across worker counts.
pub struct ReplayOutcome {
    /// Rebuilt page images, ready for the coordinator to write home.
    pub pages: BTreeMap<PageId, Page>,
    /// Pages that were corrupt and unrebuildable.
    pub quarantined: BTreeSet<PageId>,
    /// Items applied (installs + ops; matches serial `redone_updates`).
    pub redone: u64,
    /// Items skipped by the idempotence check.
    pub skipped_idempotent: u64,
    /// Physical fragments installed.
    pub pages_installed: u64,
    /// Logical ops re-executed.
    pub reexecuted_ops: u64,
    /// Command-logged transactions re-executed (DAG nodes with ops).
    pub txns_reexecuted: u64,
    pub torn_repaired: u64,
    pub retried_ios: u64,
    pub dag_nodes: u64,
    pub dag_edges: u64,
    /// Σ measured per-node replay time — the DAG's total work.
    pub work_us: u64,
    /// The DAG's critical path under those same per-node times. With
    /// `work_us` this bounds how replay scales with cores (Brent:
    /// `T_k ≈ span + work/k`); measure at K=1 for uninflated node times.
    pub span_us: u64,
    pub per_worker: Vec<ReplayWorkerStats>,
}

enum Slot {
    Unloaded { rebuild_from_log: bool },
    Ready(Page),
    Quarantined,
}

/// One page's image plus its load-time accounting. Loaded exactly once
/// (by whichever worker touches the page first), so the counters are
/// schedule-independent.
struct SlotState {
    slot: Slot,
    torn_repaired: bool,
    retried: u64,
}

struct SlotBox {
    slot: Mutex<SlotState>,
}

struct Sched {
    heap: BinaryHeap<Reverse<(u64, u32)>>,
    indegree: Vec<u32>,
    /// Nodes not yet fully processed; 0 means the run is over.
    remaining: usize,
    failed: Option<StorageError>,
}

struct Shared<'a> {
    data: &'a Disk,
    doublewrite: &'a HashMap<PageId, Page>,
    nodes: &'a [crate::DagNode],
    succ: &'a [Vec<u32>],
    slots: &'a HashMap<PageId, SlotBox>,
    sched: Mutex<Sched>,
    cv: Condvar,
    /// Per-node replay time in µs; each entry written once, by the worker
    /// that replayed the node.
    node_us: Vec<AtomicU64>,
}

/// Build the DAG and replay it with `workers` threads. The outcome's
/// logical fields (everything but `per_worker`) and the page images are
/// identical for every K.
pub fn replay_dag(
    data: &Disk,
    doublewrite: &HashMap<PageId, Page>,
    redo: BTreeMap<PageId, Vec<RedoItem>>,
    logical: &HashMap<TxnId, LogicalMeta>,
    workers: usize,
) -> Result<ReplayOutcome, StorageError> {
    let k = workers.max(1);
    let dag = build_dag(redo, logical);
    let slots: HashMap<PageId, SlotBox> = dag
        .full_image
        .iter()
        .map(|(page, &rebuild)| {
            (
                *page,
                SlotBox {
                    slot: Mutex::new(SlotState {
                        slot: Slot::Unloaded {
                            rebuild_from_log: rebuild,
                        },
                        torn_repaired: false,
                        retried: 0,
                    }),
                },
            )
        })
        .collect();

    let mut heap = BinaryHeap::new();
    for (i, node) in dag.nodes.iter().enumerate() {
        if dag.indegree[i] == 0 {
            heap.push(Reverse((node.key, i as u32)));
        }
    }
    let shared = Shared {
        data,
        doublewrite,
        nodes: &dag.nodes,
        succ: &dag.succ,
        slots: &slots,
        sched: Mutex::new(Sched {
            heap,
            indegree: dag.indegree.clone(),
            remaining: dag.nodes.len(),
            failed: None,
        }),
        cv: Condvar::new(),
        node_us: (0..dag.nodes.len()).map(|_| AtomicU64::new(0)).collect(),
    };

    let per_worker: Vec<ReplayWorkerStats> = if k == 1 {
        vec![worker_loop(&shared, 0)]
    } else {
        std::thread::scope(|scope| {
            let shared = &shared;
            let handles: Vec<_> = (0..k)
                .map(|i| scope.spawn(move || worker_loop(shared, i)))
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .unwrap_or_else(|_| panic!("replay worker panicked"))
                })
                .collect()
        })
    };
    if let Some(e) = shared
        .sched
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .failed
        .take()
    {
        return Err(e);
    }

    // Work/span over the measured per-node times. Node order (ascending
    // key) is a topological order — every edge points to a strictly
    // higher key (2PL: a successor's page touches postdate its
    // predecessor's commit point) — so one forward pass finds the
    // critical path.
    let mut work_us = 0u64;
    let mut span_us = 0u64;
    let mut dist: Vec<u64> = vec![0; dag.nodes.len()];
    for i in 0..dag.nodes.len() {
        let us = shared.node_us[i].load(Ordering::Relaxed);
        work_us += us;
        let finish = dist[i] + us;
        span_us = span_us.max(finish);
        for &s in &dag.succ[i] {
            dist[s as usize] = dist[s as usize].max(finish);
        }
    }

    let mut out = ReplayOutcome {
        pages: BTreeMap::new(),
        quarantined: BTreeSet::new(),
        redone: 0,
        skipped_idempotent: 0,
        pages_installed: 0,
        reexecuted_ops: 0,
        txns_reexecuted: 0,
        torn_repaired: 0,
        retried_ios: 0,
        dag_nodes: dag.nodes.len() as u64,
        dag_edges: dag.edges,
        work_us,
        span_us,
        per_worker,
    };
    // Every per-item and per-slot decision is fixed by per-page order, so
    // these sums are identical for every K; only the per-worker split of
    // them varies with the schedule.
    for w in &out.per_worker {
        out.redone += w.redone;
        out.skipped_idempotent += w.skipped_idempotent;
        out.pages_installed += w.installed;
        out.reexecuted_ops += w.reexec_ops;
    }
    for node in &dag.nodes {
        if node.reexec {
            out.txns_reexecuted += 1;
        }
    }
    for (page, sbox) in &slots {
        let state = sbox.take_state();
        if state.torn_repaired {
            out.torn_repaired += 1;
        }
        out.retried_ios += state.retried;
        match state.slot {
            Slot::Ready(p) => {
                out.pages.insert(*page, p);
            }
            Slot::Quarantined => {
                out.quarantined.insert(*page);
            }
            Slot::Unloaded { .. } => {
                // only reachable when a worker bailed on error; the caller
                // is about to see Err anyway
            }
        }
    }
    Ok(out)
}

impl SlotBox {
    fn take_state(&self) -> SlotState {
        let empty = SlotState {
            slot: Slot::Quarantined,
            torn_repaired: false,
            retried: 0,
        };
        // slots are only poisoned if a worker panicked, which already
        // propagated through the scope join
        match self.slot.lock() {
            Ok(mut g) => std::mem::replace(&mut *g, empty),
            Err(p) => std::mem::replace(&mut *p.into_inner(), empty),
        }
    }
}

fn worker_loop(shared: &Shared<'_>, worker: usize) -> ReplayWorkerStats {
    let start = Instant::now();
    let mut stats = ReplayWorkerStats {
        worker,
        ..ReplayWorkerStats::default()
    };
    // One sched-lock critical section per node: completing a node and
    // claiming the next ready one happen under the same acquisition, and
    // peers are woken only when that pop leaves more ready work behind —
    // an idle condvar never hears about work this worker is taking anyway.
    let mut done: Option<usize> = None;
    loop {
        let node_idx = {
            let mut s = shared.sched.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(idx) = done.take() {
                s.remaining -= 1;
                for &succ in &shared.succ[idx] {
                    s.indegree[succ as usize] -= 1;
                    if s.indegree[succ as usize] == 0 {
                        s.heap
                            .push(Reverse((shared.nodes[succ as usize].key, succ)));
                    }
                }
                if s.remaining == 0 {
                    shared.cv.notify_all();
                }
            }
            loop {
                if s.failed.is_some() || s.remaining == 0 {
                    stats.busy = start.elapsed();
                    return stats;
                }
                if let Some(Reverse((_, idx))) = s.heap.pop() {
                    if !s.heap.is_empty() {
                        shared.cv.notify_all();
                    }
                    break idx as usize;
                }
                s = shared.cv.wait(s).unwrap_or_else(|p| p.into_inner());
            }
        };
        let t_node = Instant::now();
        let replayed = replay_node(shared, node_idx, &mut stats);
        shared.node_us[node_idx].store(t_node.elapsed().as_micros() as u64, Ordering::Relaxed);
        match replayed {
            Ok(()) => done = Some(node_idx),
            Err(e) => {
                let mut s = shared.sched.lock().unwrap_or_else(|p| p.into_inner());
                s.failed = Some(e);
                shared.cv.notify_all();
                stats.busy = start.elapsed();
                return stats;
            }
        }
        stats.nodes += 1;
    }
}

/// Replay one transaction: for each page it writes, take the page slot
/// (loading/repairing the home image on first touch), then apply the
/// transaction's items in LSN order with the idempotence check.
fn replay_node(
    shared: &Shared<'_>,
    node_idx: usize,
    stats: &mut ReplayWorkerStats,
) -> Result<(), StorageError> {
    let node = &shared.nodes[node_idx];
    for (page_id, items) in &node.pages {
        let sbox = shared
            .slots
            .get(page_id)
            .ok_or(StorageError::Protocol("replay page has no slot"))?;
        let mut state = sbox.slot.lock().unwrap_or_else(|p| p.into_inner());
        if let Slot::Unloaded { rebuild_from_log } = state.slot {
            state.slot = match load_redo_page(
                shared.data,
                shared.doublewrite,
                *page_id,
                rebuild_from_log,
                &mut state.retried,
            )? {
                PageLoad::Ready(p, torn) => {
                    state.torn_repaired = torn;
                    Slot::Ready(p)
                }
                PageLoad::Quarantined => Slot::Quarantined,
            };
        }
        match &mut state.slot {
            Slot::Ready(page) => {
                for item in items {
                    if apply_item(page, item)? {
                        stats.redone += 1;
                        match &item.body {
                            RedoBody::Install { .. } => stats.installed += 1,
                            RedoBody::Op(_) => stats.reexec_ops += 1,
                        }
                    } else {
                        stats.skipped_idempotent += 1;
                    }
                }
            }
            Slot::Quarantined => {
                // unreadable either way; applying onto a fresh frame would
                // invent contents for the untouched bytes
            }
            Slot::Unloaded { .. } => unreachable!("slot loaded above"),
        }
    }
    Ok(())
}
