//! Simulation output: the paper's metrics plus device-level detail.

use serde::Serialize;

/// Results of one machine run.
///
/// The two headline metrics are the paper's (§4): *execution time per page*
/// — total simulated time divided by pages processed, the machine's
/// throughput measure — and mean *transaction completion time* — from the
/// first cache-frame allocation to the last updated page reaching disk.
#[derive(Debug, Clone, Default, Serialize)]
pub struct MachineReport {
    /// Total simulated time to drain the batch (ms).
    pub total_time_ms: f64,
    /// Pages processed by query processors.
    pub pages_processed: u64,
    /// Execution time per page (ms).
    pub exec_time_per_page_ms: f64,
    /// Mean transaction completion time (ms).
    pub mean_completion_ms: f64,
    /// Per-data-disk utilization.
    pub data_disk_util: Vec<f64>,
    /// Per-log-disk utilization (logging overlay only).
    pub log_disk_util: Vec<f64>,
    /// Per-page-table-disk utilization (shadow overlay only).
    pub pt_disk_util: Vec<f64>,
    /// Aggregate query-processor utilization.
    pub qp_util: f64,
    /// Data-disk accesses (arm operations).
    pub data_disk_accesses: u64,
    /// Data pages transferred.
    pub data_pages_moved: u64,
    /// Log pages written (logging overlay).
    pub log_pages_written: u64,
    /// Time-average number of updated pages blocked in the cache waiting
    /// for their log records (logging overlay).
    pub mean_blocked_pages: f64,
    /// Time-average cache frames in use.
    pub mean_frames_used: f64,
    /// Transactions completed.
    pub txns_completed: u64,
}

impl MachineReport {
    /// Mean data-disk utilization across drives.
    pub fn mean_data_disk_util(&self) -> f64 {
        if self.data_disk_util.is_empty() {
            0.0
        } else {
            self.data_disk_util.iter().sum::<f64>() / self.data_disk_util.len() as f64
        }
    }

    /// Mean log-disk utilization across log drives.
    pub fn mean_log_disk_util(&self) -> f64 {
        if self.log_disk_util.is_empty() {
            0.0
        } else {
            self.log_disk_util.iter().sum::<f64>() / self.log_disk_util.len() as f64
        }
    }

    /// Mean page-table-disk utilization.
    pub fn mean_pt_disk_util(&self) -> f64 {
        if self.pt_disk_util.is_empty() {
            0.0
        } else {
            self.pt_disk_util.iter().sum::<f64>() / self.pt_disk_util.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means_handle_empty_and_values() {
        let mut r = MachineReport::default();
        assert_eq!(r.mean_data_disk_util(), 0.0);
        assert_eq!(r.mean_log_disk_util(), 0.0);
        r.data_disk_util = vec![0.8, 0.6];
        assert!((r.mean_data_disk_util() - 0.7).abs() < 1e-12);
        r.pt_disk_util = vec![0.5];
        assert!((r.mean_pt_disk_util() - 0.5).abs() < 1e-12);
    }
}
