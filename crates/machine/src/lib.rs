//! Discrete-event simulator of the paper's multiprocessor-cache database
//! machine, with each recovery architecture as a pluggable overlay.
//!
//! The simulated machine (paper §2, §4): 25 query processors (VAX 11/750
//! class), a back-end controller managing a 100-frame disk cache of 4 KB
//! pages, an I/O processor, and 2 data disks (IBM 3350, conventional or
//! SURE/DBC-style parallel-access). Transactions read 1–250 pages (uniform)
//! with a random 20 % write set, using random or sequential reference
//! strings. The machine runs a closed workload at a fixed multiprogramming
//! level and reports the paper's two metrics: **execution time per page**
//! (throughput) and **transaction completion time**.
//!
//! Overlays (paper §3):
//!
//! * [`config::RecoveryOverlay::Logging`] — N log processors/disks, four
//!   fragment-selection policies, logical or physical fragments, WAL
//!   blocking of updated pages in the cache, commit forces;
//! * [`config::RecoveryOverlay::ShadowPt`] — page-table indirection with
//!   1–2 page-table processors/disks and an LRU page-table buffer, plus the
//!   clustered/scrambled placement distinction;
//! * [`config::RecoveryOverlay::Overwriting`] — the no-undo overwriting
//!   architecture staging updated pages through an on-disk scratch area and
//!   installing them over the shadows at commit;
//! * [`config::RecoveryOverlay::DiffFile`] — differential files with basic
//!   or optimal query processing, extra A/D page I/O and set-difference CPU.
//!
//! [`experiments`] packages the exact configurations behind every table of
//! the paper.

pub mod ablations;
pub mod config;
pub mod experiments;
pub mod machine;
pub mod measured;
pub mod report;
pub mod workload;

pub use config::{
    AccessPattern, DiffFileConfig, LoggingConfig, MachineConfig, OverwriteVariant,
    OverwritingConfig, RecoveryOverlay, ScanApproach, ShadowPtConfig,
};
pub use machine::Machine;
pub use report::MachineReport;
