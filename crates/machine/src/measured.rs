//! Measured (wall-clock) throughput of the real-thread pipeline,
//! reported in the same [`ExpTable`] shape as the simulated tables.
//!
//! The simulator predicts execution time per page from the paper's
//! device models; this module runs the actual concurrent engine
//! (`rmdb-exec`) and reports observed transactions per second, so the
//! reproduced tables can sit next to a measurement of the same
//! architecture executing for real. The modeled log-device service time
//! mirrors the paper's premise that a log force is never free.

use crate::experiments::{ExpRow, ExpTable};
use rmdb_exec::{ExecConfig, ExecDb, Executor};
use rmdb_wal::WalConfig;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const DATA_PAGES: u64 = 256;

/// One measured cell: low-contention single-write transactions driven
/// through the bounded worker pool for `secs` seconds.
fn measure_cell(workers: usize, streams: usize, secs: f64) -> f64 {
    let cfg = ExecConfig {
        wal: WalConfig {
            data_pages: DATA_PAGES,
            pool_frames: 320,
            log_streams: streams,
            log_frames: 1 << 18,
            seed: 1985,
            ..WalConfig::default()
        },
        force_delay_us: 500,
        ..ExecConfig::default()
    };
    let db = Arc::new(ExecDb::new(cfg));
    let pool = Executor::new(workers, workers * 2);
    let committed = Arc::new(AtomicU64::new(0));
    let pages_per_worker = DATA_PAGES / workers as u64;
    let start = Instant::now();
    let deadline = start + Duration::from_secs_f64(secs);
    let mut i: u64 = 0;
    while Instant::now() < deadline {
        let qp = (i % workers as u64) as usize;
        let page = (qp as u64) * pages_per_worker + (i / workers as u64) % pages_per_worker;
        let db = Arc::clone(&db);
        let committed = Arc::clone(&committed);
        let val = i.to_le_bytes();
        pool.submit(move || {
            if db.run_txn(qp, |ctx| ctx.write(page, 0, &val)).is_ok() {
                committed.fetch_add(1, Ordering::Relaxed);
            }
        });
        i += 1;
    }
    pool.join();
    // quiesce the appenders and check the pipeline's double-entry books
    // before the cell is torn down: a measured rate from an engine whose
    // own accounting disagrees is not a measurement
    let _ = db.drain_appenders();
    let snap = db.metrics();
    debug_assert_eq!(
        snap.counter("txn.commits_acked"),
        snap.counter("group.completions"),
        "commit acks must match group-commit completions"
    );
    committed.load(Ordering::Relaxed) as f64 / start.elapsed().as_secs_f64()
}

/// Measured txns/sec of the concurrent pipeline: worker count × number
/// of log processors, low contention, `secs_per_cell` seconds per cell.
pub fn measured_throughput(secs_per_cell: f64) -> ExpTable {
    let mut rows = Vec::new();
    for &workers in &[1usize, 2, 4] {
        let mut row = ExpRow::new(format!("{workers} worker(s)"));
        for &streams in &[1usize, 2, 4] {
            row.push(
                format!("txns/s @ {streams} log(s)"),
                measure_cell(workers, streams, secs_per_cell),
            );
        }
        rows.push(row);
    }
    ExpTable {
        id: "measured01",
        title: "Measured pipeline throughput (real threads, wall clock)",
        rows,
    }
}
