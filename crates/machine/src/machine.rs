//! The discrete-event machine simulator.
//!
//! One [`Machine::run`] drains a closed batch of transactions through the
//! simulated database machine and reports the paper's metrics. The
//! component model:
//!
//! * **I/O processor / back-end controller** — the per-disk round-robin
//!   scheduler (`DiskSched`): every active transaction keeps a queue of
//!   pending page reads (anticipatory reading: all future pages are known)
//!   and a queue of pending writes; an idle disk serves the next
//!   transaction in rotation, preferring writes (they release cache
//!   frames). On parallel-access drives the scheduler coalesces a
//!   transaction's queued pages that fall in one cylinder into a single
//!   access, bounded by free cache frames.
//! * **Cache** — a counting model: reads claim a frame at issue; read-only
//!   pages release it after processing; updated pages hold it until the
//!   page reaches disk (and, under logging, until the WAL rule unblocks
//!   it).
//! * **Query processors** — a pool serving the in-cache ready queue, with
//!   per-page CPU cost plus overlay surcharges (fragment construction,
//!   set-difference work).
//! * **Overlays** — logging (fragment routing, log-page assembly, WAL
//!   blocking, commit forces), thru-page-table shadow (PT fetch before a
//!   data read may issue, PT buffer, commit-time PT updates),
//!   overwriting (scratch staging + install), and differential files
//!   (extra A/D reads, set-difference CPU, fractional output pages).

use crate::config::{MachineConfig, RecoveryOverlay, ScanApproach};
use crate::report::MachineReport;
use crate::workload::{self, PageLoc, TxnSpec};
use rmdb_disk::{Disk, DiskMode, DiskParams, Geometry, RequestKind};
use rmdb_sim::stats::{Tally, TimeWeighted};
use rmdb_sim::{Calendar, SimRng, SimTime};
use rmdb_wal::select::Selector;
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

const LOG_PAGE_BYTES: usize = 4096;
/// Page-table entries per page-table page (4-byte entries, per the paper's
/// "more than 1000 page-table entries" in a 4 KB page).
const PT_ENTRIES_PER_PAGE: u64 = 1019;

/// `(transaction index, access index)` — identifies one page access.
type Pr = (usize, usize);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ItemKind {
    /// Fetch a data page into the cache (claims a frame).
    Read,
    /// Fetch a differential-file page (claims a frame, bypasses the QPs).
    DiffRead,
    /// Write an updated page home (releases its frame on completion).
    Write,
    /// Overwriting: stage an updated page into the scratch area.
    ScratchWrite,
    /// Overwriting: read a staged page back for installation.
    ScratchRead,
    /// Differential files: write an output (A-file) page. Unlike `Write`,
    /// the source frame was already released when the page finished
    /// processing.
    OutWrite,
}

#[derive(Debug, Clone, Copy)]
struct WorkItem {
    kind: ItemKind,
    pr: Pr,
    addr: u64,
}

/// Round-robin per-transaction work queues for one disk.
#[derive(Default)]
struct DiskSched {
    reads: BTreeMap<usize, VecDeque<WorkItem>>,
    writes: BTreeMap<usize, VecDeque<WorkItem>>,
    order: VecDeque<usize>,
}

impl DiskSched {
    fn ensure_in_order(&mut self, txn: usize) {
        if !self.order.contains(&txn) {
            self.order.push_back(txn);
        }
    }

    fn push_read(&mut self, txn: usize, item: WorkItem) {
        self.reads.entry(txn).or_default().push_back(item);
        self.ensure_in_order(txn);
    }

    fn push_write(&mut self, txn: usize, item: WorkItem) {
        self.writes.entry(txn).or_default().push_back(item);
        self.ensure_in_order(txn);
    }

    fn is_empty(&self) -> bool {
        self.reads.values().all(|q| q.is_empty()) && self.writes.values().all(|q| q.is_empty())
    }

    /// Pick the next batch to serve. Writes within a transaction go first
    /// (they free frames); reads are bounded by `frames_free`. On
    /// parallel-access drives the batch extends to every queued item of
    /// the same kind in the same cylinder.
    fn next_batch(
        &mut self,
        mode: DiskMode,
        geometry: &Geometry,
        frames_free: usize,
    ) -> Option<Vec<WorkItem>> {
        let n = self.order.len();
        for _ in 0..n {
            let txn = *self.order.front().expect("order nonempty");
            // writes first
            let from_writes = self.writes.get(&txn).is_some_and(|q| !q.is_empty());
            let has_read = self.reads.get(&txn).is_some_and(|q| !q.is_empty());
            let use_reads = !from_writes && has_read;
            if !from_writes && (!has_read || frames_free == 0) {
                // nothing serviceable for this txn right now
                self.order.rotate_left(1);
                continue;
            }
            let q = if from_writes {
                self.writes.get_mut(&txn).expect("checked")
            } else {
                self.reads.get_mut(&txn).expect("checked")
            };
            let head = *q.front().expect("checked nonempty");
            let mut batch = vec![q.pop_front().expect("head")];
            match mode {
                DiskMode::ParallelAccess => {
                    let cyl = geometry.cylinder_of(head.addr);
                    let limit = if use_reads { frames_free } else { usize::MAX };
                    while batch.len() < limit.max(1) {
                        match q.front() {
                            Some(next)
                                if next.kind == head.kind
                                    && geometry.cylinder_of(next.addr) == cyl =>
                            {
                                batch.push(q.pop_front().expect("peeked"));
                            }
                            _ => break,
                        }
                    }
                }
                DiskMode::Conventional if use_reads && head.kind == ItemKind::Read => {
                    // the I/O processor coalesces a stream's pending data
                    // reads for the rest of the current aligned sector pair
                    // (the controller's transfer unit) into one request.
                    // Scratch-area reads do not coalesce: the arm shuttles
                    // between the scratch and data areas (paper §4.2.4).
                    let pair = head.addr / 2;
                    let limit = frames_free.max(1);
                    while batch.len() < limit {
                        let expect = batch.last().expect("nonempty").addr + 1;
                        match q.front() {
                            Some(next)
                                if next.kind == head.kind
                                    && next.addr == expect
                                    && next.addr / 2 == pair =>
                            {
                                batch.push(q.pop_front().expect("peeked"));
                            }
                            _ => break,
                        }
                    }
                }
                DiskMode::Conventional => {}
            }
            self.order.rotate_left(1);
            return Some(batch);
        }
        None
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    DataDiskDone(usize),
    LogDiskDone(usize),
    PtDiskDone(usize),
    QpDone(usize),
    FragArrive {
        log: usize,
        pr: Pr,
        bytes: usize,
        via_cache: bool,
    },
}

struct TxnRt {
    spec: TxnSpec,
    started: Option<SimTime>,
    completed: Option<SimTime>,
    /// QP-processed pages required (base pages + A-file extras).
    to_process: usize,
    processed: usize,
    /// Differential-file D pages still to read.
    d_pending: usize,
    /// Home (or output) writes expected and done.
    home_writes_total: usize,
    home_writes_done: usize,
    /// Overwriting: scratch stages completed / expected.
    scratch_total: usize,
    scratch_done: usize,
    install_started: bool,
    /// Updated pages awaiting install (overwriting).
    install_queue: Vec<(Pr, u64, u64)>, // (pr, scratch addr, home addr)
    /// Shadow: PT write operations outstanding at commit.
    pt_commit_pending: usize,
    pt_commit_issued: bool,
    /// Differential files: accumulated output bytes.
    out_bytes: usize,
    out_pages_issued: usize,
    /// Shadow: next access index whose page-table entry is to be resolved
    /// (the lookahead pipeline frontier).
    pt_next: usize,
}

impl TxnRt {
    fn processing_finished(&self) -> bool {
        self.processed >= self.to_process && self.d_pending == 0
    }
}

struct LogProc {
    disk: Disk,
    /// Bytes accumulated toward the current log page.
    buf_bytes: usize,
    /// Updated pages waiting for the current log page.
    waiting: Vec<Pr>,
    /// Transactions with fragments in the current log page.
    txns_in_buf: HashSet<usize>,
    /// Per-request unblock lists.
    unblock: HashMap<u64, Vec<Pr>>,
    next_append_page: u64,
    pages_written: u64,
}

struct PtProc {
    disk: Disk,
    /// req id → completed meta
    meta: HashMap<u64, PtMeta>,
}

#[derive(Debug, Clone)]
enum PtMeta {
    Fetch(u64),
    CommitRead { txn: usize, ptpage: u64 },
    CommitWrite { txn: usize },
}

/// A tiny LRU set for the page-table buffer.
struct LruSet {
    cap: usize,
    tick: u64,
    map: HashMap<u64, u64>,
}

impl LruSet {
    fn new(cap: usize) -> Self {
        LruSet {
            cap,
            tick: 0,
            map: HashMap::new(),
        }
    }
    fn contains(&mut self, key: u64) -> bool {
        self.tick += 1;
        if let Some(t) = self.map.get_mut(&key) {
            *t = self.tick;
            true
        } else {
            false
        }
    }
    fn insert(&mut self, key: u64) {
        self.tick += 1;
        if self.map.len() >= self.cap && !self.map.contains_key(&key) {
            if let Some((&victim, _)) = self.map.iter().min_by_key(|(_, &t)| t) {
                self.map.remove(&victim);
            }
        }
        self.map.insert(key, self.tick);
    }
}

/// The simulator. Construct with a [`MachineConfig`] and call
/// [`Machine::run`].
///
/// ```
/// use rmdb_machine::{Machine, MachineConfig};
///
/// let report = Machine::new(MachineConfig {
///     num_txns: 5,
///     ..MachineConfig::default()
/// })
/// .run();
/// assert_eq!(report.txns_completed, 5);
/// assert!(report.exec_time_per_page_ms > 0.0);
/// ```
pub struct Machine {
    cfg: MachineConfig,
}

impl Machine {
    /// New simulator for `cfg`.
    pub fn new(cfg: MachineConfig) -> Self {
        Machine { cfg }
    }

    /// Run the batch to completion and report.
    pub fn run(&self) -> MachineReport {
        Sim::new(&self.cfg).run()
    }
}

struct Sim<'a> {
    cfg: &'a MachineConfig,
    cal: Calendar<Ev>,
    geometry: Geometry,
    txns: Vec<TxnRt>,
    next_admit: usize,
    outstanding: usize,
    // cache
    frames_free: usize,
    frames_used: TimeWeighted,
    blocked_pages: TimeWeighted,
    blocked_now: usize,
    // QPs
    ready: VecDeque<Pr>,
    free_qps: Vec<usize>,
    qp_task: Vec<Option<Pr>>,
    qp_busy_ms: f64,
    // data disks
    disks: Vec<Disk>,
    scheds: Vec<DiskSched>,
    req_meta: Vec<HashMap<u64, (ItemKind, Vec<WorkItem>)>>,
    // logging overlay
    logs: Vec<LogProc>,
    selector: Option<Selector>,
    // shadow overlay
    pt_procs: Vec<PtProc>,
    pt_buffer: Option<LruSet>,
    pt_waiting: HashMap<u64, Vec<(usize, WorkItem)>>, // ptpage → (disk, read item)
    pt_inflight: HashSet<u64>,
    scramble: bool,
    // overwriting overlay
    scratch_cursor: Vec<u64>,
    scratch_base: Vec<u64>,
    scratch_len: u64,
    // misc
    rng: SimRng,
    completions: Tally,
    pages_processed: u64,
}

impl<'a> Sim<'a> {
    fn new(cfg: &'a MachineConfig) -> Self {
        let geometry = Geometry::IBM_3350;
        let mut rng = SimRng::seed_from_u64(cfg.seed);
        let specs = workload::generate(cfg, &mut rng);

        let txns = specs
            .into_iter()
            .map(|spec| {
                let n = spec.n_pages();
                let u = spec.n_writes();
                let (to_process, d_pending, home_writes_total) = match &cfg.overlay {
                    RecoveryOverlay::DiffFile(d) => {
                        let a_extra = ((n as f64) * d.size_fraction).ceil() as usize;
                        let d_extra = ((n as f64) * d.size_fraction).ceil() as usize;
                        let out_pages = ((u as f64) * d.output_fraction).ceil() as usize;
                        (n + a_extra, d_extra, out_pages)
                    }
                    _ => (n, 0, u),
                };
                let scratch_total = match &cfg.overlay {
                    RecoveryOverlay::Overwriting(_) => u,
                    _ => 0,
                };
                TxnRt {
                    spec,
                    started: None,
                    completed: None,
                    to_process,
                    processed: 0,
                    d_pending,
                    home_writes_total,
                    home_writes_done: 0,
                    scratch_total,
                    scratch_done: 0,
                    install_started: false,
                    install_queue: Vec::new(),
                    pt_commit_pending: 0,
                    pt_commit_issued: false,
                    out_bytes: 0,
                    out_pages_issued: 0,
                    pt_next: 0,
                }
            })
            .collect();

        let params = DiskParams::ibm_3350();
        let disks: Vec<Disk> = (0..cfg.data_disks)
            .map(|_| Disk::new(params, cfg.disk_mode))
            .collect();
        let scheds = (0..cfg.data_disks).map(|_| DiskSched::default()).collect();
        let req_meta = (0..cfg.data_disks).map(|_| HashMap::new()).collect();

        let (logs, selector) = match &cfg.overlay {
            RecoveryOverlay::Logging(l) => {
                let procs = (0..l.log_disks)
                    .map(|_| LogProc {
                        // log disks are conventional drives
                        disk: Disk::new(params, DiskMode::Conventional),
                        buf_bytes: 0,
                        waiting: Vec::new(),
                        txns_in_buf: HashSet::new(),
                        unblock: HashMap::new(),
                        next_append_page: 0,
                        pages_written: 0,
                    })
                    .collect();
                (
                    procs,
                    Some(Selector::new(l.selection, l.log_disks, cfg.seed ^ 0x10c)),
                )
            }
            _ => (Vec::new(), None),
        };

        let (pt_procs, pt_buffer, scramble) = match &cfg.overlay {
            RecoveryOverlay::ShadowPt(s) => {
                let procs = (0..s.pt_processors)
                    .map(|_| PtProc {
                        disk: Disk::new(params, DiskMode::Conventional),
                        meta: HashMap::new(),
                    })
                    .collect();
                (procs, Some(LruSet::new(s.pt_buffer)), !s.clustered)
            }
            _ => (Vec::new(), None, false),
        };

        let (scratch_base, scratch_len, scratch_cursor) = match &cfg.overlay {
            RecoveryOverlay::Overwriting(o) => {
                let cyls = if o.scratch_cylinders == 0 {
                    geometry.cylinders / 10
                } else {
                    o.scratch_cylinders
                };
                // scratch area occupies the innermost cylinders — every
                // staging/install operation moves the arm between the data
                // area and the scratch area (paper §4.2.4)
                let base = geometry.cylinder_start(geometry.cylinders - cyls);
                let len = cyls as u64 * geometry.pages_per_cylinder();
                (vec![base; cfg.data_disks], len, vec![0u64; cfg.data_disks])
            }
            _ => (vec![0; cfg.data_disks], 0, vec![0; cfg.data_disks]),
        };

        Sim {
            cfg,
            cal: Calendar::new(),
            geometry,
            txns,
            next_admit: 0,
            outstanding: 0,
            frames_free: cfg.cache_frames,
            frames_used: TimeWeighted::new(SimTime::ZERO, 0.0),
            blocked_pages: TimeWeighted::new(SimTime::ZERO, 0.0),
            blocked_now: 0,
            ready: VecDeque::new(),
            free_qps: (0..cfg.query_processors).rev().collect(),
            qp_task: vec![None; cfg.query_processors],
            qp_busy_ms: 0.0,
            disks,
            scheds,
            req_meta,
            logs,
            selector,
            pt_procs,
            pt_buffer,
            pt_waiting: HashMap::new(),
            pt_inflight: HashSet::new(),
            scramble,
            scratch_cursor,
            scratch_base,
            scratch_len,
            rng,
            completions: Tally::new(),
            pages_processed: 0,
        }
    }

    fn now(&self) -> SimTime {
        self.cal.now()
    }

    // ---------------- cache frame accounting ----------------

    fn claim_frames(&mut self, n: usize) {
        debug_assert!(self.frames_free >= n);
        self.frames_free -= n;
        let used = (self.cfg.cache_frames - self.frames_free) as f64;
        self.frames_used.set(self.now(), used);
    }

    fn release_frames(&mut self, n: usize) {
        self.frames_free += n;
        debug_assert!(self.frames_free <= self.cfg.cache_frames);
        let used = (self.cfg.cache_frames - self.frames_free) as f64;
        self.frames_used.set(self.now(), used);
    }

    fn set_blocked(&mut self, delta: i64) {
        self.blocked_now = (self.blocked_now as i64 + delta) as usize;
        self.blocked_pages.set(self.now(), self.blocked_now as f64);
    }

    // ---------------- admission & page placement ----------------

    /// Physical address of a transaction's page access, applying the
    /// shadow "scrambled" remap when configured.
    fn addr_of(&mut self, loc: PageLoc) -> u64 {
        if self.scramble {
            // shadow versions scattered the placement: logically adjacent
            // pages live at effectively random addresses within the extent
            let db_pages = self.cfg.db_cylinders as u64 * self.geometry.pages_per_cylinder();
            self.rng.uniform(0, db_pages - 1)
        } else {
            loc.page
        }
    }

    fn diff_region_addr(&self, which: u8, idx: u64) -> u64 {
        // A and D files occupy the cylinders just past the database extent
        let per_cyl = self.geometry.pages_per_cylinder();
        let a_base = self.geometry.cylinder_start(self.cfg.db_cylinders);
        let d_base = self.geometry.cylinder_start(self.cfg.db_cylinders + 20);
        match which {
            0 => a_base + (idx % (20 * per_cyl)),
            _ => d_base + (idx % (20 * per_cyl)),
        }
    }

    fn admit(&mut self, t: usize) {
        self.outstanding += 1;
        if let RecoveryOverlay::ShadowPt(s) = &self.cfg.overlay {
            // page-table pipeline: only a small window ahead of the read
            // frontier has its PT entries resolved; the rest follow as
            // reads issue (see pump_disk)
            let window = s.pt_lookahead.max(1);
            for _ in 0..window {
                self.pt_advance(t);
            }
        } else {
            let spec_pages: Vec<PageLoc> = self.txns[t].spec.pages.clone();
            for (i, loc) in spec_pages.iter().enumerate() {
                let addr = self.addr_of(*loc);
                let item = WorkItem {
                    kind: ItemKind::Read,
                    pr: (t, i),
                    addr,
                };
                self.route_read(loc.disk, item);
            }
        }
        // differential-file extra reads
        if let RecoveryOverlay::DiffFile(_) = &self.cfg.overlay {
            let primary = self.txns[t].spec.pages.first().map_or(0, |l| l.disk);
            let n = self.txns[t].spec.n_pages();
            let a_extra = self.txns[t].to_process - n;
            let d_extra = self.txns[t].d_pending;
            for i in 0..a_extra {
                let jitter = self.rng.uniform(0, 4000);
                let addr = self.diff_region_addr(0, jitter + i as u64);
                let item = WorkItem {
                    kind: ItemKind::Read,
                    pr: (t, n + i),
                    addr,
                };
                self.scheds[(primary + i) % self.cfg.data_disks].push_read(t, item);
            }
            for i in 0..d_extra {
                let jitter = self.rng.uniform(0, 4000);
                let addr = self.diff_region_addr(1, jitter + i as u64);
                let item = WorkItem {
                    kind: ItemKind::DiffRead,
                    pr: (t, usize::MAX - i),
                    addr,
                };
                self.scheds[(primary + i) % self.cfg.data_disks].push_read(t, item);
            }
        }
    }

    /// Resolve the page-table entry for the transaction's next unresolved
    /// access and hand the read to the scheduler (or park it waiting for
    /// its PT page).
    fn pt_advance(&mut self, t: usize) {
        // Resolve entries until one misses the page-table buffer (a miss
        // costs a PT-disk access and ends this advance; buffer hits are
        // free, so a run of accesses covered by one resident PT page —
        // the sequential case — releases in a single sweep).
        loop {
            let i = self.txns[t].pt_next;
            if i >= self.txns[t].spec.pages.len() {
                return;
            }
            self.txns[t].pt_next = i + 1;
            let loc = self.txns[t].spec.pages[i];
            // the page table is indexed by the *logical* page; scrambling
            // scatters the physical address, not the PT entry
            let ptpage = Self::ptpage_of(loc.disk, loc.page);
            let addr = self.addr_of(loc);
            let item = WorkItem {
                kind: ItemKind::Read,
                pr: (t, i),
                addr,
            };
            let hit = self
                .pt_buffer
                .as_mut()
                .map(|b| b.contains(ptpage))
                .unwrap_or(true);
            if hit {
                self.scheds[loc.disk].push_read(t, item);
                continue;
            }
            self.pt_waiting
                .entry(ptpage)
                .or_default()
                .push((loc.disk, item));
            if self.pt_inflight.insert(ptpage) {
                self.issue_pt(ptpage, None);
            }
            return;
        }
    }

    /// Route a base-page read for the non-shadow overlays.
    fn route_read(&mut self, disk: usize, item: WorkItem) {
        debug_assert!(self.pt_buffer.is_none());
        self.scheds[disk].push_read(item.pr.0, item);
    }

    fn ptpage_of(disk: usize, addr: u64) -> u64 {
        (disk as u64) << 32 | (addr / PT_ENTRIES_PER_PAGE)
    }

    /// Issue a page-table disk access. `commit_for` distinguishes a commit
    /// reread (leads to a write) from a fetch for reads.
    fn issue_pt(&mut self, ptpage: u64, commit_for: Option<usize>) {
        let n = self.pt_procs.len();
        let pidx = (ptpage as usize) % n;
        // PT pages laid out sequentially on the PT disk
        let addr = (ptpage & 0xffff_ffff) % self.geometry.total_pages();
        let now = self.now();
        let proc = &mut self.pt_procs[pidx];
        let meta = match commit_for {
            None => PtMeta::Fetch(ptpage),
            Some(txn) => PtMeta::CommitRead { txn, ptpage },
        };
        let (id, started) = proc.disk.submit(now, RequestKind::Read, vec![addr], 0);
        proc.meta.insert(id, meta);
        if let Some(s) = started {
            self.cal.schedule(s.done_at, Ev::PtDiskDone(pidx));
        }
    }

    fn issue_pt_write(&mut self, ptpage: u64, txn: usize) {
        let n = self.pt_procs.len();
        let pidx = (ptpage as usize) % n;
        let addr = (ptpage & 0xffff_ffff) % self.geometry.total_pages();
        let now = self.now();
        let proc = &mut self.pt_procs[pidx];
        let (id, started) = proc.disk.submit(now, RequestKind::Write, vec![addr], 0);
        proc.meta.insert(id, PtMeta::CommitWrite { txn });
        if let Some(s) = started {
            self.cal.schedule(s.done_at, Ev::PtDiskDone(pidx));
        }
    }

    // ---------------- pumping ----------------

    fn pump(&mut self) {
        // start data-disk work
        for d in 0..self.disks.len() {
            self.pump_disk(d);
        }
        // assign ready pages to free QPs
        while !self.ready.is_empty() && !self.free_qps.is_empty() {
            let pr = self.ready.pop_front().expect("nonempty");
            let qp = self.free_qps.pop().expect("nonempty");
            let service = self.qp_service(pr);
            self.qp_task[qp] = Some(pr);
            self.qp_busy_ms += service.as_ms();
            self.cal.schedule_in(service, Ev::QpDone(qp));
        }
    }

    fn pump_disk(&mut self, d: usize) {
        if self.disks[d].is_busy() || self.scheds[d].is_empty() {
            return;
        }
        let Some(batch) =
            self.scheds[d].next_batch(self.cfg.disk_mode, &self.geometry, self.frames_free)
        else {
            return;
        };
        let kind = batch[0].kind;
        let claims = match kind {
            ItemKind::Read | ItemKind::DiffRead | ItemKind::ScratchRead => batch.len(),
            _ => 0,
        };
        if claims > 0 {
            self.claim_frames(claims);
        }
        // mark txn started at first frame allocation
        let now = self.now();
        for item in &batch {
            if item.pr.1 != usize::MAX && item.pr.0 < self.txns.len() {
                let t = &mut self.txns[item.pr.0];
                if t.started.is_none() {
                    t.started = Some(now);
                }
            }
        }
        let req_kind = match kind {
            ItemKind::Read | ItemKind::DiffRead | ItemKind::ScratchRead => RequestKind::Read,
            ItemKind::Write | ItemKind::ScratchWrite | ItemKind::OutWrite => RequestKind::Write,
        };
        let pages: Vec<u64> = if kind == ItemKind::Read
            && matches!(self.cfg.overlay, RecoveryOverlay::VersionSelect)
        {
            // version selection: fetch both twin blocks of each page (the
            // twin shares the aligned pair, so no extra arm movement —
            // only the additional transfer)
            batch.iter().flat_map(|i| [i.addr, i.addr ^ 1]).collect()
        } else {
            batch.iter().map(|i| i.addr).collect()
        };
        let (id, started) = self.disks[d].submit(now, req_kind, pages, 0);
        // page-table pipeline: each issued read pulls the next PT
        // resolution along
        if kind == ItemKind::Read && matches!(self.cfg.overlay, RecoveryOverlay::ShadowPt(_)) {
            let issued: Vec<usize> = batch.iter().map(|i| i.pr.0).collect();
            for t in issued {
                self.pt_advance(t);
            }
        }
        self.req_meta[d].insert(id, (kind, batch));
        if let Some(s) = started {
            self.cal.schedule(s.done_at, Ev::DataDiskDone(d));
        }
    }

    fn qp_service(&mut self, pr: Pr) -> SimTime {
        let base = SimTime::from_ms(self.cfg.cpu_per_page_ms);
        let (t, i) = pr;
        let is_write = i < self.txns[t].spec.writes.len() && self.txns[t].spec.writes[i];
        match &self.cfg.overlay {
            RecoveryOverlay::Logging(l) if is_write => base + SimTime::from_ms(l.fragment_cpu_ms),
            RecoveryOverlay::DiffFile(d) => {
                let n = self.txns[t].spec.n_pages() as f64;
                let d_pages = (n * d.size_fraction).ceil();
                let pays = match d.approach {
                    ScanApproach::Basic => true,
                    ScanApproach::Optimal => self.rng.chance(d.qualify_fraction),
                };
                if pays {
                    base + SimTime::from_ms(
                        self.cfg.cpu_per_page_ms * d.setdiff_cpu_factor * d_pages,
                    )
                } else {
                    base
                }
            }
            _ => base,
        }
    }

    // ---------------- event handlers ----------------

    fn on_data_disk_done(&mut self, d: usize) {
        let now = self.now();
        let (req, next) = self.disks[d].complete(now);
        if let Some(s) = next {
            self.cal.schedule(s.done_at, Ev::DataDiskDone(d));
        }
        let (kind, items) = self.req_meta[d].remove(&req.id).expect("request meta");
        match kind {
            ItemKind::Read => {
                for item in items {
                    self.ready.push_back(item.pr);
                }
            }
            ItemKind::DiffRead => {
                // D-file pages: consumed by set-difference work already
                // charged to the B∪A pages; release frames immediately.
                let n = items.len();
                self.release_frames(n);
                for item in items {
                    let t = item.pr.0;
                    self.txns[t].d_pending -= 1;
                    self.check_processing_end(t);
                }
            }
            ItemKind::Write => {
                let n = items.len();
                self.release_frames(n);
                for item in items {
                    let t = item.pr.0;
                    self.txns[t].home_writes_done += 1;
                    self.maybe_complete(t);
                }
            }
            ItemKind::OutWrite => {
                // frame was released when the source page finished
                // processing; only completion bookkeeping remains
                for item in items {
                    let t = item.pr.0;
                    self.txns[t].home_writes_done += 1;
                    self.maybe_complete(t);
                }
            }
            ItemKind::ScratchWrite => {
                let no_redo = matches!(
                    &self.cfg.overlay,
                    RecoveryOverlay::Overwriting(o)
                        if o.variant == crate::config::OverwriteVariant::NoRedo
                );
                for item in &items {
                    let t = item.pr.0;
                    self.txns[t].scratch_done += 1;
                    if no_redo {
                        // shadow saved: overwrite the home copy in place
                        // (the frame stays claimed until the home write)
                        let home = self.txns[t]
                            .install_queue
                            .iter()
                            .find(|(pr, _, _)| *pr == item.pr)
                            .map(|&(_, _, h)| h)
                            .expect("install entry");
                        let disk = self.txns[t].spec.pages[item.pr.1].disk;
                        self.scheds[disk].push_write(
                            t,
                            WorkItem {
                                kind: ItemKind::Write,
                                pr: item.pr,
                                addr: home,
                            },
                        );
                    } else {
                        self.release_frames(1);
                        self.maybe_start_install(t);
                    }
                }
            }
            ItemKind::ScratchRead => {
                // staged page back in cache: write it home
                for item in items {
                    let t = item.pr.0;
                    let home = self.txns[t]
                        .install_queue
                        .iter()
                        .find(|(pr, _, _)| *pr == item.pr)
                        .map(|&(_, _, h)| h)
                        .expect("install entry");
                    let disk = self.txns[t].spec.pages[item.pr.1].disk;
                    self.scheds[disk].push_write(
                        t,
                        WorkItem {
                            kind: ItemKind::Write,
                            pr: item.pr,
                            addr: home,
                        },
                    );
                }
            }
        }
    }

    fn on_qp_done(&mut self, qp: usize) {
        let pr = self.qp_task[qp].take().expect("QP busy");
        self.free_qps.push(qp);
        self.pages_processed += 1;
        let (t, i) = pr;
        let is_write = i < self.txns[t].spec.writes.len() && self.txns[t].spec.writes[i];
        if is_write {
            self.on_page_updated(qp, pr);
        } else {
            // read-only page: frame released after processing
            self.release_frames(1);
        }
        self.txns[t].processed += 1;
        self.check_processing_end(t);
    }

    fn on_page_updated(&mut self, qp: usize, pr: Pr) {
        let (t, i) = pr;
        let loc = self.txns[t].spec.pages[i];
        match &self.cfg.overlay {
            RecoveryOverlay::None
            | RecoveryOverlay::ShadowPt(_)
            | RecoveryOverlay::VersionSelect => {
                // shadow clustered: new version allocated in the same
                // cylinder — timing identical to in-place; scrambled: the
                // scramble remap already randomized the address space
                let addr = self.addr_of(loc);
                self.scheds[loc.disk].push_write(
                    t,
                    WorkItem {
                        kind: ItemKind::Write,
                        pr,
                        addr,
                    },
                );
            }
            RecoveryOverlay::Logging(l) => {
                self.set_blocked(1);
                if l.physical {
                    // two full log pages, queued immediately at the
                    // selected log processor
                    let stream = self
                        .selector
                        .as_mut()
                        .expect("logging selector")
                        .pick(qp, t as u64);
                    self.enqueue_log_page(stream, vec![]);
                    self.enqueue_log_page(stream, vec![pr]);
                } else {
                    let stream = self
                        .selector
                        .as_mut()
                        .expect("logging selector")
                        .pick(qp, t as u64);
                    // transmission to the log processor
                    let ms = l.fragment_bytes as f64 / (l.link_bandwidth_mb_s * 1000.0);
                    // in-transit fragments occupy a cache frame when routed
                    // through the cache (and one is available)
                    let via_cache = l.route_through_cache && self.frames_free > 0;
                    if via_cache {
                        self.claim_frames(1);
                    }
                    self.cal.schedule_in(
                        SimTime::from_ms(ms),
                        Ev::FragArrive {
                            log: stream,
                            pr,
                            bytes: l.fragment_bytes,
                            via_cache,
                        },
                    );
                }
            }
            RecoveryOverlay::Overwriting(o) => {
                let d = loc.disk;
                let slot = self.scratch_base[d] + (self.scratch_cursor[d] % self.scratch_len);
                self.scratch_cursor[d] += 1;
                let home = self.addr_of(loc);
                // NoUndo: the slot holds the *current* copy, installed at
                // commit. NoRedo: the slot holds the *shadow*; once it is
                // saved the home copy is overwritten in place (the chained
                // write issues when the scratch write completes).
                self.txns[t].install_queue.push((pr, slot, home));
                let _ = o;
                self.scheds[d].push_write(
                    t,
                    WorkItem {
                        kind: ItemKind::ScratchWrite,
                        pr,
                        addr: slot,
                    },
                );
            }
            RecoveryOverlay::DiffFile(d) => {
                // no home write: a fraction of an output page joins the
                // A file; frame released now
                self.release_frames(1);
                let frac = d.output_fraction;
                let txn = &mut self.txns[t];
                txn.out_bytes += (4096.0 * frac) as usize;
                if txn.out_bytes >= 4096 && txn.out_pages_issued < txn.home_writes_total {
                    txn.out_bytes -= 4096;
                    txn.out_pages_issued += 1;
                    let idx = txn.out_pages_issued as u64;
                    let addr = self.diff_region_addr(0, 1000 + idx);
                    self.scheds[loc.disk].push_write(
                        t,
                        WorkItem {
                            kind: ItemKind::OutWrite,
                            pr,
                            addr,
                        },
                    );
                }
            }
        }
    }

    /// A full (or force-cut) log page goes to a log disk; `unblock` lists
    /// the updated data pages it covers.
    fn enqueue_log_page(&mut self, stream: usize, unblock: Vec<Pr>) {
        let now = self.now();
        let lp = &mut self.logs[stream];
        // Log-page writes are sequential on the log disk; each write is a
        // separate request and therefore pays rotational latency (the disk
        // model does not chain contiguity across requests).
        let addr = lp.next_append_page % self.geometry.total_pages();
        lp.next_append_page += 1;
        let (id, started) = lp.disk.submit(now, RequestKind::Write, vec![addr], 0);
        lp.unblock.insert(id, unblock);
        lp.pages_written += 1;
        if let Some(s) = started {
            self.cal.schedule(s.done_at, Ev::LogDiskDone(stream));
        }
    }

    fn on_frag_arrive(&mut self, stream: usize, pr: Pr, bytes: usize, via_cache: bool) {
        if via_cache {
            // the fragment's transit frame is freed on arrival
            self.release_frames(1);
        }
        let fragment_txn_done = self.txns[pr.0].processing_finished();
        let lp = &mut self.logs[stream];
        lp.buf_bytes += bytes;
        lp.waiting.push(pr);
        lp.txns_in_buf.insert(pr.0);
        // cut the log page when full — or immediately when the fragment
        // belongs to a transaction already in its commit force
        if lp.buf_bytes >= LOG_PAGE_BYTES || fragment_txn_done {
            lp.buf_bytes = lp.buf_bytes.saturating_sub(LOG_PAGE_BYTES);
            let unblock = std::mem::take(&mut lp.waiting);
            lp.txns_in_buf.clear();
            self.enqueue_log_page(stream, unblock);
        }
    }

    fn on_log_disk_done(&mut self, stream: usize) {
        let now = self.now();
        let (req, next) = self.logs[stream].disk.complete(now);
        if let Some(s) = next {
            self.cal.schedule(s.done_at, Ev::LogDiskDone(stream));
        }
        let unblock = self.logs[stream]
            .unblock
            .remove(&req.id)
            .expect("log request meta");
        for pr in unblock {
            self.set_blocked(-1);
            let (t, i) = pr;
            let loc = self.txns[t].spec.pages[i];
            let addr = self.addr_of(loc);
            self.scheds[loc.disk].push_write(
                t,
                WorkItem {
                    kind: ItemKind::Write,
                    pr,
                    addr,
                },
            );
        }
    }

    fn on_pt_disk_done(&mut self, pidx: usize) {
        let now = self.now();
        let (req, next) = self.pt_procs[pidx].disk.complete(now);
        if let Some(s) = next {
            self.cal.schedule(s.done_at, Ev::PtDiskDone(pidx));
        }
        let meta = self.pt_procs[pidx].meta.remove(&req.id).expect("pt meta");
        match meta {
            PtMeta::Fetch(ptpage) => {
                if let Some(buf) = self.pt_buffer.as_mut() {
                    buf.insert(ptpage);
                }
                self.pt_inflight.remove(&ptpage);
                for (disk, item) in self.pt_waiting.remove(&ptpage).unwrap_or_default() {
                    self.scheds[disk].push_read(item.pr.0, item);
                }
            }
            PtMeta::CommitRead { txn, ptpage } => {
                let _ = ptpage;
                self.issue_pt_write(ptpage, txn);
            }
            PtMeta::CommitWrite { txn } => {
                self.txns[txn].pt_commit_pending -= 1;
                self.maybe_complete(txn);
            }
        }
    }

    // ---------------- transaction lifecycle ----------------

    /// Called whenever processing might have just finished: triggers the
    /// overlay's commit work.
    fn check_processing_end(&mut self, t: usize) {
        if !self.txns[t].processing_finished() {
            return;
        }
        match &self.cfg.overlay {
            RecoveryOverlay::Logging(l) => {
                if !l.physical {
                    // commit force: cut partial log pages holding this
                    // transaction's fragments (fragments still in transit
                    // are force-cut on arrival, see on_frag_arrive)
                    for s in 0..self.logs.len() {
                        if self.logs[s].txns_in_buf.contains(&t) {
                            self.logs[s].buf_bytes = 0;
                            let unblock = std::mem::take(&mut self.logs[s].waiting);
                            self.logs[s].txns_in_buf.clear();
                            self.enqueue_log_page(s, unblock);
                        }
                    }
                }
            }
            RecoveryOverlay::ShadowPt(s) => {
                if !self.txns[t].pt_commit_issued {
                    self.txns[t].pt_commit_issued = true;
                    // update the PT entries of the write set
                    // BTreeSet: deterministic issue order for the PT writes
                    let mut ptpages: std::collections::BTreeSet<u64> = Default::default();
                    let spec = &self.txns[t].spec;
                    for (i, &w) in spec.writes.iter().enumerate() {
                        if w {
                            ptpages.insert(Self::ptpage_of(spec.pages[i].disk, spec.pages[i].page));
                        }
                    }
                    let _ = s;
                    self.txns[t].pt_commit_pending = ptpages.len();
                    for ptpage in ptpages {
                        let hit = self
                            .pt_buffer
                            .as_mut()
                            .map(|b| b.contains(ptpage))
                            .unwrap_or(false);
                        if hit {
                            self.issue_pt_write(ptpage, t);
                        } else {
                            // reread for updating, then write
                            self.issue_pt(ptpage, Some(t));
                        }
                    }
                }
            }
            RecoveryOverlay::Overwriting(o) => {
                if o.variant == crate::config::OverwriteVariant::NoUndo {
                    self.maybe_start_install(t);
                } else {
                    self.maybe_complete(t);
                }
            }
            RecoveryOverlay::DiffFile(_) => {
                // flush the partial output page
                let txn = &mut self.txns[t];
                if txn.out_pages_issued < txn.home_writes_total {
                    txn.out_pages_issued += 1;
                    let pr = (t, 0);
                    let loc = txn.spec.pages[0];
                    let out_idx = txn.out_pages_issued as u64;
                    let addr = self.diff_region_addr(0, 2000 + out_idx);
                    self.scheds[loc.disk].push_write(
                        t,
                        WorkItem {
                            kind: ItemKind::OutWrite,
                            pr,
                            addr,
                        },
                    );
                }
            }
            RecoveryOverlay::None | RecoveryOverlay::VersionSelect => {}
        }
        self.maybe_complete(t);
    }

    fn maybe_start_install(&mut self, t: usize) {
        let txn = &self.txns[t];
        if txn.install_started || !txn.processing_finished() || txn.scratch_done < txn.scratch_total
        {
            return;
        }
        self.txns[t].install_started = true;
        let queue = self.txns[t].install_queue.clone();
        for (pr, slot, _home) in queue {
            let disk = self.txns[t].spec.pages[pr.1].disk;
            self.scheds[disk].push_read(
                t,
                WorkItem {
                    kind: ItemKind::ScratchRead,
                    pr,
                    addr: slot,
                },
            );
        }
        if self.txns[t].install_queue.is_empty() {
            self.maybe_complete(t);
        }
    }

    fn maybe_complete(&mut self, t: usize) {
        let txn = &self.txns[t];
        if txn.completed.is_some()
            || !txn.processing_finished()
            || txn.home_writes_done < txn.home_writes_total
            || txn.pt_commit_pending > 0
            || txn.scratch_done < txn.scratch_total
        {
            return;
        }
        if matches!(
            &self.cfg.overlay,
            RecoveryOverlay::Overwriting(o)
                if o.variant == crate::config::OverwriteVariant::NoUndo
        ) && !txn.install_started
        {
            return;
        }
        let now = self.now();
        let started = txn.started.unwrap_or(now);
        self.txns[t].completed = Some(now);
        self.completions.record((now - started).as_ms());
        self.outstanding -= 1;
        if self.next_admit < self.txns.len() {
            let next = self.next_admit;
            self.next_admit += 1;
            self.admit(next);
        }
    }

    // ---------------- main loop ----------------

    fn run(mut self) -> MachineReport {
        let initial = self.cfg.mpl.min(self.txns.len());
        self.next_admit = initial;
        for t in 0..initial {
            self.admit(t);
        }
        self.pump();
        let mut guard: u64 = 0;
        while let Some((_, ev)) = self.cal.next() {
            guard += 1;
            assert!(
                guard < 50_000_000,
                "simulation did not converge (event storm)"
            );
            match ev {
                Ev::DataDiskDone(d) => self.on_data_disk_done(d),
                Ev::LogDiskDone(l) => self.on_log_disk_done(l),
                Ev::PtDiskDone(p) => self.on_pt_disk_done(p),
                Ev::QpDone(q) => self.on_qp_done(q),
                Ev::FragArrive {
                    log,
                    pr,
                    bytes,
                    via_cache,
                } => self.on_frag_arrive(log, pr, bytes, via_cache),
            }
            self.pump();
        }
        assert!(
            self.txns.iter().all(|t| t.completed.is_some()),
            "batch did not drain: {} incomplete (frames_free={}, ready={}, blocked={})",
            self.txns.iter().filter(|t| t.completed.is_none()).count(),
            self.frames_free,
            self.ready.len(),
            self.blocked_now,
        );

        let end = self.now();
        let total_ms = end.as_ms();
        let pages = self.pages_processed.max(1);
        MachineReport {
            total_time_ms: total_ms,
            pages_processed: self.pages_processed,
            exec_time_per_page_ms: total_ms / pages as f64,
            mean_completion_ms: self.completions.mean(),
            data_disk_util: self.disks.iter().map(|d| d.utilization(end)).collect(),
            log_disk_util: self.logs.iter().map(|l| l.disk.utilization(end)).collect(),
            pt_disk_util: self
                .pt_procs
                .iter()
                .map(|p| p.disk.utilization(end))
                .collect(),
            qp_util: self.qp_busy_ms / (self.cfg.query_processors as f64 * total_ms),
            data_disk_accesses: self.disks.iter().map(|d| d.stats().accesses.get()).sum(),
            data_pages_moved: self.disks.iter().map(|d| d.stats().pages.get()).sum(),
            log_pages_written: self.logs.iter().map(|l| l.pages_written).sum(),
            mean_blocked_pages: self.blocked_pages.mean(end),
            mean_frames_used: self.frames_used.mean(end),
            txns_completed: self.completions.count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AccessPattern, LoggingConfig, MachineConfig};

    fn quick(cfg: MachineConfig) -> MachineReport {
        Machine::new(cfg).run()
    }

    fn small_base() -> MachineConfig {
        MachineConfig {
            num_txns: 10,
            mpl: 3,
            max_pages: 60,
            ..MachineConfig::default()
        }
    }

    #[test]
    fn bare_machine_drains_and_reports() {
        let r = quick(small_base());
        assert_eq!(r.txns_completed, 10);
        assert!(r.total_time_ms > 0.0);
        assert!(r.exec_time_per_page_ms > 0.0);
        assert!(r.pages_processed > 0);
        assert!(r.mean_completion_ms > 0.0);
        assert_eq!(r.data_disk_util.len(), 2);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = quick(small_base());
        let b = quick(small_base());
        assert_eq!(a.total_time_ms, b.total_time_ms);
        assert_eq!(a.pages_processed, b.pages_processed);
    }

    #[test]
    fn parallel_disks_faster_on_sequential() {
        let conv = quick(MachineConfig {
            access: AccessPattern::Sequential,
            disk_mode: DiskMode::Conventional,
            ..small_base()
        });
        let par = quick(MachineConfig {
            access: AccessPattern::Sequential,
            disk_mode: DiskMode::ParallelAccess,
            ..small_base()
        });
        assert!(
            par.exec_time_per_page_ms < conv.exec_time_per_page_ms,
            "parallel {} !< conventional {}",
            par.exec_time_per_page_ms,
            conv.exec_time_per_page_ms
        );
    }

    #[test]
    fn sequential_faster_than_random_on_conventional() {
        let rnd = quick(small_base());
        let seq = quick(MachineConfig {
            access: AccessPattern::Sequential,
            ..small_base()
        });
        assert!(seq.exec_time_per_page_ms < rnd.exec_time_per_page_ms);
    }

    #[test]
    fn logical_logging_nearly_free() {
        let bare = quick(small_base());
        let logged = quick(MachineConfig {
            overlay: RecoveryOverlay::Logging(LoggingConfig::default()),
            ..small_base()
        });
        assert_eq!(logged.txns_completed, 10);
        let ratio = logged.exec_time_per_page_ms / bare.exec_time_per_page_ms;
        assert!(
            (0.9..1.15).contains(&ratio),
            "logging should be ~free: ratio {ratio}"
        );
        assert!(logged.log_pages_written > 0);
        assert!(logged.mean_log_disk_util() < 0.2);
    }

    #[test]
    fn physical_logging_hurts_parallel_sequential() {
        // the Table 3 machine, shortened batch
        let base = MachineConfig {
            num_txns: 12,
            ..MachineConfig::table3_machine()
        };
        let bare = quick(base.clone());
        let phys = quick(MachineConfig {
            overlay: RecoveryOverlay::Logging(LoggingConfig {
                physical: true,
                ..LoggingConfig::default()
            }),
            ..base
        });
        assert!(
            phys.exec_time_per_page_ms > 1.5 * bare.exec_time_per_page_ms,
            "physical logging must bottleneck: {} vs {}",
            phys.exec_time_per_page_ms,
            bare.exec_time_per_page_ms
        );
    }

    #[test]
    fn more_log_disks_help_physical_logging() {
        let base = MachineConfig {
            num_txns: 12,
            ..MachineConfig::table3_machine()
        };
        let one = quick(MachineConfig {
            overlay: RecoveryOverlay::Logging(LoggingConfig {
                physical: true,
                log_disks: 1,
                ..LoggingConfig::default()
            }),
            ..base.clone()
        });
        let four = quick(MachineConfig {
            overlay: RecoveryOverlay::Logging(LoggingConfig {
                physical: true,
                log_disks: 4,
                ..LoggingConfig::default()
            }),
            ..base
        });
        assert!(
            four.exec_time_per_page_ms < one.exec_time_per_page_ms,
            "4 log disks {} !< 1 log disk {}",
            four.exec_time_per_page_ms,
            one.exec_time_per_page_ms
        );
    }

    #[test]
    fn shadow_pt_runs_and_reports_pt_util() {
        let r = quick(MachineConfig {
            overlay: RecoveryOverlay::ShadowPt(Default::default()),
            ..small_base()
        });
        assert_eq!(r.txns_completed, 10);
        assert_eq!(r.pt_disk_util.len(), 1);
        assert!(r.pt_disk_util[0] > 0.0);
    }

    #[test]
    fn scrambled_shadow_devastates_sequential() {
        // 25 txns: the 15-txn batch leaves the ratio within seed noise of
        // the 1.4x threshold; a larger sample stabilizes it near 1.5x.
        let base = MachineConfig {
            access: AccessPattern::Sequential,
            num_txns: 25,
            ..MachineConfig::default()
        };
        let clustered = quick(MachineConfig {
            overlay: RecoveryOverlay::ShadowPt(crate::config::ShadowPtConfig {
                clustered: true,
                ..Default::default()
            }),
            ..base.clone()
        });
        let scrambled = quick(MachineConfig {
            overlay: RecoveryOverlay::ShadowPt(crate::config::ShadowPtConfig {
                clustered: false,
                ..Default::default()
            }),
            ..base
        });
        assert!(
            scrambled.exec_time_per_page_ms > 1.4 * clustered.exec_time_per_page_ms,
            "scrambled {} !> clustered {}",
            scrambled.exec_time_per_page_ms,
            clustered.exec_time_per_page_ms
        );
    }

    #[test]
    fn overwriting_completes_with_install_io() {
        let bare = quick(small_base());
        let ow = quick(MachineConfig {
            overlay: RecoveryOverlay::Overwriting(Default::default()),
            ..small_base()
        });
        assert_eq!(ow.txns_completed, 10);
        // installs add disk accesses
        assert!(ow.data_disk_accesses > bare.data_disk_accesses);
        assert!(ow.exec_time_per_page_ms > bare.exec_time_per_page_ms);
    }

    #[test]
    fn difffile_basic_worse_than_optimal() {
        let base = small_base();
        let mk = |approach| MachineConfig {
            overlay: RecoveryOverlay::DiffFile(crate::config::DiffFileConfig {
                approach,
                ..Default::default()
            }),
            ..base.clone()
        };
        let basic = quick(mk(ScanApproach::Basic));
        let optimal = quick(mk(ScanApproach::Optimal));
        assert!(
            basic.exec_time_per_page_ms > optimal.exec_time_per_page_ms,
            "basic {} !> optimal {}",
            basic.exec_time_per_page_ms,
            optimal.exec_time_per_page_ms
        );
    }

    #[test]
    fn difffile_larger_files_degrade() {
        let mk = |frac: f64| MachineConfig {
            overlay: RecoveryOverlay::DiffFile(crate::config::DiffFileConfig {
                size_fraction: frac,
                ..Default::default()
            }),
            ..small_base()
        };
        let ten = quick(mk(0.10));
        let twenty = quick(mk(0.20));
        assert!(twenty.exec_time_per_page_ms > ten.exec_time_per_page_ms);
    }

    #[test]
    fn single_page_txns_work() {
        let r = quick(MachineConfig {
            min_pages: 1,
            max_pages: 1,
            num_txns: 5,
            mpl: 2,
            ..MachineConfig::default()
        });
        assert_eq!(r.txns_completed, 5);
    }

    #[test]
    fn mpl_one_serializes() {
        let r1 = quick(MachineConfig {
            mpl: 1,
            ..small_base()
        });
        let r3 = quick(small_base());
        // with one txn at a time completion is faster but total throughput
        // (per page) no better
        assert!(r1.mean_completion_ms < r3.mean_completion_ms);
        assert_eq!(r1.txns_completed, 10);
    }
}
