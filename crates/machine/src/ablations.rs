//! Ablation experiments beyond the paper's numbered tables.
//!
//! The paper reports several findings in prose without a table; these
//! drivers quantify them with the same simulator, plus a few sensitivity
//! sweeps of the calibrated machine:
//!
//! * [`link_bandwidth`] — §4.1.3's first experiment: the query-processor ↔
//!   log-processor link at 1.0 / 0.1 / 0.01 MB/s;
//! * [`route_through_cache`] — §4.1.3's second experiment: fragments
//!   routed through the disk cache instead of a dedicated link;
//! * [`version_selection`] — §4.2.5's analysis: reading both twin blocks
//!   per access on an I/O-bound machine;
//! * [`mpl_sweep`] and [`qp_sweep`] — sensitivity of the calibrated
//!   machine to multiprogramming level and processor count (the companion
//!   study \[22\], "Whither Hundreds of Processors in a Database Machine").

use crate::config::{
    LoggingConfig, MachineConfig, OverwriteVariant, OverwritingConfig, RecoveryOverlay,
    ShadowPtConfig,
};
use crate::experiments::{ExpRow, ExpTable};
use crate::machine::Machine;

fn base_configs(txns: usize) -> Vec<(&'static str, MachineConfig)> {
    MachineConfig::paper_configurations()
        .into_iter()
        .map(|(name, mut cfg)| {
            cfg.num_txns = txns;
            (name, cfg)
        })
        .collect()
}

/// §4.1.3: effective link bandwidth between query and log processors.
pub fn link_bandwidth(txns: usize) -> ExpTable {
    let mut rows = Vec::new();
    for (name, cfg) in base_configs(txns) {
        let mut row = ExpRow::new(name);
        for bw in [1.0, 0.1, 0.01] {
            let mut c = cfg.clone();
            c.overlay = RecoveryOverlay::Logging(LoggingConfig {
                link_bandwidth_mb_s: bw,
                ..LoggingConfig::default()
            });
            let r = Machine::new(c).run();
            row.push(format!("{bw} MB/s exec"), r.exec_time_per_page_ms);
            row.push(format!("{bw} MB/s blocked"), r.mean_blocked_pages);
        }
        rows.push(row);
    }
    ExpTable {
        id: "ablation_bandwidth",
        title: "Link Bandwidth between Query and Log Processors (§4.1.3)",
        rows,
    }
}

/// §4.1.3: dedicated interconnection vs routing fragments through the
/// disk cache.
pub fn route_through_cache(txns: usize) -> ExpTable {
    let mut rows = Vec::new();
    for (name, cfg) in base_configs(txns) {
        let mut row = ExpRow::new(name);
        for (label, via_cache) in [("dedicated link", false), ("through cache", true)] {
            let mut c = cfg.clone();
            c.overlay = RecoveryOverlay::Logging(LoggingConfig {
                route_through_cache: via_cache,
                ..LoggingConfig::default()
            });
            let r = Machine::new(c).run();
            row.push(format!("{label} exec"), r.exec_time_per_page_ms);
            row.push(format!("{label} frames"), r.mean_frames_used);
        }
        rows.push(row);
    }
    ExpTable {
        id: "ablation_route_cache",
        title: "Routing Log Fragments through the Disk Cache (§4.1.3)",
        rows,
    }
}

/// §4.2.5: version selection vs the thru-page-table shadow.
pub fn version_selection(txns: usize) -> ExpTable {
    let mut rows = Vec::new();
    for (name, cfg) in base_configs(txns) {
        let bare = Machine::new(cfg.clone()).run();
        let vs = {
            let mut c = cfg.clone();
            c.overlay = RecoveryOverlay::VersionSelect;
            Machine::new(c).run()
        };
        let thru = {
            let mut c = cfg.clone();
            c.overlay = RecoveryOverlay::ShadowPt(ShadowPtConfig {
                pt_buffer: 50,
                ..ShadowPtConfig::default()
            });
            Machine::new(c).run()
        };
        let mut row = ExpRow::new(name);
        row.push("bare", bare.exec_time_per_page_ms);
        row.push("version select", vs.exec_time_per_page_ms);
        row.push("thru PT buf=50", thru.exec_time_per_page_ms);
        rows.push(row);
    }
    ExpTable {
        id: "ablation_version_select",
        title: "Version Selection vs Thru-Page-Table (§4.2.5)",
        rows,
    }
}

/// Multiprogramming-level sensitivity of the bare machine.
pub fn mpl_sweep(txns: usize) -> ExpTable {
    let mut rows = Vec::new();
    for (name, cfg) in base_configs(txns) {
        let mut row = ExpRow::new(name);
        for mpl in [1usize, 2, 3, 5, 8] {
            let mut c = cfg.clone();
            c.mpl = mpl;
            let r = Machine::new(c).run();
            row.push(format!("mpl {mpl} exec"), r.exec_time_per_page_ms);
            row.push(format!("mpl {mpl} compl"), r.mean_completion_ms);
        }
        rows.push(row);
    }
    ExpTable {
        id: "ablation_mpl",
        title: "Multiprogramming-Level Sensitivity (bare machine)",
        rows,
    }
}

/// Query-processor-count sensitivity (cf. \[22\]): on an I/O-bound machine
/// most processors idle; only the parallel-sequential configuration can
/// use more of them.
pub fn qp_sweep(txns: usize) -> ExpTable {
    let mut rows = Vec::new();
    for (name, cfg) in base_configs(txns) {
        let mut row = ExpRow::new(name);
        for qps in [5usize, 25, 75] {
            let mut c = cfg.clone();
            c.query_processors = qps;
            let r = Machine::new(c).run();
            row.push(format!("{qps} QPs exec"), r.exec_time_per_page_ms);
            row.push(format!("{qps} QPs util"), r.qp_util);
        }
        rows.push(row);
    }
    ExpTable {
        id: "ablation_qps",
        title: "Query-Processor Count Sensitivity (cf. [22])",
        rows,
    }
}

/// No-undo vs no-redo overwriting: the paper simulates only the no-undo
/// variant; this ablation quantifies the trade (no-redo writes every
/// update home immediately, no-undo defers everything to commit).
pub fn overwrite_variants(txns: usize) -> ExpTable {
    let mut rows = Vec::new();
    for (name, cfg) in base_configs(txns) {
        let mut row = ExpRow::new(name);
        row.push(
            "bare",
            Machine::new(cfg.clone()).run().exec_time_per_page_ms,
        );
        for (label, variant) in [
            ("no-undo", OverwriteVariant::NoUndo),
            ("no-redo", OverwriteVariant::NoRedo),
        ] {
            let mut c = cfg.clone();
            c.overlay = RecoveryOverlay::Overwriting(OverwritingConfig {
                variant,
                ..OverwritingConfig::default()
            });
            let r = Machine::new(c).run();
            row.push(format!("{label} exec"), r.exec_time_per_page_ms);
            row.push(format!("{label} compl"), r.mean_completion_ms);
        }
        rows.push(row);
    }
    ExpTable {
        id: "ablation_overwrite_variants",
        title: "Overwriting Variants: No-Undo vs No-Redo",
        rows,
    }
}

/// Recovery time vs checkpoint interval × redo worker count, measured on
/// the functional WAL engine with the checkpoint-bounded parallel restart
/// engine ([`rmdb_restart`]).
///
/// The workload commits `txns` single-page transactions while one
/// long-lived transaction stays open, so every auto-checkpoint is fuzzy
/// and the logs are retained rather than truncated — the restart then has
/// real analysis/redo work to bound and to parallelise. Rows sweep the
/// checkpoint interval (none / coarse / fine); columns report serial
/// full-log replay (`WalDb::recover`) against the restart engine at
/// K ∈ {1, 2, 4} redo workers, plus the scan accounting that explains the
/// trend: finer checkpoints exempt more records from redo, and more
/// workers shrink the redo phase of what remains.
pub fn restart_time(txns: usize) -> ExpTable {
    use rmdb_restart::{restart, RestartConfig};
    use rmdb_wal::{CrashImage, WalConfig, WalDb};
    use std::time::Instant;

    let mk_cfg = |ckpt_every: u64| WalConfig {
        data_pages: 2048,
        pool_frames: 64,
        log_streams: 4,
        log_frames: 1 << 16,
        ckpt_every_commits: ckpt_every,
        ..WalConfig::default()
    };
    // 256-byte fragments over 1600 pages: redo pushes real bytes, so the
    // worker axis measures something. The `+ 1` on the intervals keeps
    // them from dividing `txns` exactly — the last auto-checkpoint then
    // lands before the log tail, leaving the restart a redo remainder.
    let build = |ckpt_every: u64| -> CrashImage {
        let mut db = WalDb::new(mk_cfg(ckpt_every));
        let drone = db.begin();
        db.write(drone, 2047, 0, b"drone").expect("drone write");
        for i in 0..txns as u64 {
            let t = db.begin();
            let payload = [(i % 251) as u8; 256];
            db.write(t, i % 1600, (i % 14) as usize * 256, &payload)
                .expect("workload write");
            db.commit(t).expect("workload commit");
        }
        db.crash_image()
    };

    let coarse = (txns as u64 / 4 + 1).max(2);
    let fine = (txns as u64 / 16 + 1).max(2);
    let mut rows = Vec::new();
    for (label, interval) in [
        ("no checkpoints".to_string(), 0u64),
        (format!("ckpt every {coarse} commits"), coarse),
        (format!("ckpt every {fine} commits"), fine),
    ] {
        let mut row = ExpRow::new(label);
        let image = build(interval);
        let t0 = Instant::now();
        let (_, serial) = WalDb::recover(image, mk_cfg(interval)).expect("serial recover");
        row.push("serial replay ms", t0.elapsed().as_secs_f64() * 1e3);
        for k in [1usize, 2, 4] {
            let rcfg = RestartConfig {
                workers: k,
                ..RestartConfig::default()
            };
            let (_, rep) = restart(build(interval), mk_cfg(interval), &rcfg).expect("restart");
            row.push(format!("K={k} ms"), rep.timings.total.as_secs_f64() * 1e3);
            if k == 4 {
                row.push("records scanned", rep.base.records_scanned as f64);
                row.push("records skipped", rep.records_skipped as f64);
            }
        }
        row.push("serial records scanned", serial.records_scanned as f64);
        rows.push(row);
    }
    ExpTable {
        id: "ablation_restart_time",
        title: "Recovery Time vs Checkpoint Interval and Redo Workers (restart engine)",
        rows,
    }
}

/// All ablations, in presentation order.
pub fn all_ablations(txns: usize) -> Vec<ExpTable> {
    vec![
        link_bandwidth(txns),
        route_through_cache(txns),
        version_selection(txns),
        overwrite_variants(txns),
        mpl_sweep(txns),
        qp_sweep(txns),
        restart_time(txns),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: usize = 10;

    #[test]
    fn bandwidth_is_immaterial() {
        let t = link_bandwidth(T);
        for row in &t.rows {
            let fast = row.get("1 MB/s exec").unwrap();
            let slow = row.get("0.01 MB/s exec").unwrap();
            assert!(
                (slow - fast).abs() / fast < 0.1,
                "{}: {fast} vs {slow}",
                row.label
            );
            // but the slow link does make fragments (and their pages) wait
            assert!(
                row.get("0.01 MB/s blocked").unwrap() >= row.get("1 MB/s blocked").unwrap() * 0.8
            );
        }
    }

    #[test]
    fn cache_routing_is_harmless() {
        let t = route_through_cache(T);
        for row in &t.rows {
            let a = row.get("dedicated link exec").unwrap();
            let b = row.get("through cache exec").unwrap();
            assert!((b - a).abs() / a < 0.1, "{}: {a} vs {b}", row.label);
        }
    }

    #[test]
    fn version_selection_loses_on_io_bound_configs() {
        let t = version_selection(T);
        for row in &t.rows {
            if row.label.contains("Random") {
                let vs = row.get("version select").unwrap();
                let thru = row.get("thru PT buf=50").unwrap();
                assert!(
                    vs > thru,
                    "{}: version selection must lose on I/O-bound machines ({vs} vs {thru})",
                    row.label
                );
            }
        }
    }

    #[test]
    fn both_overwrite_variants_cost_more_than_bare() {
        let t = overwrite_variants(T);
        for row in &t.rows {
            let bare = row.get("bare").unwrap();
            assert!(
                row.get("no-undo exec").unwrap() > bare * 1.02,
                "{}",
                row.label
            );
            assert!(
                row.get("no-redo exec").unwrap() > bare * 1.02,
                "{}",
                row.label
            );
        }
    }

    #[test]
    fn completion_grows_with_mpl() {
        let t = mpl_sweep(T);
        for row in &t.rows {
            let c1 = row.get("mpl 1 compl").unwrap();
            let c8 = row.get("mpl 8 compl").unwrap();
            assert!(c8 > c1, "{}: completion must grow with MPL", row.label);
        }
    }

    #[test]
    fn restart_time_checkpoints_bound_the_scan() {
        let t = restart_time(240);
        assert_eq!(t.rows.len(), 3);
        let none = &t.rows[0];
        let fine = &t.rows[2];
        // without checkpoints nothing can be skipped; with fine-grained
        // checkpoints the bound must exempt a chunk of the log from redo
        assert_eq!(none.get("records skipped"), Some(0.0));
        assert!(
            fine.get("records skipped").unwrap() > 0.0,
            "checkpoint bound must skip records: {fine:?}"
        );
        assert!(fine.get("records scanned").unwrap() > 0.0);
        // the coarse interval checkpoints too, so it must also skip
        assert!(t.rows[1].get("records skipped").unwrap() > 0.0);
        for row in &t.rows {
            for k in [1, 2, 4] {
                assert!(row.get(&format!("K={k} ms")).unwrap() >= 0.0);
            }
            assert!(row.get("serial replay ms").unwrap() >= 0.0);
        }
    }

    #[test]
    fn extra_qps_only_help_parallel_sequential() {
        let t = qp_sweep(T);
        let ps = t
            .rows
            .iter()
            .find(|r| r.label == "Parallel-Sequential")
            .unwrap();
        let cr = t
            .rows
            .iter()
            .find(|r| r.label == "Conventional-Random")
            .unwrap();
        // PS gains from 25 → 75 QPs; CR does not care
        assert!(ps.get("75 QPs exec").unwrap() < ps.get("25 QPs exec").unwrap() * 0.95);
        let cr25 = cr.get("25 QPs exec").unwrap();
        let cr75 = cr.get("75 QPs exec").unwrap();
        assert!((cr75 - cr25).abs() / cr25 < 0.05);
        // and CR's processors are mostly idle, as [22] found
        assert!(cr.get("75 QPs util").unwrap() < 0.1);
    }
}
