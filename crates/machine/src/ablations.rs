//! Ablation experiments beyond the paper's numbered tables.
//!
//! The paper reports several findings in prose without a table; these
//! drivers quantify them with the same simulator, plus a few sensitivity
//! sweeps of the calibrated machine:
//!
//! * [`link_bandwidth`] — §4.1.3's first experiment: the query-processor ↔
//!   log-processor link at 1.0 / 0.1 / 0.01 MB/s;
//! * [`route_through_cache`] — §4.1.3's second experiment: fragments
//!   routed through the disk cache instead of a dedicated link;
//! * [`version_selection`] — §4.2.5's analysis: reading both twin blocks
//!   per access on an I/O-bound machine;
//! * [`mpl_sweep`] and [`qp_sweep`] — sensitivity of the calibrated
//!   machine to multiprogramming level and processor count (the companion
//!   study \[22\], "Whither Hundreds of Processors in a Database Machine").

use crate::config::{LoggingConfig, MachineConfig, OverwriteVariant, OverwritingConfig, RecoveryOverlay, ShadowPtConfig};
use crate::experiments::{ExpRow, ExpTable};
use crate::machine::Machine;

fn base_configs(txns: usize) -> Vec<(&'static str, MachineConfig)> {
    MachineConfig::paper_configurations()
        .into_iter()
        .map(|(name, mut cfg)| {
            cfg.num_txns = txns;
            (name, cfg)
        })
        .collect()
}

/// §4.1.3: effective link bandwidth between query and log processors.
pub fn link_bandwidth(txns: usize) -> ExpTable {
    let mut rows = Vec::new();
    for (name, cfg) in base_configs(txns) {
        let mut row = ExpRow::new(name);
        for bw in [1.0, 0.1, 0.01] {
            let mut c = cfg.clone();
            c.overlay = RecoveryOverlay::Logging(LoggingConfig {
                link_bandwidth_mb_s: bw,
                ..LoggingConfig::default()
            });
            let r = Machine::new(c).run();
            row.push(format!("{bw} MB/s exec"), r.exec_time_per_page_ms);
            row.push(format!("{bw} MB/s blocked"), r.mean_blocked_pages);
        }
        rows.push(row);
    }
    ExpTable {
        id: "ablation_bandwidth",
        title: "Link Bandwidth between Query and Log Processors (§4.1.3)",
        rows,
    }
}

/// §4.1.3: dedicated interconnection vs routing fragments through the
/// disk cache.
pub fn route_through_cache(txns: usize) -> ExpTable {
    let mut rows = Vec::new();
    for (name, cfg) in base_configs(txns) {
        let mut row = ExpRow::new(name);
        for (label, via_cache) in [("dedicated link", false), ("through cache", true)] {
            let mut c = cfg.clone();
            c.overlay = RecoveryOverlay::Logging(LoggingConfig {
                route_through_cache: via_cache,
                ..LoggingConfig::default()
            });
            let r = Machine::new(c).run();
            row.push(format!("{label} exec"), r.exec_time_per_page_ms);
            row.push(format!("{label} frames"), r.mean_frames_used);
        }
        rows.push(row);
    }
    ExpTable {
        id: "ablation_route_cache",
        title: "Routing Log Fragments through the Disk Cache (§4.1.3)",
        rows,
    }
}

/// §4.2.5: version selection vs the thru-page-table shadow.
pub fn version_selection(txns: usize) -> ExpTable {
    let mut rows = Vec::new();
    for (name, cfg) in base_configs(txns) {
        let bare = Machine::new(cfg.clone()).run();
        let vs = {
            let mut c = cfg.clone();
            c.overlay = RecoveryOverlay::VersionSelect;
            Machine::new(c).run()
        };
        let thru = {
            let mut c = cfg.clone();
            c.overlay = RecoveryOverlay::ShadowPt(ShadowPtConfig {
                pt_buffer: 50,
                ..ShadowPtConfig::default()
            });
            Machine::new(c).run()
        };
        let mut row = ExpRow::new(name);
        row.push("bare", bare.exec_time_per_page_ms);
        row.push("version select", vs.exec_time_per_page_ms);
        row.push("thru PT buf=50", thru.exec_time_per_page_ms);
        rows.push(row);
    }
    ExpTable {
        id: "ablation_version_select",
        title: "Version Selection vs Thru-Page-Table (§4.2.5)",
        rows,
    }
}

/// Multiprogramming-level sensitivity of the bare machine.
pub fn mpl_sweep(txns: usize) -> ExpTable {
    let mut rows = Vec::new();
    for (name, cfg) in base_configs(txns) {
        let mut row = ExpRow::new(name);
        for mpl in [1usize, 2, 3, 5, 8] {
            let mut c = cfg.clone();
            c.mpl = mpl;
            let r = Machine::new(c).run();
            row.push(format!("mpl {mpl} exec"), r.exec_time_per_page_ms);
            row.push(format!("mpl {mpl} compl"), r.mean_completion_ms);
        }
        rows.push(row);
    }
    ExpTable {
        id: "ablation_mpl",
        title: "Multiprogramming-Level Sensitivity (bare machine)",
        rows,
    }
}

/// Query-processor-count sensitivity (cf. \[22\]): on an I/O-bound machine
/// most processors idle; only the parallel-sequential configuration can
/// use more of them.
pub fn qp_sweep(txns: usize) -> ExpTable {
    let mut rows = Vec::new();
    for (name, cfg) in base_configs(txns) {
        let mut row = ExpRow::new(name);
        for qps in [5usize, 25, 75] {
            let mut c = cfg.clone();
            c.query_processors = qps;
            let r = Machine::new(c).run();
            row.push(format!("{qps} QPs exec"), r.exec_time_per_page_ms);
            row.push(format!("{qps} QPs util"), r.qp_util);
        }
        rows.push(row);
    }
    ExpTable {
        id: "ablation_qps",
        title: "Query-Processor Count Sensitivity (cf. [22])",
        rows,
    }
}

/// No-undo vs no-redo overwriting: the paper simulates only the no-undo
/// variant; this ablation quantifies the trade (no-redo writes every
/// update home immediately, no-undo defers everything to commit).
pub fn overwrite_variants(txns: usize) -> ExpTable {
    let mut rows = Vec::new();
    for (name, cfg) in base_configs(txns) {
        let mut row = ExpRow::new(name);
        row.push("bare", Machine::new(cfg.clone()).run().exec_time_per_page_ms);
        for (label, variant) in [
            ("no-undo", OverwriteVariant::NoUndo),
            ("no-redo", OverwriteVariant::NoRedo),
        ] {
            let mut c = cfg.clone();
            c.overlay = RecoveryOverlay::Overwriting(OverwritingConfig {
                variant,
                ..OverwritingConfig::default()
            });
            let r = Machine::new(c).run();
            row.push(format!("{label} exec"), r.exec_time_per_page_ms);
            row.push(format!("{label} compl"), r.mean_completion_ms);
        }
        rows.push(row);
    }
    ExpTable {
        id: "ablation_overwrite_variants",
        title: "Overwriting Variants: No-Undo vs No-Redo",
        rows,
    }
}

/// All ablations, in presentation order.
pub fn all_ablations(txns: usize) -> Vec<ExpTable> {
    vec![
        link_bandwidth(txns),
        route_through_cache(txns),
        version_selection(txns),
        overwrite_variants(txns),
        mpl_sweep(txns),
        qp_sweep(txns),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: usize = 10;

    #[test]
    fn bandwidth_is_immaterial() {
        let t = link_bandwidth(T);
        for row in &t.rows {
            let fast = row.get("1 MB/s exec").unwrap();
            let slow = row.get("0.01 MB/s exec").unwrap();
            assert!(
                (slow - fast).abs() / fast < 0.1,
                "{}: {fast} vs {slow}",
                row.label
            );
            // but the slow link does make fragments (and their pages) wait
            assert!(
                row.get("0.01 MB/s blocked").unwrap()
                    >= row.get("1 MB/s blocked").unwrap() * 0.8
            );
        }
    }

    #[test]
    fn cache_routing_is_harmless() {
        let t = route_through_cache(T);
        for row in &t.rows {
            let a = row.get("dedicated link exec").unwrap();
            let b = row.get("through cache exec").unwrap();
            assert!((b - a).abs() / a < 0.1, "{}: {a} vs {b}", row.label);
        }
    }

    #[test]
    fn version_selection_loses_on_io_bound_configs() {
        let t = version_selection(T);
        for row in &t.rows {
            if row.label.contains("Random") {
                let vs = row.get("version select").unwrap();
                let thru = row.get("thru PT buf=50").unwrap();
                assert!(
                    vs > thru,
                    "{}: version selection must lose on I/O-bound machines ({vs} vs {thru})",
                    row.label
                );
            }
        }
    }

    #[test]
    fn both_overwrite_variants_cost_more_than_bare() {
        let t = overwrite_variants(T);
        for row in &t.rows {
            let bare = row.get("bare").unwrap();
            assert!(row.get("no-undo exec").unwrap() > bare * 1.02, "{}", row.label);
            assert!(row.get("no-redo exec").unwrap() > bare * 1.02, "{}", row.label);
        }
    }

    #[test]
    fn completion_grows_with_mpl() {
        let t = mpl_sweep(T);
        for row in &t.rows {
            let c1 = row.get("mpl 1 compl").unwrap();
            let c8 = row.get("mpl 8 compl").unwrap();
            assert!(c8 > c1, "{}: completion must grow with MPL", row.label);
        }
    }

    #[test]
    fn extra_qps_only_help_parallel_sequential() {
        let t = qp_sweep(T);
        let ps = t
            .rows
            .iter()
            .find(|r| r.label == "Parallel-Sequential")
            .unwrap();
        let cr = t
            .rows
            .iter()
            .find(|r| r.label == "Conventional-Random")
            .unwrap();
        // PS gains from 25 → 75 QPs; CR does not care
        assert!(ps.get("75 QPs exec").unwrap() < ps.get("25 QPs exec").unwrap() * 0.95);
        let cr25 = cr.get("25 QPs exec").unwrap();
        let cr75 = cr.get("75 QPs exec").unwrap();
        assert!((cr75 - cr25).abs() / cr25 < 0.05);
        // and CR's processors are mostly idle, as [22] found
        assert!(cr.get("75 QPs util").unwrap() < 0.1);
    }
}
