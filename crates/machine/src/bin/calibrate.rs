//! Calibration harness: prints the bare-machine numbers for the paper's
//! four configurations plus selected overlay probes, so the free
//! parameters (CPU per page, MPL) can be tuned against Table 1.
//!
//! Usage: `cargo run -p rmdb-machine --bin calibrate [cpu_ms] [mpl]`

use rmdb_machine::config::{
    DiffFileConfig, LoggingConfig, MachineConfig, RecoveryOverlay, ScanApproach, ShadowPtConfig,
};
use rmdb_machine::Machine;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let cpu: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(45.0);
    let mpl: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(3);

    println!("cpu_per_page={cpu}ms mpl={mpl}");
    println!(
        "\n== bare machine (Table 1 targets: 18.0/16.6/11.0/1.9 exec, 7398/6476/4016/758 compl) =="
    );
    for (name, mut cfg) in MachineConfig::paper_configurations() {
        cfg.cpu_per_page_ms = cpu;
        cfg.mpl = mpl;
        let r = Machine::new(cfg).run();
        println!(
            "{name:<26} exec/page {:7.2}  compl {:9.1}  qp_util {:.2}  disk_util {:.2}/{:.2}  accesses {}",
            r.exec_time_per_page_ms,
            r.mean_completion_ms,
            r.qp_util,
            r.data_disk_util[0],
            r.data_disk_util[1],
            r.data_disk_accesses
        );
    }

    println!("\n== with 1-log-disk logical logging (Table 1 'with log') ==");
    for (name, mut cfg) in MachineConfig::paper_configurations() {
        cfg.cpu_per_page_ms = cpu;
        cfg.mpl = mpl;
        cfg.overlay = RecoveryOverlay::Logging(LoggingConfig::default());
        let r = Machine::new(cfg).run();
        println!(
            "{name:<26} exec/page {:7.2}  compl {:9.1}  log_util {:.3}  blocked {:.1}",
            r.exec_time_per_page_ms,
            r.mean_completion_ms,
            r.mean_log_disk_util(),
            r.mean_blocked_pages
        );
    }

    println!("\n== Table 3 machine, physical logging (targets: 5.1 → 1.3; w/o 0.9) ==");
    {
        let mut cfg = MachineConfig::table3_machine();
        cfg.cpu_per_page_ms = cpu;
        cfg.mpl = mpl;
        let r = Machine::new(cfg.clone()).run();
        println!(
            "without logging            exec/page {:7.2}  compl {:9.1}  qp_util {:.2}",
            r.exec_time_per_page_ms, r.mean_completion_ms, r.qp_util
        );
        for n in [1usize, 2, 3, 4, 5] {
            let mut c = cfg.clone();
            c.overlay = RecoveryOverlay::Logging(LoggingConfig {
                physical: true,
                log_disks: n,
                ..LoggingConfig::default()
            });
            let r = Machine::new(c).run();
            println!(
                "{n} log disk(s)              exec/page {:7.2}  compl {:9.1}  log_util {:.2}  blocked {:.1}",
                r.exec_time_per_page_ms,
                r.mean_completion_ms,
                r.mean_log_disk_util(),
                r.mean_blocked_pages
            );
        }
    }

    println!(
        "\n== shadow thru-PT (Table 4 targets: CR 20.5, PR 20.5, CS 11.0, PS 1.9 @buf10/1proc) =="
    );
    for (name, mut cfg) in MachineConfig::paper_configurations() {
        cfg.cpu_per_page_ms = cpu;
        cfg.mpl = mpl;
        cfg.overlay = RecoveryOverlay::ShadowPt(ShadowPtConfig::default());
        let r = Machine::new(cfg).run();
        println!(
            "{name:<26} exec/page {:7.2}  compl {:9.1}  pt_util {:.2}  data_util {:.2}",
            r.exec_time_per_page_ms,
            r.mean_completion_ms,
            r.mean_pt_disk_util(),
            r.mean_data_disk_util()
        );
    }

    println!("\n== scrambled shadow, sequential (Table 7: conv 20.7, par 18.5) ==");
    for (name, mut cfg) in MachineConfig::paper_configurations() {
        if !name.contains("Sequential") {
            continue;
        }
        cfg.cpu_per_page_ms = cpu;
        cfg.mpl = mpl;
        cfg.overlay = RecoveryOverlay::ShadowPt(ShadowPtConfig {
            clustered: false,
            ..ShadowPtConfig::default()
        });
        let r = Machine::new(cfg).run();
        println!("{name:<26} exec/page {:7.2}", r.exec_time_per_page_ms);
    }

    println!("\n== overwriting (Table 7/8: CR 26.9, PR 21.6, CS 24.1, PS 2.3) ==");
    for (name, mut cfg) in MachineConfig::paper_configurations() {
        cfg.cpu_per_page_ms = cpu;
        cfg.mpl = mpl;
        cfg.overlay = RecoveryOverlay::Overwriting(Default::default());
        let r = Machine::new(cfg).run();
        println!(
            "{name:<26} exec/page {:7.2}  compl {:9.1}",
            r.exec_time_per_page_ms, r.mean_completion_ms
        );
    }

    println!("\n== differential files (Table 9: basic ~37.6 all; optimal 19.2/18.0/17.8/13.9) ==");
    for approach in [ScanApproach::Basic, ScanApproach::Optimal] {
        for (name, mut cfg) in MachineConfig::paper_configurations() {
            cfg.cpu_per_page_ms = cpu;
            cfg.mpl = mpl;
            cfg.overlay = RecoveryOverlay::DiffFile(DiffFileConfig {
                approach,
                ..DiffFileConfig::default()
            });
            let r = Machine::new(cfg).run();
            println!(
                "{approach:?} {name:<26} exec/page {:7.2}  compl {:9.1}  qp_util {:.2}",
                r.exec_time_per_page_ms, r.mean_completion_ms, r.qp_util
            );
        }
    }
}
