//! Experiment drivers: one function per table of the paper.
//!
//! Each driver assembles the exact machine/overlay configurations behind a
//! table of the paper's evaluation (§4–§5), runs them, and returns a
//! structured [`ExpTable`] the bench harness renders (and serializes next
//! to EXPERIMENTS.md). The `txns` argument scales the batch: 40 is the
//! calibrated paper-scale batch; tests use smaller values.

use crate::config::{
    DiffFileConfig, LoggingConfig, MachineConfig, OverwritingConfig, RecoveryOverlay, ScanApproach,
    ShadowPtConfig,
};
use crate::machine::Machine;
use crate::report::MachineReport;
use rmdb_wal::SelectionPolicy;
use serde::Serialize;

/// Paper-scale batch size used by the bench binaries.
pub const PAPER_TXNS: usize = 40;

/// One row of a reproduced table.
#[derive(Debug, Clone, Serialize)]
pub struct ExpRow {
    /// Row label (configuration, number of log disks, …).
    pub label: String,
    /// Column label → value pairs, in display order.
    pub values: Vec<(String, f64)>,
}

impl ExpRow {
    /// A row with the given label and no values yet.
    pub fn new(label: impl Into<String>) -> Self {
        ExpRow {
            label: label.into(),
            values: Vec::new(),
        }
    }

    /// Append a `(column, value)` pair.
    pub fn push(&mut self, col: impl Into<String>, v: f64) {
        self.values.push((col.into(), v));
    }

    /// Look up a value by column label.
    pub fn get(&self, col: &str) -> Option<f64> {
        self.values.iter().find(|(c, _)| c == col).map(|&(_, v)| v)
    }
}

/// A reproduced table.
#[derive(Debug, Clone, Serialize)]
pub struct ExpTable {
    /// Stable identifier ("table01" …).
    pub id: &'static str,
    /// The paper's caption.
    pub title: &'static str,
    /// Rows in display order.
    pub rows: Vec<ExpRow>,
}

impl ExpTable {
    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{} — {}", self.id, self.title);
        if self.rows.is_empty() {
            return out;
        }
        let cols: Vec<&str> = self.rows[0]
            .values
            .iter()
            .map(|(c, _)| c.as_str())
            .collect();
        let label_w = self
            .rows
            .iter()
            .map(|r| r.label.len())
            .max()
            .unwrap_or(0)
            .max(13);
        let _ = write!(out, "{:label_w$}", "configuration");
        for c in &cols {
            let _ = write!(out, "  {c:>16}");
        }
        let _ = writeln!(out);
        for row in &self.rows {
            let _ = write!(out, "{:label_w$}", row.label);
            for (_, v) in &row.values {
                let _ = write!(out, "  {v:>16.2}");
            }
            let _ = writeln!(out);
        }
        out
    }
}

fn run(cfg: MachineConfig) -> MachineReport {
    Machine::new(cfg).run()
}

fn base_configs(txns: usize) -> Vec<(&'static str, MachineConfig)> {
    MachineConfig::paper_configurations()
        .into_iter()
        .map(|(name, mut cfg)| {
            cfg.num_txns = txns;
            (name, cfg)
        })
        .collect()
}

/// Table 1 — Impact of logging (one log processor).
pub fn table01(txns: usize) -> ExpTable {
    let mut rows = Vec::new();
    for (name, cfg) in base_configs(txns) {
        let bare = run(cfg.clone());
        let mut logged_cfg = cfg;
        logged_cfg.overlay = RecoveryOverlay::Logging(LoggingConfig::default());
        let logged = run(logged_cfg);
        let mut row = ExpRow::new(name);
        row.push("exec w/o log", bare.exec_time_per_page_ms);
        row.push("exec w/ log", logged.exec_time_per_page_ms);
        row.push("compl w/o log", bare.mean_completion_ms);
        row.push("compl w/ log", logged.mean_completion_ms);
        rows.push(row);
    }
    ExpTable {
        id: "table01",
        title: "Impact of Logging",
        rows,
    }
}

/// Table 2 — Log characteristics (one log processor).
pub fn table02(txns: usize) -> ExpTable {
    let mut rows = Vec::new();
    for (name, mut cfg) in base_configs(txns) {
        cfg.overlay = RecoveryOverlay::Logging(LoggingConfig::default());
        let r = run(cfg);
        let mut row = ExpRow::new(name);
        row.push("log disk util", r.mean_log_disk_util());
        row.push("blocked pages", r.mean_blocked_pages);
        rows.push(row);
    }
    ExpTable {
        id: "table02",
        title: "Log Characteristics (one log processor)",
        rows,
    }
}

/// Table 3 — Parallel (physical) logging and log-processor selection:
/// 75 query processors, 2 parallel-access disks, 150 cache frames.
pub fn table03(txns: usize) -> ExpTable {
    let mut machine = MachineConfig::table3_machine();
    machine.num_txns = txns;
    let mut rows = Vec::new();
    for n in 1..=5usize {
        let mut row = ExpRow::new(format!("{n} log disk(s)"));
        for policy in SelectionPolicy::ALL {
            let mut cfg = machine.clone();
            cfg.overlay = RecoveryOverlay::Logging(LoggingConfig {
                physical: true,
                log_disks: n,
                selection: policy,
                ..LoggingConfig::default()
            });
            let r = run(cfg);
            row.push(format!("exec {}", policy.label()), r.exec_time_per_page_ms);
            row.push(format!("compl {}", policy.label()), r.mean_completion_ms);
        }
        rows.push(row);
    }
    // the without-logging baseline row
    let bare = run(machine);
    let mut row = ExpRow::new("w/o logging");
    for policy in SelectionPolicy::ALL {
        row.push(
            format!("exec {}", policy.label()),
            bare.exec_time_per_page_ms,
        );
        row.push(format!("compl {}", policy.label()), bare.mean_completion_ms);
    }
    rows.push(row);
    ExpTable {
        id: "table03",
        title: "Parallel Logging and Log Processor Selection (75 QPs, physical logging)",
        rows,
    }
}

/// Table 4 — Impact of the shadow mechanism (1 vs 2 page-table processors).
pub fn table04(txns: usize) -> ExpTable {
    let mut rows = Vec::new();
    for (name, cfg) in base_configs(txns) {
        let bare = run(cfg.clone());
        let shadow = |procs: usize| {
            let mut c = cfg.clone();
            c.overlay = RecoveryOverlay::ShadowPt(ShadowPtConfig {
                pt_processors: procs,
                ..ShadowPtConfig::default()
            });
            run(c)
        };
        let one = shadow(1);
        let two = shadow(2);
        let mut row = ExpRow::new(name);
        row.push("exec bare", bare.exec_time_per_page_ms);
        row.push("exec 1 PT", one.exec_time_per_page_ms);
        row.push("exec 2 PT", two.exec_time_per_page_ms);
        row.push("compl bare", bare.mean_completion_ms);
        row.push("compl 1 PT", one.mean_completion_ms);
        row.push("compl 2 PT", two.mean_completion_ms);
        rows.push(row);
    }
    ExpTable {
        id: "table04",
        title: "Impact of the Shadow Mechanism",
        rows,
    }
}

/// Table 5 — Average utilization of data and page-table disks.
pub fn table05(txns: usize) -> ExpTable {
    let mut rows = Vec::new();
    for (name, cfg) in base_configs(txns) {
        let bare = run(cfg.clone());
        let shadow = |procs: usize| {
            let mut c = cfg.clone();
            c.overlay = RecoveryOverlay::ShadowPt(ShadowPtConfig {
                pt_processors: procs,
                ..ShadowPtConfig::default()
            });
            run(c)
        };
        let one = shadow(1);
        let two = shadow(2);
        let mut row = ExpRow::new(name);
        row.push("bare data", bare.mean_data_disk_util());
        row.push("1PT data", one.mean_data_disk_util());
        row.push("1PT pt", one.mean_pt_disk_util());
        row.push("2PT data", two.mean_data_disk_util());
        row.push("2PT pt", two.mean_pt_disk_util());
        rows.push(row);
    }
    ExpTable {
        id: "table05",
        title: "Average Utilization of Data and Page-Table Disks",
        rows,
    }
}

/// Table 6 — Execution time per page vs page-table buffer size
/// (random transactions, 1 page-table processor).
pub fn table06(txns: usize) -> ExpTable {
    let mut rows = Vec::new();
    for (name, cfg) in base_configs(txns) {
        if !name.contains("Random") {
            continue;
        }
        let bare = run(cfg.clone());
        let mut row = ExpRow::new(name.replace("-Random", ""));
        row.push("bare", bare.exec_time_per_page_ms);
        for buf in [10usize, 25, 50] {
            let mut c = cfg.clone();
            c.overlay = RecoveryOverlay::ShadowPt(ShadowPtConfig {
                pt_buffer: buf,
                ..ShadowPtConfig::default()
            });
            row.push(format!("buf {buf}"), run(c).exec_time_per_page_ms);
        }
        rows.push(row);
    }
    ExpTable {
        id: "table06",
        title: "Execution Time per Page vs Page-Table Buffer Size (random txns)",
        rows,
    }
}

/// Table 7 — Sequential transactions: clustered vs scrambled vs overwriting.
pub fn table07(txns: usize) -> ExpTable {
    let mut rows = Vec::new();
    for (name, cfg) in base_configs(txns) {
        if !name.contains("Sequential") {
            continue;
        }
        let bare = run(cfg.clone());
        let clustered = {
            let mut c = cfg.clone();
            c.overlay = RecoveryOverlay::ShadowPt(ShadowPtConfig::default());
            run(c)
        };
        let scrambled = {
            let mut c = cfg.clone();
            c.overlay = RecoveryOverlay::ShadowPt(ShadowPtConfig {
                clustered: false,
                ..ShadowPtConfig::default()
            });
            run(c)
        };
        let overwriting = {
            let mut c = cfg.clone();
            c.overlay = RecoveryOverlay::Overwriting(OverwritingConfig::default());
            run(c)
        };
        let mut row = ExpRow::new(name.replace("-Sequential", ""));
        row.push("bare", bare.exec_time_per_page_ms);
        row.push("clustered", clustered.exec_time_per_page_ms);
        row.push("scrambled", scrambled.exec_time_per_page_ms);
        row.push("overwriting", overwriting.exec_time_per_page_ms);
        rows.push(row);
    }
    ExpTable {
        id: "table07",
        title: "Execution Time per Page (Sequential Transactions)",
        rows,
    }
}

/// Table 8 — Random transactions: thru page-table vs overwriting.
pub fn table08(txns: usize) -> ExpTable {
    let mut rows = Vec::new();
    for (name, cfg) in base_configs(txns) {
        if !name.contains("Random") {
            continue;
        }
        let bare = run(cfg.clone());
        let thru = {
            let mut c = cfg.clone();
            c.overlay = RecoveryOverlay::ShadowPt(ShadowPtConfig::default());
            run(c)
        };
        let overwriting = {
            let mut c = cfg.clone();
            c.overlay = RecoveryOverlay::Overwriting(OverwritingConfig::default());
            run(c)
        };
        let mut row = ExpRow::new(name.replace("-Random", ""));
        row.push("bare", bare.exec_time_per_page_ms);
        row.push("thru pagetable", thru.exec_time_per_page_ms);
        row.push("overwriting", overwriting.exec_time_per_page_ms);
        rows.push(row);
    }
    ExpTable {
        id: "table08",
        title: "Execution Time per Page (Random Transactions)",
        rows,
    }
}

/// Table 9 — Impact of the differential-file mechanism (basic vs optimal).
pub fn table09(txns: usize) -> ExpTable {
    let mut rows = Vec::new();
    for (name, cfg) in base_configs(txns) {
        let bare = run(cfg.clone());
        let diff = |approach: ScanApproach| {
            let mut c = cfg.clone();
            c.overlay = RecoveryOverlay::DiffFile(DiffFileConfig {
                approach,
                ..DiffFileConfig::default()
            });
            run(c)
        };
        let basic = diff(ScanApproach::Basic);
        let optimal = diff(ScanApproach::Optimal);
        let mut row = ExpRow::new(name);
        row.push("exec bare", bare.exec_time_per_page_ms);
        row.push("exec basic", basic.exec_time_per_page_ms);
        row.push("exec optimal", optimal.exec_time_per_page_ms);
        row.push("compl bare", bare.mean_completion_ms);
        row.push("compl basic", basic.mean_completion_ms);
        row.push("compl optimal", optimal.mean_completion_ms);
        rows.push(row);
    }
    ExpTable {
        id: "table09",
        title: "Impact of the Differential File Mechanism",
        rows,
    }
}

/// Table 10 — Effect of the output-page fraction (optimal approach).
pub fn table10(txns: usize) -> ExpTable {
    let mut rows = Vec::new();
    for (name, cfg) in base_configs(txns) {
        let bare = run(cfg.clone());
        let mut row = ExpRow::new(name);
        row.push("bare", bare.exec_time_per_page_ms);
        for frac in [0.10, 0.20, 0.50] {
            let mut c = cfg.clone();
            c.overlay = RecoveryOverlay::DiffFile(DiffFileConfig {
                output_fraction: frac,
                ..DiffFileConfig::default()
            });
            row.push(
                format!("{:.0}%", frac * 100.0),
                run(c).exec_time_per_page_ms,
            );
        }
        rows.push(row);
    }
    ExpTable {
        id: "table10",
        title: "Effect of Output Fraction on Execution Time per Page",
        rows,
    }
}

/// Table 11 — Effect of the differential-file size (optimal approach).
pub fn table11(txns: usize) -> ExpTable {
    let mut rows = Vec::new();
    for (name, cfg) in base_configs(txns) {
        let bare = run(cfg.clone());
        let mut row = ExpRow::new(name);
        row.push("bare", bare.exec_time_per_page_ms);
        for frac in [0.10, 0.15, 0.20] {
            let mut c = cfg.clone();
            c.overlay = RecoveryOverlay::DiffFile(DiffFileConfig {
                size_fraction: frac,
                ..DiffFileConfig::default()
            });
            row.push(
                format!("{:.0}%", frac * 100.0),
                run(c).exec_time_per_page_ms,
            );
        }
        rows.push(row);
    }
    ExpTable {
        id: "table11",
        title: "Effect of Size of Differential Files on Execution Time per Page",
        rows,
    }
}

/// Table 12 — Comparison of the recovery architectures.
pub fn table12(txns: usize) -> ExpTable {
    let mut rows = Vec::new();
    for (name, cfg) in base_configs(txns) {
        let mut row = ExpRow::new(name);
        row.push("bare", run(cfg.clone()).exec_time_per_page_ms);
        // logging, 1 log disk
        {
            let mut c = cfg.clone();
            c.overlay = RecoveryOverlay::Logging(LoggingConfig::default());
            row.push("logging", run(c).exec_time_per_page_ms);
        }
        // shadow: 1 PT proc buf 10; 1 PT proc buf 50; 2 PT procs
        for (label, procs, buf) in [
            ("sh buf=10", 1usize, 10usize),
            ("sh buf=50", 1, 50),
            ("sh 2 PT", 2, 10),
        ] {
            let mut c = cfg.clone();
            c.overlay = RecoveryOverlay::ShadowPt(ShadowPtConfig {
                pt_processors: procs,
                pt_buffer: buf,
                ..ShadowPtConfig::default()
            });
            row.push(label, run(c).exec_time_per_page_ms);
        }
        // scrambled
        {
            let mut c = cfg.clone();
            c.overlay = RecoveryOverlay::ShadowPt(ShadowPtConfig {
                clustered: false,
                ..ShadowPtConfig::default()
            });
            row.push("scrambled", run(c).exec_time_per_page_ms);
        }
        // overwriting
        {
            let mut c = cfg.clone();
            c.overlay = RecoveryOverlay::Overwriting(OverwritingConfig::default());
            row.push("overwriting", run(c).exec_time_per_page_ms);
        }
        // differential file (10 %, optimal)
        {
            let mut c = cfg.clone();
            c.overlay = RecoveryOverlay::DiffFile(DiffFileConfig::default());
            row.push("diff file", run(c).exec_time_per_page_ms);
        }
        rows.push(row);
    }
    ExpTable {
        id: "table12",
        title: "Average Execution Time per Page — All Recovery Architectures",
        rows,
    }
}

/// Every table, in order.
pub fn all_tables(txns: usize) -> Vec<ExpTable> {
    vec![
        table01(txns),
        table02(txns),
        table03(txns),
        table04(txns),
        table05(txns),
        table06(txns),
        table07(txns),
        table08(txns),
        table09(txns),
        table10(txns),
        table11(txns),
        table12(txns),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: usize = 12; // shortened batches keep tests quick

    #[test]
    fn table01_logging_is_nearly_free() {
        let t = table01(T);
        assert_eq!(t.rows.len(), 4);
        for row in &t.rows {
            let bare = row.get("exec w/o log").unwrap();
            let logged = row.get("exec w/ log").unwrap();
            assert!(
                (logged - bare).abs() / bare < 0.15,
                "{}: {} vs {}",
                row.label,
                bare,
                logged
            );
        }
    }

    #[test]
    fn table02_log_disk_underutilized() {
        let t = table02(T);
        for row in &t.rows {
            let util = row.get("log disk util").unwrap();
            assert!(util < 0.35, "{}: log util {util}", row.label);
            assert!(row.get("blocked pages").unwrap() < 10.0);
        }
    }

    #[test]
    fn table03_scaling_and_txnmod_loser() {
        let t = table03(T);
        // more log disks improve cyclic execution time
        let exec = |row: usize| t.rows[row].get("exec cyclic").unwrap();
        assert!(
            exec(0) > exec(3),
            "1 disk {} !> 4 disks {}",
            exec(0),
            exec(3)
        );
        // TranNo mod selection trails cyclic with many disks
        let row4 = &t.rows[3]; // 4 log disks
        assert!(
            row4.get("exec TranNo mod TotLp").unwrap() >= row4.get("exec cyclic").unwrap() * 0.99,
            "txn-mod should not beat cyclic"
        );
        // baseline is fastest
        let bare = t.rows.last().unwrap().get("exec cyclic").unwrap();
        assert!(bare < exec(0));
    }

    #[test]
    fn table04_second_pt_processor_recovers() {
        let t = table04(T);
        for row in &t.rows {
            if !row.label.contains("Random") {
                continue;
            }
            let bare = row.get("exec bare").unwrap();
            let one = row.get("exec 1 PT").unwrap();
            let two = row.get("exec 2 PT").unwrap();
            assert!(one >= bare * 0.99, "{}: shadow must not be free", row.label);
            assert!(two <= one, "{}: second PT proc must help", row.label);
        }
    }

    #[test]
    fn table06_buffer_recovers_throughput() {
        let t = table06(T);
        for row in &t.rows {
            let b10 = row.get("buf 10").unwrap();
            let b50 = row.get("buf 50").unwrap();
            let bare = row.get("bare").unwrap();
            assert!(b50 <= b10, "{}: larger buffer must help", row.label);
            assert!(
                (b50 - bare) / bare < 0.1,
                "{}: buf 50 should annul the degradation",
                row.label
            );
        }
    }

    #[test]
    fn table07_scrambling_and_overwriting_shapes() {
        let t = table07(T);
        for row in &t.rows {
            let clustered = row.get("clustered").unwrap();
            let scrambled = row.get("scrambled").unwrap();
            assert!(
                scrambled > 1.3 * clustered,
                "{}: scrambling must devastate sequential",
                row.label
            );
        }
        // overwriting on parallel disks stays close to bare…
        let par = t.rows.iter().find(|r| r.label == "Parallel").unwrap();
        assert!(par.get("overwriting").unwrap() < 2.5 * par.get("bare").unwrap());
        // …but on conventional disks it is far worse
        let conv = t.rows.iter().find(|r| r.label == "Conventional").unwrap();
        assert!(conv.get("overwriting").unwrap() > 1.4 * conv.get("bare").unwrap());
    }

    #[test]
    fn table08_overwriting_worse_than_thru_pt_for_random() {
        let t = table08(T);
        for row in &t.rows {
            assert!(
                row.get("overwriting").unwrap() > row.get("thru pagetable").unwrap(),
                "{}: overwriting must lose for random txns",
                row.label
            );
        }
    }

    #[test]
    fn table09_basic_flat_and_worst() {
        let t = table09(T);
        let basics: Vec<f64> = t
            .rows
            .iter()
            .map(|r| r.get("exec basic").unwrap())
            .collect();
        let spread = (basics.iter().cloned().fold(f64::MIN, f64::max)
            - basics.iter().cloned().fold(f64::MAX, f64::min))
            / basics[0];
        assert!(
            spread < 0.25,
            "basic approach should be CPU-bound flat: {basics:?}"
        );
        for row in &t.rows {
            assert!(row.get("exec basic").unwrap() > row.get("exec optimal").unwrap());
        }
    }

    #[test]
    fn table11_nonlinear_degradation() {
        let t = table11(T);
        for row in &t.rows {
            let p10 = row.get("10%").unwrap();
            let p15 = row.get("15%").unwrap();
            let p20 = row.get("20%").unwrap();
            assert!(
                p20 > p15 && p15 > p10,
                "{}: degradation must grow",
                row.label
            );
        }
    }

    #[test]
    fn table12_logging_wins_overall() {
        let t = table12(T);
        for row in &t.rows {
            let bare = row.get("bare").unwrap();
            let logging = row.get("logging").unwrap();
            // parallel logging is within a few percent of bare everywhere
            assert!(
                (logging - bare) / bare < 0.12,
                "{}: logging {logging} vs bare {bare}",
                row.label
            );
            // and no other architecture beats it in any configuration
            for col in ["scrambled", "overwriting", "diff file"] {
                assert!(
                    row.get(col).unwrap() >= logging * 0.95,
                    "{}: {col} should not beat logging",
                    row.label
                );
            }
        }
    }

    #[test]
    fn render_produces_all_columns() {
        let t = table01(6);
        let s = t.render();
        assert!(s.contains("exec w/o log"));
        assert!(s.contains("Conventional-Random"));
    }
}
