//! Workload generation: the paper's transaction model.
//!
//! "A transaction was modeled by the number of pages it accesses. This
//! value was assumed to be a uniform random variable in the range of 1 to
//! 250 pages. Both random and sequential reference strings … The write set
//! of a transaction was assumed to be a random subset of its read set and
//! was taken to be 20 % of the pages read."

use crate::config::{AccessPattern, MachineConfig};
use rmdb_disk::Geometry;
use rmdb_sim::SimRng;
use std::collections::HashSet;

/// One page access in a reference string.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageLoc {
    /// Which data disk.
    pub disk: usize,
    /// Linear page number on that disk.
    pub page: u64,
}

/// A generated transaction.
#[derive(Debug, Clone)]
pub struct TxnSpec {
    /// Reference string, in access order.
    pub pages: Vec<PageLoc>,
    /// `writes[i]` ⇔ `pages[i]` is in the write set.
    pub writes: Vec<bool>,
}

impl TxnSpec {
    /// Pages read.
    pub fn n_pages(&self) -> usize {
        self.pages.len()
    }

    /// Pages updated.
    pub fn n_writes(&self) -> usize {
        self.writes.iter().filter(|&&w| w).count()
    }
}

/// Generate the closed-workload batch for `cfg`.
pub fn generate(cfg: &MachineConfig, rng: &mut SimRng) -> Vec<TxnSpec> {
    let geometry = Geometry::IBM_3350;
    // the database occupies an extent of `db_cylinders` on each disk
    let db_pages = cfg.db_cylinders.min(geometry.cylinders) as u64 * geometry.pages_per_cylinder();
    (0..cfg.num_txns)
        .map(|_| {
            let n = rng.uniform(cfg.min_pages, cfg.max_pages);
            let pages: Vec<PageLoc> = match cfg.access {
                AccessPattern::Random => {
                    let mut seen = HashSet::new();
                    let mut v = Vec::with_capacity(n as usize);
                    while v.len() < n as usize {
                        let disk = rng.index(cfg.data_disks);
                        let page = rng.uniform(0, db_pages - 1);
                        if seen.insert((disk, page)) {
                            v.push(PageLoc { disk, page });
                        }
                    }
                    v
                }
                AccessPattern::Sequential => {
                    // relations are declustered over all drives (the
                    // multiprocessor-machine convention, cf. DIRECT): a
                    // sequential scan reads one contiguous run per drive,
                    // all drives in parallel
                    let mut v = Vec::with_capacity(n as usize);
                    let per = n / cfg.data_disks as u64;
                    let mut remainder = n % cfg.data_disks as u64;
                    for disk in 0..cfg.data_disks {
                        let mut len = per;
                        if remainder > 0 {
                            len += 1;
                            remainder -= 1;
                        }
                        if len == 0 {
                            continue;
                        }
                        let start = rng.uniform(0, db_pages - len);
                        v.extend((0..len).map(|i| PageLoc {
                            disk,
                            page: start + i,
                        }));
                    }
                    v
                }
            };
            // write set: random 20 % subset of the read set
            let k = ((n as f64) * cfg.write_fraction).round() as usize;
            let idx: Vec<usize> = (0..pages.len()).collect();
            let chosen: HashSet<usize> = rng
                .sample_subset(&idx, k.min(idx.len()))
                .into_iter()
                .collect();
            let writes = (0..pages.len()).map(|i| chosen.contains(&i)).collect();
            TxnSpec { pages, writes }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    fn gen(access: AccessPattern, seed: u64) -> Vec<TxnSpec> {
        let cfg = MachineConfig {
            access,
            num_txns: 50,
            seed,
            ..MachineConfig::default()
        };
        let mut rng = SimRng::seed_from_u64(seed);
        generate(&cfg, &mut rng)
    }

    #[test]
    fn sizes_in_range_and_write_fraction() {
        let txns = gen(AccessPattern::Random, 1);
        for t in &txns {
            assert!((1..=250).contains(&(t.n_pages() as u64)));
            let expect = (t.n_pages() as f64 * 0.2).round() as usize;
            assert_eq!(t.n_writes(), expect.min(t.n_pages()));
        }
        // average near 125
        let avg: f64 = txns.iter().map(|t| t.n_pages() as f64).sum::<f64>() / txns.len() as f64;
        assert!((95.0..160.0).contains(&avg), "avg pages {avg}");
    }

    #[test]
    fn random_pages_are_distinct_within_txn() {
        for t in gen(AccessPattern::Random, 2) {
            let set: HashSet<(usize, u64)> = t.pages.iter().map(|p| (p.disk, p.page)).collect();
            assert_eq!(set.len(), t.pages.len());
        }
    }

    #[test]
    fn sequential_strings_are_contiguous_per_disk() {
        for t in gen(AccessPattern::Sequential, 3) {
            for w in t.pages.windows(2) {
                if w[0].disk == w[1].disk {
                    assert_eq!(w[1].page, w[0].page + 1);
                }
            }
        }
    }

    #[test]
    fn sequential_scans_decluster_across_disks() {
        for t in gen(AccessPattern::Sequential, 4) {
            if t.n_pages() < 2 {
                continue;
            }
            let disks: HashSet<usize> = t.pages.iter().map(|p| p.disk).collect();
            assert_eq!(disks.len(), 2, "scan must use both drives");
            // even split ±1
            let on0 = t.pages.iter().filter(|p| p.disk == 0).count();
            assert!((on0 as i64 - (t.n_pages() - on0) as i64).abs() <= 1);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = gen(AccessPattern::Random, 9);
        let b = gen(AccessPattern::Random, 9);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.pages, y.pages);
            assert_eq!(x.writes, y.writes);
        }
    }

    #[test]
    fn pages_fit_on_disk() {
        let total = Geometry::IBM_3350.total_pages();
        for t in gen(AccessPattern::Sequential, 5) {
            assert!(t.pages.iter().all(|p| p.page < total));
        }
    }
}
