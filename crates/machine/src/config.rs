//! Machine and overlay configuration, with the paper's presets.

use rmdb_disk::DiskMode;
use rmdb_wal::SelectionPolicy;
use serde::{Deserialize, Serialize};

/// Transaction reference-string shape (paper §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Each page drawn uniformly from the whole database (both disks).
    Random,
    /// Contiguous pages on one disk starting at a random position.
    Sequential,
}

/// Differential-file query-processing approach (paper §4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScanApproach {
    /// Set-difference on every page of B and A.
    Basic,
    /// Set-difference only on pages with at least one qualifying tuple.
    Optimal,
}

/// Parallel-logging overlay parameters (paper §3.1, §4.1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoggingConfig {
    /// Number of log processors, each with its own log disk.
    pub log_disks: usize,
    /// Fragment-routing policy.
    pub selection: SelectionPolicy,
    /// Physical logging: two full page images (two log pages) per update,
    /// queued immediately; logical logging assembles small fragments.
    pub physical: bool,
    /// Logical fragment size in bytes.
    pub fragment_bytes: usize,
    /// Bandwidth of the query-processor ↔ log-processor link, MB/s.
    pub link_bandwidth_mb_s: f64,
    /// Route fragments through the disk cache instead of a dedicated link
    /// (occupies a cache frame while in transit).
    pub route_through_cache: bool,
    /// Extra query-processor time to construct a fragment (ms).
    pub fragment_cpu_ms: f64,
}

impl Default for LoggingConfig {
    fn default() -> Self {
        LoggingConfig {
            log_disks: 1,
            selection: SelectionPolicy::Cyclic,
            physical: false,
            fragment_bytes: 512,
            link_bandwidth_mb_s: 1.0,
            route_through_cache: false,
            fragment_cpu_ms: 2.0,
        }
    }
}

/// Thru-page-table shadow overlay parameters (paper §3.2.1, §4.2).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShadowPtConfig {
    /// Page-table processors (each with a page-table disk).
    pub pt_processors: usize,
    /// Page-table buffer capacity in page-table pages (LRU).
    pub pt_buffer: usize,
    /// Whether shadow allocation keeps logically adjacent pages physically
    /// clustered. When `false` ("scrambled"), sequential reference strings
    /// hit scattered physical addresses and parallel-access batching
    /// collapses.
    pub clustered: bool,
    /// How many page accesses ahead of the read frontier the page-table
    /// processors resolve per transaction — the paper's pipeline: "while a
    /// data page is being read and processed, the page-table processor
    /// fetches the disk-address of the next data page."
    pub pt_lookahead: usize,
}

impl Default for ShadowPtConfig {
    fn default() -> Self {
        ShadowPtConfig {
            pt_processors: 1,
            pt_buffer: 10,
            clustered: true,
            pt_lookahead: 2,
        }
    }
}

/// Which overwriting architecture the machine runs (paper §3.2.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum OverwriteVariant {
    /// Updated pages staged to scratch at commit, then installed over the
    /// shadows (the variant the paper simulates in Tables 7–8).
    #[default]
    NoUndo,
    /// The shadow is saved to scratch before each page is overwritten in
    /// place; commit needs no installs.
    NoRedo,
}

/// Overwriting overlay parameters (paper §3.2.2.2, §4.2.4).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OverwritingConfig {
    /// Cylinders reserved for the scratch area at the end of each disk
    /// (0 ⇒ one tenth of the disk).
    pub scratch_cylinders: u32,
    /// No-undo (paper's simulated variant) or no-redo.
    pub variant: OverwriteVariant,
}

/// Differential-file overlay parameters (paper §3.3, §4.3).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DiffFileConfig {
    /// Size of each differential file relative to the base (0.10/0.15/0.20).
    pub size_fraction: f64,
    /// Fraction of an output page created per updated page (0.1/0.2/0.5).
    pub output_fraction: f64,
    /// Basic or optimal query processing.
    pub approach: ScanApproach,
    /// Fraction of pages that pay the set-difference under the optimal
    /// approach. The paper assumes 10 % of tuples qualify; the effective
    /// page-level fraction calibrated against Table 9 is higher (a page
    /// qualifies if *any* tuple on it does, and the optimal approach still
    /// scans every page first) — see EXPERIMENTS.md.
    pub qualify_fraction: f64,
    /// CPU cost of one set-difference against one D page, as a multiple of
    /// the base per-page processing cost.
    pub setdiff_cpu_factor: f64,
}

impl Default for DiffFileConfig {
    fn default() -> Self {
        DiffFileConfig {
            size_fraction: 0.10,
            output_fraction: 0.10,
            approach: ScanApproach::Optimal,
            qualify_fraction: 0.34,
            setdiff_cpu_factor: 1.2,
        }
    }
}

/// Which recovery architecture the machine runs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum RecoveryOverlay {
    /// The bare machine (no recovery data collected).
    None,
    /// Parallel logging.
    Logging(LoggingConfig),
    /// Thru-page-table shadow.
    ShadowPt(ShadowPtConfig),
    /// No-undo overwriting.
    Overwriting(OverwritingConfig),
    /// Version selection (twin blocks): every read fetches both physical
    /// copies of the page; there is no page table. The paper analyses this
    /// qualitatively (§4.2.5) and predicts poor performance on an
    /// I/O-bound machine; this overlay quantifies it.
    VersionSelect,
    /// Differential files.
    DiffFile(DiffFileConfig),
}

/// Full machine configuration.
///
/// Defaults reproduce the paper's base machine: 25 query processors, 100
/// cache frames, 2 conventional data disks, random transactions of 1–250
/// pages with a 20 % write set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Query processors.
    pub query_processors: usize,
    /// Cache frames (4 KB each).
    pub cache_frames: usize,
    /// Data disks.
    pub data_disks: usize,
    /// Conventional or parallel-access drives.
    pub disk_mode: DiskMode,
    /// Reference-string shape.
    pub access: AccessPattern,
    /// Query-processor time to process one page (ms). Calibrated so the
    /// bare machine matches Table 1 (see EXPERIMENTS.md).
    pub cpu_per_page_ms: f64,
    /// Concurrent transactions (closed system).
    pub mpl: usize,
    /// Transactions in the batch.
    pub num_txns: usize,
    /// Minimum pages per transaction.
    pub min_pages: u64,
    /// Maximum pages per transaction.
    pub max_pages: u64,
    /// Fraction of read pages that are updated.
    pub write_fraction: f64,
    /// Cylinders occupied by the database on each disk (the extent random
    /// accesses are drawn from; scratch and differential-file areas sit
    /// just past it). Calibrated so the conventional-random configuration
    /// matches Table 1.
    pub db_cylinders: u32,
    /// Workload seed.
    pub seed: u64,
    /// Recovery architecture.
    pub overlay: RecoveryOverlay,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            query_processors: 25,
            cache_frames: 100,
            data_disks: 2,
            disk_mode: DiskMode::Conventional,
            access: AccessPattern::Random,
            cpu_per_page_ms: 45.0,
            mpl: 3,
            num_txns: 40,
            min_pages: 1,
            max_pages: 250,
            write_fraction: 0.2,
            db_cylinders: 310,
            seed: 42,
            overlay: RecoveryOverlay::None,
        }
    }
}

impl MachineConfig {
    /// The paper's four base configurations, in Table 1 order:
    /// conventional-random, parallel-random, conventional-sequential,
    /// parallel-sequential.
    pub fn paper_configurations() -> [(&'static str, MachineConfig); 4] {
        let base = MachineConfig::default();
        [
            (
                "Conventional-Random",
                MachineConfig {
                    disk_mode: DiskMode::Conventional,
                    access: AccessPattern::Random,
                    ..base.clone()
                },
            ),
            (
                "Parallel-Random",
                MachineConfig {
                    disk_mode: DiskMode::ParallelAccess,
                    access: AccessPattern::Random,
                    ..base.clone()
                },
            ),
            (
                "Conventional-Sequential",
                MachineConfig {
                    disk_mode: DiskMode::Conventional,
                    access: AccessPattern::Sequential,
                    ..base.clone()
                },
            ),
            (
                "Parallel-Sequential",
                MachineConfig {
                    disk_mode: DiskMode::ParallelAccess,
                    access: AccessPattern::Sequential,
                    ..base
                },
            ),
        ]
    }

    /// The Table 3 configuration: 75 query processors, 2 parallel-access
    /// data disks, 150 cache frames, sequential transactions, physical
    /// logging.
    pub fn table3_machine() -> MachineConfig {
        MachineConfig {
            query_processors: 75,
            cache_frames: 150,
            data_disks: 2,
            disk_mode: DiskMode::ParallelAccess,
            access: AccessPattern::Sequential,
            ..MachineConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_machine() {
        let c = MachineConfig::default();
        assert_eq!(c.query_processors, 25);
        assert_eq!(c.cache_frames, 100);
        assert_eq!(c.data_disks, 2);
        assert_eq!(c.min_pages, 1);
        assert_eq!(c.max_pages, 250);
        assert!((c.write_fraction - 0.2).abs() < 1e-12);
    }

    #[test]
    fn four_configurations_cover_the_grid() {
        let configs = MachineConfig::paper_configurations();
        assert_eq!(configs.len(), 4);
        assert_eq!(configs[0].1.disk_mode, DiskMode::Conventional);
        assert_eq!(configs[3].1.disk_mode, DiskMode::ParallelAccess);
        assert_eq!(configs[3].1.access, AccessPattern::Sequential);
    }

    #[test]
    fn table3_machine_matches_paper() {
        let c = MachineConfig::table3_machine();
        assert_eq!(c.query_processors, 75);
        assert_eq!(c.cache_frames, 150);
        assert_eq!(c.disk_mode, DiskMode::ParallelAccess);
    }
}
