//! Shared plumbing for the table-regeneration binaries.
//!
//! Every `table*` binary accepts an optional `--txns N` argument (default:
//! the calibrated paper-scale batch of 40 transactions) and an optional
//! `--json` flag to emit machine-readable output instead of the aligned
//! text table.

use rmdb_machine::experiments::{ExpTable, PAPER_TXNS};

/// Parse `--txns N` / `--json` from the command line.
pub fn parse_args() -> (usize, bool) {
    let args: Vec<String> = std::env::args().collect();
    let mut txns = PAPER_TXNS;
    let mut json = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--txns" => {
                txns = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(PAPER_TXNS);
                i += 1;
            }
            "--json" => json = true,
            _ => {}
        }
        i += 1;
    }
    (txns, json)
}

/// Run one table driver and print it.
pub fn run_table(f: fn(usize) -> ExpTable) {
    let (txns, json) = parse_args();
    let table = f(txns);
    if json {
        println!(
            "{}",
            rmdb_core::export::tables_to_json(std::slice::from_ref(&table))
        );
    } else {
        print!("{}", table.render());
    }
}
