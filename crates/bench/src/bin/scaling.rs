//! High-concurrency scaling sweep across block-device backends.
//!
//! Sweeps worker count × log-stream count × storage backend over the
//! real-thread exec pipeline, with a bank-transfer workload whose
//! conservation invariant is machine-checked concurrently through the MVCC
//! snapshot path. The question the sweep answers is the one the paper's
//! device assumptions beg today: does the architecture's scaling story
//! survive the move from modeled rotational platters to a real file with
//! fdatasync, or to an NVMe-class device whose service time grows with
//! queue depth?
//!
//! ```text
//! scaling [--secs F] [--smoke] [--json]
//! ```
//!
//! * `--secs F` — seconds per sweep cell (default 1.0)
//! * `--smoke`  — CI-sized run: backends {mem, nvme} × workers
//!   {32, 64, 128} × streams {8} at 0.4 s/cell
//! * `--json`   — machine-readable output only
//!
//! Per-backend device modeling:
//!
//! * `mem`  — instant writes; the group-commit force pays the bench's
//!   rotational model (500 µs) so sharing forces has something to share;
//! * `file` — every frame write is a pwrite into a temp file and every
//!   log force an fdatasync: the device itself charges, no model;
//! * `nvme` — one shared controller in realtime mode: every I/O sleeps
//!   its queue-depth-dependent modeled service time (10–100 µs band), so
//!   a deeper fleet genuinely convoys.
//!
//! The run also performs a FileDisk recovery byte-identity audit: a
//! crash image taken on the file backend is recovered twice and the two
//! recovered data disks are compared frame-for-frame. The emitted
//! `results/BENCH_scaling.json` carries the sweep cells plus the audit
//! verdict; `scripts/verify.sh` gates on zero conservation violations
//! and `filedisk_recovery.identical == true`.

use rmdb_exec::{ExecConfig, ExecDb, Executor};
use rmdb_obs::Registry;
use rmdb_storage::{BackendKind, Disk, NvmeConfig};
use rmdb_wal::{CrashImage, WalConfig, WalDb};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const DATA_PAGES: u64 = 256;
/// Bank accounts (pages) the transfer workload moves value between.
const ACCOUNTS: u64 = 64;
const INITIAL: u64 = 1_000;
/// Issue one MVCC conservation-sum read per this many submissions.
const READ_EVERY: u64 = 64;

/// Which backend a sweep cell provisions, with its per-cell knobs.
#[derive(Clone, Copy, PartialEq)]
enum Backend {
    Mem,
    File,
    Nvme,
}

impl Backend {
    fn name(self) -> &'static str {
        match self {
            Backend::Mem => "mem",
            Backend::File => "file",
            Backend::Nvme => "nvme",
        }
    }

    /// The provisioner for one cell. NVMe shares one realtime controller
    /// across the whole fleet — data disk and every log platter queue on
    /// one another, which is the point of the model.
    fn kind(self) -> BackendKind {
        match self {
            Backend::Mem => BackendKind::Mem,
            Backend::File => BackendKind::file(),
            Backend::Nvme => BackendKind::nvme_shared(NvmeConfig {
                realtime: true,
                ..NvmeConfig::default()
            }),
        }
    }

    /// Rotational force model only where the device charges nothing.
    fn force_delay_us(self) -> u64 {
        match self {
            Backend::Mem => 500,
            Backend::File | Backend::Nvme => 0,
        }
    }
}

struct Cell {
    backend: &'static str,
    workers: usize,
    streams: usize,
    txns: u64,
    secs: f64,
    txns_per_sec: f64,
    commit_p50_us: u64,
    commit_p99_us: u64,
    group_commits: u64,
    max_group: u64,
    conflict_retries: u64,
    wal_forces: u64,
    conservation_reads: u64,
    conservation_violations: u64,
}

impl Cell {
    fn json(&self) -> String {
        format!(
            "{{\"backend\":\"{}\",\"workers\":{},\"streams\":{},\"txns\":{},\
\"secs\":{:.3},\"txns_per_sec\":{:.1},\"commit_p50_us\":{},\"commit_p99_us\":{},\
\"group_commits\":{},\"max_group\":{},\"conflict_retries\":{},\"wal_forces\":{},\
\"conservation_reads\":{},\"conservation_violations\":{}}}",
            self.backend,
            self.workers,
            self.streams,
            self.txns,
            self.secs,
            self.txns_per_sec,
            self.commit_p50_us,
            self.commit_p99_us,
            self.group_commits,
            self.max_group,
            self.conflict_retries,
            self.wal_forces,
            self.conservation_reads,
            self.conservation_violations,
        )
    }
}

/// Inclusive-rank percentile of an unsorted latency sample, in place.
fn percentile_us(lat: &mut [u64], q: f64) -> u64 {
    if lat.is_empty() {
        return 0;
    }
    lat.sort_unstable();
    let idx = ((lat.len() as f64 - 1.0) * q).round() as usize;
    lat[idx]
}

fn run_cell(backend: Backend, workers: usize, streams: usize, secs: f64) -> Cell {
    let obs = Registry::new();
    let cfg = ExecConfig {
        wal: WalConfig {
            data_pages: DATA_PAGES,
            pool_frames: 320,
            log_streams: streams,
            log_frames: 1 << 17,
            seed: 1985,
            backend: backend.kind(),
            ..WalConfig::default()
        },
        pool_shards: 8,
        force_delay_us: backend.force_delay_us(),
        obs: obs.clone(),
        ..ExecConfig::default()
    };
    let db = Arc::new(ExecDb::new(cfg));
    // seed the accounts in one transaction so no snapshot can ever see a
    // partial seeding
    db.run_txn(0, |ctx| {
        for p in 0..ACCOUNTS {
            ctx.write(p, 0, &INITIAL.to_le_bytes())?;
        }
        Ok(())
    })
    .expect("seed accounts");
    let expected_total = ACCOUNTS * INITIAL;

    let pool = Executor::new(workers, workers * 2);
    let committed = Arc::new(AtomicU64::new(0));
    let cons_reads = Arc::new(AtomicU64::new(0));
    let violations = Arc::new(AtomicU64::new(0));
    let latencies = Arc::new(Mutex::new(Vec::<u64>::new()));

    let start = Instant::now();
    let deadline = start + Duration::from_secs_f64(secs);
    let mut i: u64 = 0;
    // xorshift: deterministic submission schedule, no rand dep
    let mut rng: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    while Instant::now() < deadline {
        let qp = (i % workers as u64) as usize;
        let db = Arc::clone(&db);
        if i % READ_EVERY == READ_EVERY - 1 {
            // lock-free conservation probe through the MVCC snapshot path
            let cons_reads = Arc::clone(&cons_reads);
            let violations = Arc::clone(&violations);
            pool.submit(move || {
                let sum = db.run_ro_txn(qp, |snap| {
                    let mut sum = 0u64;
                    for p in 0..ACCOUNTS {
                        let b = snap.read(p, 0, 8)?;
                        sum += u64::from_le_bytes(b.try_into().expect("8 bytes"));
                    }
                    Ok(sum)
                });
                if let Ok(sum) = sum {
                    cons_reads.fetch_add(1, Ordering::Relaxed);
                    if sum != expected_total {
                        violations.fetch_add(1, Ordering::Relaxed);
                        eprintln!("VIOLATION: snapshot sum {sum} != {expected_total}");
                    }
                }
            });
        } else {
            let from = next() % ACCOUNTS;
            let to = (from + 1 + next() % (ACCOUNTS - 1)) % ACCOUNTS;
            let amount = next() % 5;
            let committed = Arc::clone(&committed);
            let latencies = Arc::clone(&latencies);
            pool.submit(move || {
                let t0 = Instant::now();
                let ok = db
                    .run_txn(qp, |ctx| {
                        let f = u64::from_le_bytes(ctx.read(from, 0, 8)?.try_into().unwrap());
                        let t = u64::from_le_bytes(ctx.read(to, 0, 8)?.try_into().unwrap());
                        let moved = amount.min(f);
                        ctx.write(from, 0, &(f - moved).to_le_bytes())?;
                        ctx.write(to, 0, &(t + moved).to_le_bytes())?;
                        Ok(())
                    })
                    .is_ok();
                if ok {
                    committed.fetch_add(1, Ordering::Relaxed);
                    let us = t0.elapsed().as_micros() as u64;
                    latencies.lock().expect("latency lock").push(us);
                }
            });
        }
        i += 1;
    }
    pool.join();
    let elapsed = start.elapsed().as_secs_f64();

    // final strict conservation check under locks (not just snapshots)
    let total = Arc::new(AtomicU64::new(0));
    {
        let total = Arc::clone(&total);
        db.run_txn(0, move |ctx| {
            let mut sum = 0u64;
            for p in 0..ACCOUNTS {
                let b = ctx.read(p, 0, 8)?;
                sum += u64::from_le_bytes(b.try_into().expect("8 bytes"));
            }
            total.store(sum, Ordering::Relaxed);
            Ok(())
        })
        .expect("final conservation read");
    }
    if total.load(Ordering::Relaxed) != expected_total {
        violations.fetch_add(1, Ordering::Relaxed);
        eprintln!(
            "VIOLATION: final sum {} != {expected_total}",
            total.load(Ordering::Relaxed)
        );
    }

    let stats = db.stats();
    let _ = db.drain_appenders();
    let txns = committed.load(Ordering::Relaxed);
    let mut lat = std::mem::take(&mut *latencies.lock().expect("latency lock"));
    Cell {
        backend: backend.name(),
        workers,
        streams,
        txns,
        secs: elapsed,
        txns_per_sec: txns as f64 / elapsed,
        commit_p50_us: percentile_us(&mut lat, 0.50),
        commit_p99_us: percentile_us(&mut lat, 0.99),
        group_commits: stats.group_commits,
        max_group: stats.max_group_size,
        conflict_retries: stats.conflict_retries,
        wal_forces: stats.wal_forces,
        conservation_reads: cons_reads.load(Ordering::Relaxed),
        conservation_violations: violations.load(Ordering::Relaxed),
    }
}

// ---------------------------------------------------------------------------
// FileDisk recovery byte-identity audit
// ---------------------------------------------------------------------------

fn disks_identical(a: &Disk, b: &Disk) -> bool {
    if a.capacity() != b.capacity() {
        return false;
    }
    for addr in 0..a.capacity() {
        if a.is_allocated(addr) != b.is_allocated(addr) {
            return false;
        }
        if a.is_allocated(addr) {
            match (a.read_frame(addr), b.read_frame(addr)) {
                (Ok(fa), Ok(fb)) if fa == fb => {}
                _ => return false,
            }
        }
    }
    true
}

/// Take a crash image on the file backend mid-workload, recover it twice
/// (each recovery running against its own file copies), and compare the
/// recovered data disks frame-for-frame. Deterministic recovery on real
/// files is what lets the fault sweep's oracle trust a single run.
fn filedisk_recovery_audit(seeds: &[u64]) -> (bool, String) {
    let mut rows = Vec::new();
    let mut all_identical = true;
    for &seed in seeds {
        let wal_cfg = WalConfig {
            data_pages: 64,
            pool_frames: 16,
            log_streams: 2,
            log_frames: 4096,
            seed,
            backend: BackendKind::file(),
            ..WalConfig::default()
        };
        let cfg = ExecConfig {
            wal: wal_cfg.clone(),
            pool_shards: 2,
            force_delay_us: 0,
            ..ExecConfig::default()
        };
        let db = ExecDb::new(cfg);
        let mut x = seed | 1;
        for i in 0..200u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let page = x % 64;
            let qp = (i % 4) as usize;
            let val = x.to_le_bytes();
            let _ = db.run_txn(qp, |ctx| ctx.write(page, 0, &val));
        }
        let image = db.crash_image().expect("crash image");
        // duplicate the image: each recovery gets its own file copies
        let copy = CrashImage {
            data: image.data.snapshot(),
            logs: image.logs.iter().map(Disk::snapshot).collect(),
        };
        let (a, _) = WalDb::recover(image, wal_cfg.clone()).expect("recover a");
        let (b, _) = WalDb::recover(copy, wal_cfg).expect("recover b");
        let da = a.crash_image().data;
        let db_ = b.crash_image().data;
        let identical = disks_identical(&da, &db_);
        all_identical &= identical;
        assert_eq!(da.kind(), "file", "audit must run on the file backend");
        rows.push(format!("{{\"seed\":{seed},\"identical\":{identical}}}"));
    }
    (
        all_identical,
        format!(
            "{{\"identical\":{all_identical},\"runs\":[{}]}}",
            rows.join(",")
        ),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut secs = 1.0f64;
    let mut smoke = false;
    let mut json = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--secs" => {
                secs = args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(secs);
                i += 1;
            }
            "--smoke" => smoke = true,
            "--json" => json = true,
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let (backends, workers, streams, cell_secs): (&[Backend], &[usize], &[usize], f64) = if smoke {
        (
            &[Backend::Mem, Backend::Nvme],
            &[32, 64, 128],
            &[8],
            secs.min(0.4),
        )
    } else {
        (
            &[Backend::Mem, Backend::File, Backend::Nvme],
            &[32, 64, 96, 128],
            &[8, 16],
            secs,
        )
    };

    let mut cells = Vec::new();
    for &backend in backends {
        for &w in workers {
            for &s in streams {
                if !json {
                    eprintln!("[scaling] {} workers={w} streams={s}", backend.name());
                }
                cells.push(run_cell(backend, w, s, cell_secs));
            }
        }
    }

    let (_identical, audit) = filedisk_recovery_audit(&[7, 1985, 31337]);
    let host_cores = std::thread::available_parallelism().map_or(0, |n| n.get());
    let report = format!(
        "{{\"bench\":\"scaling\",\"smoke\":{smoke},\"host_cores\":{host_cores},\
\"cells\":[{}],\"filedisk_recovery\":{audit}}}\n",
        cells.iter().map(Cell::json).collect::<Vec<_>>().join(",")
    );

    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_scaling.json", &report).expect("write BENCH_scaling.json");

    if json {
        println!("{report}");
    } else {
        println!(
            "{:<6} {:>7} {:>7} {:>9} {:>12} {:>9} {:>9} {:>6}",
            "dev", "workers", "streams", "txns", "txns/sec", "p50 µs", "p99 µs", "viol"
        );
        for c in &cells {
            println!(
                "{:<6} {:>7} {:>7} {:>9} {:>12.0} {:>9} {:>9} {:>6}",
                c.backend,
                c.workers,
                c.streams,
                c.txns,
                c.txns_per_sec,
                c.commit_p50_us,
                c.commit_p99_us,
                c.conservation_violations
            );
        }
        println!("wrote results/BENCH_scaling.json");
    }

    let violations: u64 = cells.iter().map(|c| c.conservation_violations).sum();
    if violations > 0 || !_identical {
        eprintln!("FAIL: violations={violations} filedisk_identical={_identical}");
        std::process::exit(1);
    }
}
