//! Regenerates every table of the paper and (optionally) persists the
//! results: `all_tables [--txns N] [--out DIR] [--measured]` writes
//! `tables.txt` and `tables.json` into DIR when given. `--measured`
//! appends a wall-clock throughput table from the real-thread pipeline
//! alongside the simulated tables.

use rmdb_core::export::{tables_to_json, tables_to_text};
use rmdb_machine::experiments::{all_tables, PAPER_TXNS};
use rmdb_machine::measured::measured_throughput;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut txns = PAPER_TXNS;
    let mut out: Option<String> = None;
    let mut measured = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--txns" => {
                txns = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(PAPER_TXNS);
                i += 1;
            }
            "--out" => {
                out = args.get(i + 1).cloned();
                i += 1;
            }
            "--measured" => measured = true,
            _ => {}
        }
        i += 1;
    }
    let mut tables = all_tables(txns);
    if measured {
        tables.push(measured_throughput(0.5));
    }
    let text = tables_to_text(&tables);
    print!("{text}");
    if let Some(dir) = out {
        std::fs::create_dir_all(&dir).expect("create output dir");
        std::fs::write(format!("{dir}/tables.txt"), &text).expect("write tables.txt");
        std::fs::write(format!("{dir}/tables.json"), tables_to_json(&tables))
            .expect("write tables.json");
        eprintln!("wrote {dir}/tables.txt and {dir}/tables.json");
    }
}
