//! Recovery-time ablation for the checkpoint-bounded parallel restart
//! engine: `restart_ablation [--txns N] [--out DIR]`.
//!
//! Runs the restart-time table (recovery time vs checkpoint interval ×
//! redo worker count) at a workload size where the trends are visible —
//! the default is deliberately larger than the paper-table driver's,
//! because the measured quantity is wall-clock of the restart itself, not
//! simulator output. Also prints the full [`rmdb_restart::RestartReport`]
//! of one representative K=4 restart, and a serial-vs-K=4 speedup line
//! (the acceptance check for parallel redo).

use rmdb_core::export::{tables_to_json, tables_to_text};
use rmdb_machine::ablations::restart_time;
use rmdb_restart::{restart, RestartConfig};
use rmdb_wal::{WalConfig, WalDb};
use std::time::Instant;

const DEFAULT_TXNS: usize = 20_000;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut txns = DEFAULT_TXNS;
    let mut out: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--txns" => {
                txns = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(DEFAULT_TXNS);
                i += 1;
            }
            "--out" => {
                out = args.get(i + 1).cloned();
                i += 1;
            }
            _ => {}
        }
        i += 1;
    }

    let tables = vec![restart_time(txns)];
    let text = tables_to_text(&tables);
    print!("{text}");
    if let Some(dir) = out {
        std::fs::create_dir_all(&dir).expect("create output dir");
        std::fs::write(format!("{dir}/restart_ablation.txt"), &text)
            .expect("write restart_ablation.txt");
        std::fs::write(
            format!("{dir}/restart_ablation.json"),
            tables_to_json(&tables),
        )
        .expect("write restart_ablation.json");
        eprintln!("wrote {dir}/restart_ablation.txt and {dir}/restart_ablation.json");
    }

    // One representative run, end to end: fine checkpoints, K=4, with the
    // full report and the serial-replay comparison. Mirrors the
    // `restart_time` workload: 256-byte fragments over 1600 pages, an
    // interval that leaves a redo remainder after the last checkpoint.
    let ckpt_every = (txns as u64 / 16 + 1).max(2);
    let cfg = || WalConfig {
        data_pages: 2048,
        pool_frames: 64,
        log_streams: 4,
        log_frames: 1 << 16,
        ckpt_every_commits: ckpt_every,
        ..WalConfig::default()
    };
    let mut db = WalDb::new(cfg());
    let drone = db.begin();
    db.write(drone, 2047, 0, b"drone").expect("drone write");
    for i in 0..txns as u64 {
        let t = db.begin();
        let payload = [(i % 251) as u8; 256];
        db.write(t, i % 1600, (i % 14) as usize * 256, &payload)
            .expect("write");
        db.commit(t).expect("commit");
    }

    let t0 = Instant::now();
    let (_, serial) = WalDb::recover(db.crash_image(), cfg()).expect("serial recover");
    let serial_elapsed = t0.elapsed();

    let rcfg = RestartConfig::default();
    let (_, report) = restart(db.crash_image(), cfg(), &rcfg).expect("restart");

    println!();
    println!("{report}");
    println!(
        "serial full-log replay: {:?} ({} records); K={} bounded restart: {:?} ({:.2}x)",
        serial_elapsed,
        serial.records_scanned,
        report.workers,
        report.timings.total,
        serial_elapsed.as_secs_f64() / report.timings.total.as_secs_f64().max(1e-9),
    );
}
