//! Recovery-time ablation for the checkpoint-bounded parallel restart
//! engine: `restart_ablation [--txns N] [--out DIR] [--replay-json PATH]`.
//!
//! Runs the restart-time table (recovery time vs checkpoint interval ×
//! redo worker count) at a workload size where the trends are visible —
//! the default is deliberately larger than the paper-table driver's,
//! because the measured quantity is wall-clock of the restart itself, not
//! simulator output. Also prints the full [`rmdb_restart::RestartReport`]
//! of one representative K=4 restart, and a serial-vs-K=4 speedup line
//! (the acceptance check for parallel redo).
//!
//! `--replay-json PATH` runs the adaptive-logging × replay-scheduler
//! sweep instead and writes its JSON there: per-policy log bytes under
//! 90/10 hot-key traffic (physical / command / adaptive), and the
//! transaction-DAG replay's redo-phase time at K ∈ {1, 2, 4, 8} with a
//! byte-identity check across every K. This is what
//! `scripts/verify.sh` gates on (`results/BENCH_replay.json`).

use rmdb_core::export::{tables_to_json, tables_to_text};
use rmdb_machine::ablations::restart_time;
use rmdb_restart::{restart, RedoScheduler, RestartConfig};
use rmdb_storage::Disk;
use rmdb_wal::{CrashImage, LoggingPolicy, WalConfig, WalDb};
use std::fmt::Write as _;
use std::time::Instant;

const DEFAULT_TXNS: usize = 20_000;

/// xorshift64*: deterministic workload mixing without a rand dependency.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut txns = DEFAULT_TXNS;
    let mut out: Option<String> = None;
    let mut replay_json: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--txns" => {
                txns = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(DEFAULT_TXNS);
                i += 1;
            }
            "--out" => {
                out = args.get(i + 1).cloned();
                i += 1;
            }
            "--replay-json" => {
                replay_json = args.get(i + 1).cloned();
                i += 1;
            }
            _ => {}
        }
        i += 1;
    }

    if let Some(path) = replay_json {
        let doc = replay_sweep();
        std::fs::write(&path, &doc).expect("write replay sweep json");
        eprintln!("wrote {path}");
        return;
    }

    let tables = vec![restart_time(txns)];
    let text = tables_to_text(&tables);
    print!("{text}");
    if let Some(dir) = out {
        std::fs::create_dir_all(&dir).expect("create output dir");
        std::fs::write(format!("{dir}/restart_ablation.txt"), &text)
            .expect("write restart_ablation.txt");
        std::fs::write(
            format!("{dir}/restart_ablation.json"),
            tables_to_json(&tables),
        )
        .expect("write restart_ablation.json");
        eprintln!("wrote {dir}/restart_ablation.txt and {dir}/restart_ablation.json");
    }

    // One representative run, end to end: fine checkpoints, K=4, with the
    // full report and the serial-replay comparison. Mirrors the
    // `restart_time` workload: 256-byte fragments over 1600 pages, an
    // interval that leaves a redo remainder after the last checkpoint.
    let ckpt_every = (txns as u64 / 16 + 1).max(2);
    let cfg = || WalConfig {
        data_pages: 2048,
        pool_frames: 64,
        log_streams: 4,
        log_frames: 1 << 16,
        ckpt_every_commits: ckpt_every,
        ..WalConfig::default()
    };
    let mut db = WalDb::new(cfg());
    let drone = db.begin();
    db.write(drone, 2047, 0, b"drone").expect("drone write");
    for i in 0..txns as u64 {
        let t = db.begin();
        let payload = [(i % 251) as u8; 256];
        db.write(t, i % 1600, (i % 14) as usize * 256, &payload)
            .expect("write");
        db.commit(t).expect("commit");
    }

    let t0 = Instant::now();
    let (_, serial) = WalDb::recover(db.crash_image(), cfg()).expect("serial recover");
    let serial_elapsed = t0.elapsed();

    let rcfg = RestartConfig::default();
    let (_, report) = restart(db.crash_image(), cfg(), &rcfg).expect("restart");

    println!();
    println!("{report}");
    println!(
        "serial full-log replay: {:?} ({} records); K={} bounded restart: {:?} ({:.2}x)",
        serial_elapsed,
        serial.records_scanned,
        report.workers,
        report.timings.total,
        serial_elapsed.as_secs_f64() / report.timings.total.as_secs_f64().max(1e-9),
    );
}

/// The adaptive-logging × replay sweep behind `--replay-json`.
///
/// Part 1 — log bytes under hot-key traffic: the same 90/10 counter-bump
/// workload through each [`LoggingPolicy`]; the figure of merit is total
/// log bytes (Σ stream positions), where command records (one 8-byte
/// delta each) should beat before/after-image fragments outright and the
/// adaptive policy should track the command arm.
///
/// Part 2 — replay scaling: one adaptive mixed log, replayed through the
/// transaction-DAG scheduler at K ∈ {1, 2, 4, 8} (best of three runs per
/// K), with every recovered data disk compared byte-for-byte against the
/// K=1 result.
fn replay_sweep() -> String {
    // ---- Part 1: logging policy vs log bytes, 90/10 hot keys ----
    const HOT_TXNS: u64 = 3_000;
    let hot_cfg = |logging: LoggingPolicy| WalConfig {
        data_pages: 512,
        pool_frames: 256,
        log_streams: 4,
        log_frames: 1 << 14,
        logging,
        ..WalConfig::default()
    };
    let run_hotkey = |logging: LoggingPolicy| -> (u64, u64) {
        let mut db = WalDb::new(hot_cfg(logging));
        let mut rng = Rng(0x5EED_CAFE);
        for i in 0..HOT_TXNS {
            let t = db.begin();
            for _ in 0..3 {
                // 90% of bumps land on 16 hot counter pages
                let page = if rng.below(10) < 9 {
                    rng.below(16)
                } else {
                    16 + rng.below(480)
                };
                db.add_u64(t, page, (rng.below(8) * 8) as usize, 1 + rng.below(100))
                    .expect("bump");
            }
            if i % 5 == 0 {
                db.write(t, 16 + rng.below(480), 0, &[i as u8; 16])
                    .expect("write");
            }
            db.commit(t).expect("commit");
        }
        let bytes = (0..db.log().n_streams())
            .map(|s| db.log().stream(s).position())
            .sum();
        (bytes, db.committed())
    };
    let (phys_bytes, _) = run_hotkey(LoggingPolicy::Fragments);
    let (cmd_bytes, _) = run_hotkey(LoggingPolicy::Command);
    let (adaptive_bytes, committed) = run_hotkey(LoggingPolicy::Adaptive { threshold_pct: 100 });
    let byte_ratio = adaptive_bytes as f64 / phys_bytes as f64;
    println!(
        "hot-key 90/10 ({committed} txns): physical={phys_bytes}B command={cmd_bytes}B \
         adaptive={adaptive_bytes}B ({byte_ratio:.2}x physical)"
    );

    // ---- Part 2: transaction-DAG replay scaling with K ----
    const SCALE_TXNS: u64 = 400;
    const SCALE_PAGES: u64 = 1_600;
    let scale_cfg = || WalConfig {
        data_pages: 2_048,
        pool_frames: 512,
        log_streams: 4,
        log_frames: 1 << 16,
        logging: LoggingPolicy::Adaptive { threshold_pct: 100 },
        ..WalConfig::default()
    };
    let mut db = WalDb::new(scale_cfg());
    let mut rng = Rng(0xD1CE_F00D);
    for i in 0..SCALE_TXNS {
        let t = db.begin();
        // each txn updates a few pages of its own cluster: wide DAG, with
        // write-write chains on cluster-mates for real precedence edges
        let cluster = (i % (SCALE_PAGES / 8)) * 8;
        for w in 0..90u64 {
            let page = cluster + rng.below(8);
            let payload = [(i ^ w) as u8; 1024];
            db.write(t, page, (rng.below(3) * 1024) as usize, &payload)
                .expect("write");
        }
        db.add_u64(t, cluster, 3_200, 1).expect("bump");
        db.commit(t).expect("commit");
    }
    let image = db.crash_image();
    let clone = |img: &CrashImage| CrashImage {
        data: img.data.snapshot(),
        logs: img.logs.iter().map(Disk::snapshot).collect(),
    };

    // Modeled scaling comes from the K=1 run — its per-node times are
    // uninflated by contention — as Brent's bound T_k ≈ span + work/k.
    // Wall-clock redo is recorded per K too, but on a 1-core host (this
    // CI box: thread coordination with no parallel hardware) it cannot
    // show the scaling; the model, like the source paper's simulation,
    // reports what the DAG's dependency structure admits.
    let mut cells = String::new();
    let mut work_us = 0u64;
    let mut span_us = 0u64;
    let mut modeled = std::collections::BTreeMap::new();
    let mut baseline: Option<Disk> = None;
    let mut violations = 0u64;
    for k in [1usize, 2, 4, 8] {
        let rcfg = RestartConfig {
            workers: k,
            scheduler: RedoScheduler::TxnDag,
            truncate_behind_bound: false,
            ..RestartConfig::default()
        };
        let mut best_wall = u64::MAX;
        let mut last = None;
        for _ in 0..3 {
            let (dbk, report) = restart(clone(&image), scale_cfg(), &rcfg).expect("restart");
            best_wall = best_wall.min(report.timings.redo.as_micros() as u64);
            last = Some((dbk, report));
        }
        let (dbk, report) = last.expect("three runs");
        let recovered = dbk.crash_image();
        match &baseline {
            None => baseline = Some(recovered.data),
            Some(base) => {
                for addr in 0..base.capacity().min(recovered.data.capacity()) {
                    if base.is_allocated(addr) != recovered.data.is_allocated(addr) {
                        violations += 1;
                        continue;
                    }
                    if base.is_allocated(addr)
                        && base.read_frame(addr).ok() != recovered.data.read_frame(addr).ok()
                    {
                        violations += 1;
                    }
                }
            }
        }
        let replay = report.replay.expect("TxnDag summary");
        if k == 1 {
            work_us = replay.work_us;
            span_us = replay.span_us;
        }
        let modeled_us = span_us + work_us / k as u64;
        modeled.insert(k, modeled_us);
        if !cells.is_empty() {
            cells.push(',');
        }
        write!(
            cells,
            "\n    {{\"workers\": {k}, \"wall_redo_us\": {best_wall}, \
             \"modeled_redo_us\": {modeled_us}, \"dag_nodes\": {}, \
             \"dag_edges\": {}, \"txns_reexecuted\": {}, \"pages_installed\": {}}}",
            replay.dag_nodes, replay.dag_edges, replay.txns_reexecuted, replay.pages_installed
        )
        .expect("fmt");
        println!(
            "replay K={k}: wall={best_wall}us modeled={modeled_us}us dag={}n/{}e reexec={}",
            replay.dag_nodes, replay.dag_edges, replay.txns_reexecuted
        );
    }
    let speedup_k4 = modeled[&1] as f64 / (modeled[&4].max(1)) as f64;
    println!(
        "replay scaling: work={work_us}us span={span_us}us; modeled K=4 speedup \
         {speedup_k4:.2}x; equivalence violations={violations}"
    );

    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    format!(
        "{{\n  \"hotkey\": {{\n    \"txns\": {HOT_TXNS},\n    \"hot_pct\": 90,\n    \
         \"physical_bytes\": {phys_bytes},\n    \"command_bytes\": {cmd_bytes},\n    \
         \"adaptive_bytes\": {adaptive_bytes},\n    \
         \"adaptive_vs_physical\": {byte_ratio:.4}\n  }},\n  \
         \"scaling\": {{\n    \"txns\": {SCALE_TXNS},\n    \"pages\": {SCALE_PAGES},\n    \
         \"host_cores\": {cores},\n    \"work_us\": {work_us},\n    \
         \"span_us\": {span_us},\n    \
         \"cells\": [{cells}\n    ],\n    \"speedup_k4\": {speedup_k4:.4},\n    \
         \"equivalence_violations\": {violations}\n  }}\n}}\n"
    )
}
