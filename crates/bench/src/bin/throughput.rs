//! Measured throughput of the concurrent transaction pipeline.
//!
//! Sweeps worker count × log-stream count × contention level over the
//! real-thread engine (`rmdb-exec`), driving transactions through the
//! bounded worker-pool executor and reporting measured txns/sec — the
//! wall-clock companion to the simulated tables.
//!
//! ```text
//! throughput [--secs F] [--smoke] [--json] [--obs]
//! ```
//!
//! * `--secs F`  — seconds per sweep cell (default 1.0)
//! * `--smoke`   — CI-sized run: workers {1, 4} × streams {2} × low
//!   contention at 0.8 s/cell (~2 s total)
//! * `--json`    — machine-readable output only (one JSON object)
//! * `--obs`     — share one observability registry across every cell
//!   and dump the cumulative [`rmdb_obs::MetricsSnapshot`]: as a
//!   `"metrics"` key with `--json`, as a readable table otherwise

use rmdb_exec::{ExecConfig, ExecDb, Executor};
use rmdb_obs::Registry;
use rmdb_wal::WalConfig;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Clone, Copy, PartialEq)]
enum Contention {
    /// Workers write disjoint page ranges: conflicts only by accident.
    Low,
    /// All workers hammer the same four pages.
    High,
}

impl Contention {
    fn name(self) -> &'static str {
        match self {
            Contention::Low => "low",
            Contention::High => "high",
        }
    }
}

struct Cell {
    workers: usize,
    streams: usize,
    contention: Contention,
    txns: u64,
    secs: f64,
    txns_per_sec: f64,
    group_commits: u64,
    max_group: u64,
}

const DATA_PAGES: u64 = 256;

fn run_cell(
    workers: usize,
    streams: usize,
    contention: Contention,
    secs: f64,
    obs: &Registry,
) -> Cell {
    let cfg = ExecConfig {
        wal: WalConfig {
            data_pages: DATA_PAGES,
            pool_frames: 320,
            log_streams: streams,
            log_frames: 1 << 18,
            seed: 1985,
            ..WalConfig::default()
        },
        pool_shards: 8,
        // the paper's log devices are rotational: model half a
        // millisecond of service time per force so sharing forces
        // (group commit) has something to share
        force_delay_us: 500,
        obs: obs.clone(),
        ..ExecConfig::default()
    };
    let db = Arc::new(ExecDb::new(cfg));
    let pool = Executor::new(workers, workers * 2);
    let committed = Arc::new(AtomicU64::new(0));
    let pages_per_worker = DATA_PAGES / (workers as u64).max(1);

    let start = Instant::now();
    let deadline = start + Duration::from_secs_f64(secs);
    let mut i: u64 = 0;
    while Instant::now() < deadline {
        let qp = (i % workers as u64) as usize;
        let page = match contention {
            Contention::Low => {
                (qp as u64) * pages_per_worker + (i / workers as u64) % pages_per_worker
            }
            Contention::High => i % 4,
        };
        let db = Arc::clone(&db);
        let committed = Arc::clone(&committed);
        let val = i.to_le_bytes();
        // bounded queue: this blocks when all workers are busy
        pool.submit(move || {
            if db.run_txn(qp, |ctx| ctx.write(page, 0, &val)).is_ok() {
                committed.fetch_add(1, Ordering::Relaxed);
            }
        });
        i += 1;
    }
    pool.join();
    let elapsed = start.elapsed().as_secs_f64();
    let stats = db.stats();
    // quiesce the appender queues (enqueued == appended afterwards) and
    // fold this cell's pool counters into the shared registry before the
    // database drops; gauges reflect the last cell, counters accumulate
    let _ = db.drain_appenders();
    let _ = db.metrics();
    let txns = committed.load(Ordering::Relaxed);
    Cell {
        workers,
        streams,
        contention,
        txns,
        secs: elapsed,
        txns_per_sec: txns as f64 / elapsed,
        group_commits: stats.group_commits,
        max_group: stats.max_group_size,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut secs = 1.0f64;
    let mut smoke = false;
    let mut json = false;
    let mut obs_dump = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--secs" => {
                secs = args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(secs);
                i += 1;
            }
            "--smoke" => smoke = true,
            "--json" => json = true,
            "--obs" => obs_dump = true,
            _ => {}
        }
        i += 1;
    }

    let sweep: Vec<(usize, usize, Contention)> = if smoke {
        secs = 0.8;
        vec![(1, 2, Contention::Low), (4, 2, Contention::Low)]
    } else {
        let mut v = Vec::new();
        for &contention in &[Contention::Low, Contention::High] {
            for &streams in &[1usize, 2, 4] {
                for &workers in &[1usize, 2, 4, 8] {
                    v.push((workers, streams, contention));
                }
            }
        }
        v
    };

    let obs = Registry::new();
    let cells: Vec<Cell> = sweep
        .into_iter()
        .map(|(w, s, c)| run_cell(w, s, c, secs, &obs))
        .collect();
    let snapshot = obs.snapshot();

    if json {
        let body: Vec<String> = cells
            .iter()
            .map(|c| {
                format!(
                    "{{\"workers\":{},\"streams\":{},\"contention\":\"{}\",\"txns\":{},\"secs\":{:.3},\"txns_per_sec\":{:.1},\"group_commits\":{},\"max_group\":{}}}",
                    c.workers,
                    c.streams,
                    c.contention.name(),
                    c.txns,
                    c.secs,
                    c.txns_per_sec,
                    c.group_commits,
                    c.max_group
                )
            })
            .collect();
        let metrics = if obs_dump {
            format!(",\"metrics\":{}", snapshot.to_json())
        } else {
            String::new()
        };
        println!(
            "{{\"bench\":\"throughput\",\"cells\":[{}]{}}}",
            body.join(","),
            metrics
        );
    } else {
        println!(
            "{:>8} {:>8} {:>11} {:>10} {:>12} {:>8} {:>10}",
            "workers", "streams", "contention", "txns", "txns/sec", "groups", "max_group"
        );
        for c in &cells {
            println!(
                "{:>8} {:>8} {:>11} {:>10} {:>12.0} {:>8} {:>10}",
                c.workers,
                c.streams,
                c.contention.name(),
                c.txns,
                c.txns_per_sec,
                c.group_commits,
                c.max_group
            );
        }
        // scaling summary: low-contention 4-worker vs 1-worker speed-up
        // per stream count (the acceptance gate for the pipeline)
        for &streams in &[1usize, 2, 4] {
            let rate = |w: usize| {
                cells
                    .iter()
                    .find(|c| {
                        c.workers == w && c.streams == streams && c.contention == Contention::Low
                    })
                    .map(|c| c.txns_per_sec)
            };
            if let (Some(r1), Some(r4)) = (rate(1), rate(4)) {
                println!(
                    "speedup 4w/1w @ {streams} stream(s), low contention: {:.2}x",
                    r4 / r1
                );
            }
        }
        if obs_dump {
            println!("\ncumulative pipeline metrics (all cells):");
            print!("{snapshot}");
        }
    }
}
