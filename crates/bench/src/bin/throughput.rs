//! Measured throughput of the concurrent transaction pipeline.
//!
//! Sweeps worker count × log-stream count × contention level over the
//! real-thread engine (`rmdb-exec`), driving transactions through the
//! bounded worker-pool executor and reporting measured txns/sec — the
//! wall-clock companion to the simulated tables.
//!
//! ```text
//! throughput [--secs F] [--smoke] [--json] [--obs]
//!            [--kill-stream N@MS] [--streams K] [--rejoin-at MS]
//! ```
//!
//! * `--secs F`  — seconds per sweep cell (default 1.0)
//! * `--smoke`   — CI-sized run: workers {1, 4} × streams {2} × low
//!   contention at 0.8 s/cell (~2 s total)
//! * `--json`    — machine-readable output only (one JSON object)
//! * `--obs`     — share one observability registry across every cell
//!   and dump the cumulative [`rmdb_obs::MetricsSnapshot`]: as a
//!   `"metrics"` key with `--json`, as a readable table otherwise
//! * `--kill-stream N@MS` — run the failover benchmark instead of the
//!   sweep: 4 workers × `--streams` log streams, with log stream `N`'s
//!   device failed hard `MS` milliseconds into the run. Measures commit
//!   latency p50/p99 before, during, and after the failover window,
//!   verifies zero acked-commit loss against a recovered crash image,
//!   and writes `results/BENCH_failover.json`.
//! * `--streams K` — failover-bench fleet size (default 4, min 2); the
//!   emitted JSON carries it so gates derive expectations from the
//!   document instead of hardcoding the fleet size
//! * `--rejoin-at MS` — membership churn: heal the killed device `MS`
//!   milliseconds into the run (after the kill) and readmit the stream
//!   via [`rmdb_exec::ExecDb::rejoin_stream`]. Adds a `post_rejoin`
//!   latency phase and a `churn` row (throughput before the kill,
//!   during the outage, and after the rejoin) to the JSON.
//! * `--read-pct P[,P2,…]` — run the read-mix benchmark instead of the
//!   sweep: for each percentage, a `P`% read / `(100−P)`% bank-transfer
//!   mix runs twice — reads routed through the lock-free MVCC snapshot
//!   path (`run_ro_txn`) and through the lock table — with the
//!   conservation-sum invariant checked inside every read. Emits read
//!   tps, write tps, read p99, and snapshot-age p99 per row plus the
//!   mvcc/locked read-throughput speedup into
//!   `results/BENCH_readmix.json`; exits non-zero on any
//!   snapshot-consistency violation.

use rmdb_exec::{ExecConfig, ExecDb, Executor};
use rmdb_obs::Registry;
use rmdb_storage::{FaultInjector, FaultPlan};
use rmdb_wal::{WalConfig, WalDb};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Clone, Copy, PartialEq)]
enum Contention {
    /// Workers write disjoint page ranges: conflicts only by accident.
    Low,
    /// All workers hammer the same four pages.
    High,
}

impl Contention {
    fn name(self) -> &'static str {
        match self {
            Contention::Low => "low",
            Contention::High => "high",
        }
    }
}

struct Cell {
    workers: usize,
    streams: usize,
    contention: Contention,
    txns: u64,
    secs: f64,
    txns_per_sec: f64,
    group_commits: u64,
    max_group: u64,
}

const DATA_PAGES: u64 = 256;

fn run_cell(
    workers: usize,
    streams: usize,
    contention: Contention,
    secs: f64,
    obs: &Registry,
) -> Cell {
    let cfg = ExecConfig {
        wal: WalConfig {
            data_pages: DATA_PAGES,
            pool_frames: 320,
            log_streams: streams,
            log_frames: 1 << 18,
            seed: 1985,
            ..WalConfig::default()
        },
        pool_shards: 8,
        // the paper's log devices are rotational: model half a
        // millisecond of service time per force so sharing forces
        // (group commit) has something to share
        force_delay_us: 500,
        obs: obs.clone(),
        ..ExecConfig::default()
    };
    let db = Arc::new(ExecDb::new(cfg));
    let pool = Executor::new(workers, workers * 2);
    let committed = Arc::new(AtomicU64::new(0));
    let pages_per_worker = DATA_PAGES / (workers as u64).max(1);

    let start = Instant::now();
    let deadline = start + Duration::from_secs_f64(secs);
    let mut i: u64 = 0;
    while Instant::now() < deadline {
        let qp = (i % workers as u64) as usize;
        let page = match contention {
            Contention::Low => {
                (qp as u64) * pages_per_worker + (i / workers as u64) % pages_per_worker
            }
            Contention::High => i % 4,
        };
        let db = Arc::clone(&db);
        let committed = Arc::clone(&committed);
        let val = i.to_le_bytes();
        // bounded queue: this blocks when all workers are busy
        pool.submit(move || {
            if db.run_txn(qp, |ctx| ctx.write(page, 0, &val)).is_ok() {
                committed.fetch_add(1, Ordering::Relaxed);
            }
        });
        i += 1;
    }
    pool.join();
    let elapsed = start.elapsed().as_secs_f64();
    let stats = db.stats();
    // quiesce the appender queues (enqueued == appended afterwards) and
    // fold this cell's pool counters into the shared registry before the
    // database drops; gauges reflect the last cell, counters accumulate
    let _ = db.drain_appenders();
    let _ = db.metrics();
    let txns = committed.load(Ordering::Relaxed);
    Cell {
        workers,
        streams,
        contention,
        txns,
        secs: elapsed,
        txns_per_sec: txns as f64 / elapsed,
        group_commits: stats.group_commits,
        max_group: stats.max_group_size,
    }
}

// ---------------------------------------------------------------------------
// Failover benchmark (--kill-stream): latency through a mid-run stream death
// ---------------------------------------------------------------------------

/// `--kill-stream N@MS`: fail stream `N`'s device `MS` ms into the run.
struct KillSpec {
    stream: usize,
    at_ms: u64,
}

fn parse_kill_spec(s: &str) -> Option<KillSpec> {
    let (stream, at_ms) = match s.split_once('@') {
        Some((n, t)) => (n.parse().ok()?, t.parse().ok()?),
        None => (s.parse().ok()?, 500),
    };
    Some(KillSpec { stream, at_ms })
}

/// Inclusive-rank percentile of an unsorted latency sample, in place.
fn percentile_us(lat: &mut [u64], q: f64) -> u64 {
    if lat.is_empty() {
        return 0;
    }
    lat.sort_unstable();
    let idx = ((lat.len() as f64 - 1.0) * q).round() as usize;
    lat[idx]
}

/// One commit observation: completion time relative to run start, latency.
struct Sample {
    done_ms: u64,
    lat_us: u64,
}

fn phase_json(name: &str, samples: &[Sample]) -> String {
    let mut lat: Vec<u64> = samples.iter().map(|s| s.lat_us).collect();
    format!(
        "{{\"phase\":\"{name}\",\"commits\":{},\"p50_us\":{},\"p99_us\":{}}}",
        lat.len(),
        percentile_us(&mut lat, 0.50),
        percentile_us(&mut lat, 0.99),
    )
}

const KILL_WORKERS: u64 = 4;

/// The failover cell: 4 dedicated worker threads over disjoint page ranges
/// (one in-flight transaction per page, so acked values are per-page
/// monotone and zero-loss is machine-checkable), stream `spec.stream`
/// killed hard at `spec.at_ms`, optionally healed and readmitted at
/// `rejoin_at_ms`. Runs for `spec.at_ms + secs·1000` ms total.
fn run_failover(
    spec: &KillSpec,
    streams: usize,
    rejoin_at_ms: Option<u64>,
    secs: f64,
    json: bool,
) -> i32 {
    assert!(
        spec.stream < streams,
        "--kill-stream index {} out of range (fleet of {streams})",
        spec.stream
    );
    if let Some(r) = rejoin_at_ms {
        assert!(
            r > spec.at_ms,
            "--rejoin-at {r} must come after the kill at {} ms",
            spec.at_ms
        );
    }
    let obs = Registry::new();
    let cfg = ExecConfig {
        wal: WalConfig {
            // +2: pages reserved for the long-transaction probe
            data_pages: DATA_PAGES + 2,
            pool_frames: 320,
            log_streams: streams,
            log_frames: 1 << 18,
            seed: 1985,
            ..WalConfig::default()
        },
        pool_shards: 8,
        force_delay_us: 500,
        obs: obs.clone(),
        ..ExecConfig::default()
    };
    let wal_cfg = cfg.wal.clone();
    let db = Arc::new(ExecDb::new(cfg));
    let pages_per_worker = DATA_PAGES / KILL_WORKERS;
    // pages reserved for the long-transaction probe (see below)
    let probe_pages = [DATA_PAGES, DATA_PAGES + 1];
    let t0 = Instant::now();
    let deadline = t0 + Duration::from_millis(spec.at_ms) + Duration::from_secs_f64(secs);

    // killer: arm the device fault at the kill point, time detection, and
    // — under --rejoin-at — heal the device and readmit the stream. The
    // bench keeps the fault handle so the "repair" is the real protocol:
    // revive the injector, then rejoin_stream revalidates the durable
    // prefix and swaps in a successor appender.
    let fault = FaultInjector::handle(FaultPlan::new().fail_from_write(0));
    let kill_outcome = {
        let db = Arc::clone(&db);
        let fault = Arc::clone(&fault);
        let stream = spec.stream;
        let at = t0 + Duration::from_millis(spec.at_ms);
        let rejoin_at = rejoin_at_ms.map(|ms| t0 + Duration::from_millis(ms));
        std::thread::spawn(move || {
            std::thread::sleep(at.saturating_duration_since(Instant::now()));
            let t_kill = Instant::now();
            db.inject_stream_fault_handle(stream, Arc::clone(&fault))
                .expect("inject kill fault");
            while !db.is_stream_dead(stream) {
                if t_kill.elapsed() > Duration::from_secs(30) {
                    return (u64::MAX, None); // never detected — reported, gates fail
                }
                std::thread::sleep(Duration::from_micros(200));
            }
            let detect_ms = t_kill.elapsed().as_millis() as u64;
            let Some(rejoin_at) = rejoin_at else {
                return (detect_ms, None);
            };
            std::thread::sleep(rejoin_at.saturating_duration_since(Instant::now()));
            fault.lock().revive();
            let t_rejoin = Instant::now();
            while db.rejoin_stream(stream).is_err() {
                if t_rejoin.elapsed() > Duration::from_secs(30) {
                    return (detect_ms, Some(u64::MAX)); // never rejoined — gates fail
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            (detect_ms, Some(t0.elapsed().as_millis() as u64))
        })
    };

    // worker w owns pages [w·ppw, (w+1)·ppw): vals per page are strictly
    // increasing and at most one txn per page is in flight, so per-page
    // "highest acked val" is exact
    struct WorkerOut {
        samples: Vec<Sample>,
        acked_high: Vec<(u64, u64)>,  // (page, highest acked val)
        issued_high: Vec<(u64, u64)>, // (page, highest issued val)
        errors: u64,
    }
    let outs: Vec<WorkerOut> = std::thread::scope(|s| {
        // the long-transaction probe: a transaction homed on the victim,
        // holding volatile fragments when the stream dies, committing only
        // after quarantine — the paper's "transaction in flight across a
        // log-processor failure". Its commit MUST reroute its fragments to
        // a survivor, making the reroute path a deterministic part of every
        // bench run rather than a timing accident.
        {
            let db = Arc::clone(&db);
            let stream = spec.stream;
            s.spawn(move || {
                let mut txn = {
                    let mut attempts = 0;
                    loop {
                        let t = db.begin(0);
                        if t.home() == stream {
                            break t;
                        }
                        db.abort(t).expect("abort empty probe txn");
                        attempts += 1;
                        assert!(
                            attempts < 64,
                            "selector never homed a txn on stream {stream}"
                        );
                    }
                };
                for (k, &page) in probe_pages.iter().enumerate() {
                    db.write(&mut txn, page, 0, &(k as u64 + 1).to_le_bytes())
                        .expect("probe write");
                }
                let t_wait = Instant::now();
                while !db.is_stream_dead(stream) && t_wait.elapsed() < Duration::from_secs(60) {
                    std::thread::sleep(Duration::from_millis(1));
                }
                db.commit(txn)
                    .and_then(|h| h.wait())
                    .expect("probe commit after failover");
            });
        }
        let handles: Vec<_> = (0..KILL_WORKERS)
            .map(|w| {
                let db = Arc::clone(&db);
                s.spawn(move || {
                    let base = w * pages_per_worker;
                    let mut out = WorkerOut {
                        samples: Vec::new(),
                        acked_high: vec![(0, 0); pages_per_worker as usize],
                        issued_high: vec![(0, 0); pages_per_worker as usize],
                        errors: 0,
                    };
                    let mut i: u64 = 0;
                    while Instant::now() < deadline {
                        let slot = (i % pages_per_worker) as usize;
                        let page = base + slot as u64;
                        // vals start at 1 so 0 always means "never written"
                        let val = i + 1;
                        out.issued_high[slot] = (page, val);
                        let t_txn = Instant::now();
                        match db.run_txn(w as usize, |ctx| ctx.write(page, 0, &val.to_le_bytes())) {
                            Ok(()) => {
                                out.samples.push(Sample {
                                    done_ms: t0.elapsed().as_millis() as u64,
                                    lat_us: t_txn.elapsed().as_micros() as u64,
                                });
                                out.acked_high[slot] = (page, val);
                            }
                            Err(_) => out.errors += 1,
                        }
                        i += 1;
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let (detect_ms, rejoined_at_ms) = kill_outcome.join().unwrap();
    let rejoin_boundary = rejoined_at_ms.filter(|&ms| ms != u64::MAX);

    // bucket commit latencies around the failover window; with a rejoin,
    // everything past the readmission lands in a fourth phase
    let quarantined_at_ms = spec.at_ms.saturating_add(detect_ms);
    let mut before = Vec::new();
    let mut during = Vec::new();
    let mut after = Vec::new();
    let mut post_rejoin = Vec::new();
    for out in &outs {
        for s in &out.samples {
            if s.done_ms < spec.at_ms {
                before.push(Sample { ..*s });
            } else if s.done_ms <= quarantined_at_ms {
                during.push(Sample { ..*s });
            } else if rejoin_boundary.map_or(true, |r| s.done_ms < r) {
                after.push(Sample { ..*s });
            } else {
                post_rejoin.push(Sample { ..*s });
            }
        }
    }
    let errors: u64 = outs.iter().map(|o| o.errors).sum();
    let live_after = db.live_streams();
    let degraded = db.is_degraded();

    // zero-acked-loss audit: recover the final crash image and require
    // every page to read back at least its highest acked value (per-page
    // vals are monotone; the only other legal reading is the one unacked
    // in-flight val)
    let image = db.crash_image().expect("final crash image");
    let (mut rec, _) = WalDb::recover(image, wal_cfg).expect("recovery after failover");
    let t = rec.begin();
    let mut lost_acked: u64 = 0;
    for out in &outs {
        for (slot, &(page, acked_val)) in out.acked_high.iter().enumerate() {
            if acked_val == 0 {
                continue;
            }
            let got = rec.read(t, page, 0, 8).expect("read after recovery");
            let got_val = u64::from_le_bytes(got.try_into().expect("8-byte slot"));
            let (_, issued_val) = out.issued_high[slot];
            if got_val < acked_val || got_val > issued_val {
                lost_acked += 1;
                eprintln!(
                    "LOST: page {page} recovered val {got_val}, acked {acked_val}, issued {issued_val}"
                );
            }
        }
    }
    // the probe committed after the failover, so its rerouted fragments
    // must have survived recovery exactly
    for (k, &page) in probe_pages.iter().enumerate() {
        let got = rec.read(t, page, 0, 8).expect("read probe page");
        let got_val = u64::from_le_bytes(got.try_into().expect("8-byte slot"));
        if got_val != k as u64 + 1 {
            lost_acked += 1;
            eprintln!(
                "LOST: probe page {page} recovered val {got_val}, expected {}",
                k + 1
            );
        }
    }
    rec.abort(t).expect("read-only abort");

    let snap = obs.snapshot();
    let counter = |name: &str| snap.counter(name).unwrap_or(0);

    // the membership-churn row: throughput before the kill, during the
    // outage (kill → rejoin), and after the rejoin — the acceptance gate
    // compares the last against the first
    let end_ms = spec.at_ms + (secs * 1000.0) as u64;
    let tps = |commits: usize, window_ms: u64| {
        if window_ms == 0 {
            0.0
        } else {
            commits as f64 * 1000.0 / window_ms as f64
        }
    };
    let churn = rejoin_at_ms.map_or("null".to_string(), |requested| {
        let rejoined = rejoin_boundary.unwrap_or(end_ms);
        format!(
            "{{\"rejoin_at_ms\":{requested},\"rejoined_at_ms\":{},\
\"tps_before\":{:.1},\"tps_outage\":{:.1},\"tps_after_rejoin\":{:.1}}}",
            rejoin_boundary.map_or("null".to_string(), |r| r.to_string()),
            tps(before.len(), spec.at_ms),
            tps(
                during.len() + after.len(),
                rejoined.saturating_sub(spec.at_ms)
            ),
            tps(post_rejoin.len(), end_ms.saturating_sub(rejoined)),
        )
    });
    let mut phases = vec![
        phase_json("before", &before),
        phase_json("during", &during),
        phase_json("after", &after),
    ];
    if rejoin_at_ms.is_some() {
        phases.push(phase_json("post_rejoin", &post_rejoin));
    }
    let commits_after = after.len() + post_rejoin.len();
    let report = format!(
        "{{\"bench\":\"failover\",\"kill_stream\":{},\"kill_at_ms\":{},\"streams\":{},\
\"detect_ms\":{},\
\"phases\":[{}],\
\"commits_after_failover\":{},\"errors\":{},\"lost_acked_commits\":{},\
\"live_streams_after\":{},\"degraded\":{},\"rejoins\":{},\"churn\":{},\
\"failover\":{{\"quarantined\":{},\"reroutes\":{},\"rerouted_fragments\":{},\
\"txn_retries\":{},\"degraded_rejects\":{}}}}}",
        spec.stream,
        spec.at_ms,
        streams,
        detect_ms,
        phases.join(","),
        commits_after,
        errors,
        lost_acked,
        live_after,
        degraded,
        counter("failover.rejoins"),
        churn,
        counter("failover.quarantined"),
        counter("failover.reroutes"),
        counter("failover.rerouted_fragments"),
        counter("failover.txn_retries"),
        counter("failover.degraded_rejects"),
    );
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_failover.json", &report).expect("write BENCH_failover.json");
    if json {
        println!("{report}");
    } else {
        println!(
            "failover bench: killed stream {} of {} at {} ms (detected in {} ms)",
            spec.stream, streams, spec.at_ms, detect_ms
        );
        if let Some(r) = rejoin_boundary {
            println!("rejoined stream {} at {} ms", spec.stream, r);
        }
        println!("{report}");
        println!("wrote results/BENCH_failover.json");
    }
    let rejoin_failed = rejoin_at_ms.is_some()
        && (rejoin_boundary.is_none()
            || live_after != streams
            || degraded
            || post_rejoin.is_empty()
            || counter("failover.rejoins") == 0);
    if lost_acked > 0 || commits_after == 0 || detect_ms == u64::MAX || rejoin_failed {
        1
    } else {
        0
    }
}

// ---------------------------------------------------------------------------
// Read-mix benchmark (--read-pct): MVCC snapshot reads vs the locked path
// ---------------------------------------------------------------------------

/// How a read-mix cell routes its reads.
#[derive(Clone, Copy, PartialEq)]
enum ReadPath {
    /// `run_ro_txn`: lock-free MVCC snapshot reads.
    Mvcc,
    /// `run_txn` with shared locks: readers queue behind writers' X
    /// locks, which are held across the group-commit force.
    Locked,
}

impl ReadPath {
    fn name(self) -> &'static str {
        match self {
            ReadPath::Mvcc => "mvcc",
            ReadPath::Locked => "locked",
        }
    }
}

/// Bank pages for the read-mix cell: every reader sums all of them and
/// checks conservation, every writer moves value between a random pair.
const MIX_ACCOUNTS: u64 = 16;
const MIX_INITIAL: u64 = 1_000;
const MIX_WORKERS: usize = 4;

struct MixRow {
    read_pct: u32,
    path: ReadPath,
    reads: u64,
    writes: u64,
    violations: u64,
    errors: u64,
    secs: f64,
    read_p99_us: u64,
    snapshot_age_p99: u64,
}

impl MixRow {
    fn read_tps(&self) -> f64 {
        self.reads as f64 / self.secs
    }
    fn write_tps(&self) -> f64 {
        self.writes as f64 / self.secs
    }
    fn json(&self) -> String {
        format!(
            "{{\"mode\":\"{}\",\"read_pct\":{},\"reads\":{},\"writes\":{},\
\"read_tps\":{:.1},\"write_tps\":{:.1},\"violations\":{},\"errors\":{},\
\"read_p99_us\":{},\"snapshot_age_p99\":{}}}",
            self.path.name(),
            self.read_pct,
            self.reads,
            self.writes,
            self.read_tps(),
            self.write_tps(),
            self.violations,
            self.errors,
            self.read_p99_us,
            self.snapshot_age_p99,
        )
    }
}

/// One read-mix cell: `MIX_WORKERS` threads each issuing `read_pct`%
/// conservation-sum reads (routed per `path`) and the rest bank
/// transfers, against hot pages and a rotational-model log device. The
/// sum invariant is checked inside every read — in MVCC mode that is
/// the snapshot-consistency oracle, in locked mode 2PL guarantees it.
fn run_mix_cell(read_pct: u32, path: ReadPath, secs: f64) -> MixRow {
    let obs = Registry::new();
    let cfg = ExecConfig {
        wal: WalConfig {
            data_pages: DATA_PAGES,
            pool_frames: 320,
            log_streams: 2,
            log_frames: 1 << 18,
            seed: 1985,
            ..WalConfig::default()
        },
        pool_shards: 8,
        force_delay_us: 500,
        obs: obs.clone(),
        ..ExecConfig::default()
    };
    let db = Arc::new(ExecDb::new(cfg));
    // seed the accounts (one txn so a snapshot can never see a partial
    // seeding)
    db.run_txn(0, |ctx| {
        for p in 0..MIX_ACCOUNTS {
            ctx.write(p, 0, &MIX_INITIAL.to_le_bytes())?;
        }
        Ok(())
    })
    .expect("seed accounts");
    let expected_total = MIX_ACCOUNTS * MIX_INITIAL;

    struct Out {
        reads: u64,
        writes: u64,
        violations: u64,
        errors: u64,
        read_lat_us: Vec<u64>,
    }
    let start = Instant::now();
    let deadline = start + Duration::from_secs_f64(secs);
    let outs: Vec<Out> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..MIX_WORKERS)
            .map(|w| {
                let db = Arc::clone(&db);
                s.spawn(move || {
                    let mut out = Out {
                        reads: 0,
                        writes: 0,
                        violations: 0,
                        errors: 0,
                        read_lat_us: Vec::new(),
                    };
                    // xorshift: deterministic per worker, no rand dep
                    let mut rng: u64 = 0x9E37_79B9_7F4A_7C15 ^ (w as u64 + 1);
                    let mut next = move || {
                        rng ^= rng << 13;
                        rng ^= rng >> 7;
                        rng ^= rng << 17;
                        rng
                    };
                    while Instant::now() < deadline {
                        if next() % 100 < read_pct as u64 {
                            // conservation-sum read over every account
                            let t_read = Instant::now();
                            let sum: Result<u64, _> = match path {
                                ReadPath::Mvcc => db.run_ro_txn(w, |snap| {
                                    let mut sum = 0u64;
                                    for p in 0..MIX_ACCOUNTS {
                                        let b = snap.read(p, 0, 8)?;
                                        sum += u64::from_le_bytes(b.try_into().expect("8 bytes"));
                                    }
                                    Ok(sum)
                                }),
                                ReadPath::Locked => {
                                    let total = std::sync::atomic::AtomicU64::new(0);
                                    db.run_txn(w, |ctx| {
                                        let mut sum = 0u64;
                                        for p in 0..MIX_ACCOUNTS {
                                            let b = ctx.read(p, 0, 8)?;
                                            sum +=
                                                u64::from_le_bytes(b.try_into().expect("8 bytes"));
                                        }
                                        total.store(sum, Ordering::Relaxed);
                                        Ok(())
                                    })
                                    .map(|()| total.load(Ordering::Relaxed))
                                }
                            };
                            match sum {
                                Ok(sum) => {
                                    out.reads += 1;
                                    out.read_lat_us.push(t_read.elapsed().as_micros() as u64);
                                    if sum != expected_total {
                                        out.violations += 1;
                                        eprintln!(
                                            "VIOLATION ({}): sum {sum} != {expected_total}",
                                            path.name()
                                        );
                                    }
                                }
                                Err(_) => out.errors += 1,
                            }
                        } else {
                            // bank transfer between a random pair
                            let from = next() % MIX_ACCOUNTS;
                            let to = (from + 1 + next() % (MIX_ACCOUNTS - 1)) % MIX_ACCOUNTS;
                            let amount = next() % 5;
                            match db.run_txn(w, |ctx| {
                                let f =
                                    u64::from_le_bytes(ctx.read(from, 0, 8)?.try_into().unwrap());
                                let t = u64::from_le_bytes(ctx.read(to, 0, 8)?.try_into().unwrap());
                                let moved = amount.min(f);
                                ctx.write(from, 0, &(f - moved).to_le_bytes())?;
                                ctx.write(to, 0, &(t + moved).to_le_bytes())?;
                                Ok(())
                            }) {
                                Ok(()) => out.writes += 1,
                                Err(_) => out.errors += 1,
                            }
                        }
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = start.elapsed().as_secs_f64();
    let snap = obs.snapshot();
    let mut read_lat: Vec<u64> = outs.iter().flat_map(|o| o.read_lat_us.clone()).collect();
    MixRow {
        read_pct,
        path,
        reads: outs.iter().map(|o| o.reads).sum(),
        writes: outs.iter().map(|o| o.writes).sum(),
        violations: outs.iter().map(|o| o.violations).sum(),
        errors: outs.iter().map(|o| o.errors).sum(),
        secs: elapsed,
        read_p99_us: percentile_us(&mut read_lat, 0.99),
        snapshot_age_p99: snap
            .histogram("mvcc.snapshot_age")
            .map_or(0, |h| h.quantile(0.99)),
    }
}

/// `--read-pct`: for each requested mix, run the same workload once with
/// MVCC snapshot reads and once through the lock table, write
/// `results/BENCH_readmix.json`, and fail (exit 1) on any
/// snapshot-consistency violation.
fn run_readmix(pcts: &[u32], secs: f64, json: bool) -> i32 {
    let mut rows = Vec::new();
    for &pct in pcts {
        rows.push(run_mix_cell(pct, ReadPath::Mvcc, secs));
        rows.push(run_mix_cell(pct, ReadPath::Locked, secs));
    }
    let speedup = |pct: u32| -> Option<f64> {
        let tps = |path: ReadPath| {
            rows.iter()
                .find(|r| r.read_pct == pct && r.path == path)
                .map(MixRow::read_tps)
        };
        match (tps(ReadPath::Mvcc), tps(ReadPath::Locked)) {
            (Some(m), Some(l)) if l > 0.0 => Some(m / l),
            _ => None,
        }
    };
    let speedups: Vec<String> = pcts
        .iter()
        .filter_map(|&p| speedup(p).map(|s| format!("\"{p}\":{s:.2}")))
        .collect();
    let violations: u64 = rows.iter().map(|r| r.violations).sum();
    let body: Vec<String> = rows.iter().map(MixRow::json).collect();
    let report = format!(
        "{{\"bench\":\"readmix\",\"workers\":{MIX_WORKERS},\"accounts\":{MIX_ACCOUNTS},\
\"rows\":[{}],\"read_speedup\":{{{}}},\"violations\":{violations}}}",
        body.join(","),
        speedups.join(","),
    );
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_readmix.json", &report).expect("write BENCH_readmix.json");
    if json {
        println!("{report}");
    } else {
        println!(
            "{:>5} {:>8} {:>10} {:>10} {:>12} {:>12} {:>12} {:>10}",
            "mix", "mode", "reads", "writes", "read_tps", "write_tps", "read_p99_us", "violations"
        );
        for r in &rows {
            println!(
                "{:>4}% {:>8} {:>10} {:>10} {:>12.0} {:>12.0} {:>12} {:>10}",
                r.read_pct,
                r.path.name(),
                r.reads,
                r.writes,
                r.read_tps(),
                r.write_tps(),
                r.read_p99_us,
                r.violations
            );
        }
        for &p in pcts {
            if let Some(s) = speedup(p) {
                println!("read speedup (mvcc/locked) @ {p}% reads: {s:.2}x");
            }
        }
        println!("{report}");
        println!("wrote results/BENCH_readmix.json");
    }
    if violations > 0 {
        1
    } else {
        0
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut secs = 1.0f64;
    let mut smoke = false;
    let mut json = false;
    let mut obs_dump = false;
    let mut kill: Option<KillSpec> = None;
    let mut kill_streams: usize = 4;
    let mut rejoin_at: Option<u64> = None;
    let mut read_pcts: Option<Vec<u32>> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--secs" => {
                secs = args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(secs);
                i += 1;
            }
            "--smoke" => smoke = true,
            "--json" => json = true,
            "--obs" => obs_dump = true,
            "--kill-stream" => {
                kill = args.get(i + 1).map(|s| {
                    parse_kill_spec(s).unwrap_or_else(|| {
                        eprintln!("bad --kill-stream spec {s:?} (want N or N@MS)");
                        std::process::exit(2);
                    })
                });
                if kill.is_none() {
                    eprintln!("--kill-stream needs an argument (N or N@MS)");
                    std::process::exit(2);
                }
                i += 1;
            }
            "--streams" => {
                kill_streams = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 2)
                    .unwrap_or_else(|| {
                        eprintln!("--streams needs an integer argument >= 2");
                        std::process::exit(2);
                    });
                i += 1;
            }
            "--rejoin-at" => {
                rejoin_at = Some(args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or_else(
                    || {
                        eprintln!("--rejoin-at needs a millisecond argument");
                        std::process::exit(2);
                    },
                ));
                i += 1;
            }
            "--read-pct" => {
                let parsed: Option<Vec<u32>> = args.get(i + 1).map(|s| {
                    s.split(',')
                        .map(|p| {
                            p.trim()
                                .parse()
                                .ok()
                                .filter(|&v| v < 100)
                                .unwrap_or_else(|| {
                                    eprintln!(
                                        "bad --read-pct {p:?} (want 0..=99, comma-separated)"
                                    );
                                    std::process::exit(2);
                                })
                        })
                        .collect()
                });
                read_pcts = match parsed {
                    Some(v) if !v.is_empty() => Some(v),
                    _ => {
                        eprintln!("--read-pct needs an argument (e.g. 95 or 95,99)");
                        std::process::exit(2);
                    }
                };
                i += 1;
            }
            _ => {}
        }
        i += 1;
    }

    if let Some(pcts) = read_pcts {
        std::process::exit(run_readmix(&pcts, secs, json));
    }
    if let Some(spec) = kill {
        std::process::exit(run_failover(&spec, kill_streams, rejoin_at, secs, json));
    }

    let sweep: Vec<(usize, usize, Contention)> = if smoke {
        secs = 0.8;
        vec![(1, 2, Contention::Low), (4, 2, Contention::Low)]
    } else {
        let mut v = Vec::new();
        for &contention in &[Contention::Low, Contention::High] {
            for &streams in &[1usize, 2, 4] {
                for &workers in &[1usize, 2, 4, 8] {
                    v.push((workers, streams, contention));
                }
            }
        }
        v
    };

    let obs = Registry::new();
    let cells: Vec<Cell> = sweep
        .into_iter()
        .map(|(w, s, c)| run_cell(w, s, c, secs, &obs))
        .collect();
    let snapshot = obs.snapshot();

    if json {
        let body: Vec<String> = cells
            .iter()
            .map(|c| {
                format!(
                    "{{\"workers\":{},\"streams\":{},\"contention\":\"{}\",\"txns\":{},\"secs\":{:.3},\"txns_per_sec\":{:.1},\"group_commits\":{},\"max_group\":{}}}",
                    c.workers,
                    c.streams,
                    c.contention.name(),
                    c.txns,
                    c.secs,
                    c.txns_per_sec,
                    c.group_commits,
                    c.max_group
                )
            })
            .collect();
        let metrics = if obs_dump {
            format!(",\"metrics\":{}", snapshot.to_json())
        } else {
            String::new()
        };
        println!(
            "{{\"bench\":\"throughput\",\"cells\":[{}]{}}}",
            body.join(","),
            metrics
        );
    } else {
        println!(
            "{:>8} {:>8} {:>11} {:>10} {:>12} {:>8} {:>10}",
            "workers", "streams", "contention", "txns", "txns/sec", "groups", "max_group"
        );
        for c in &cells {
            println!(
                "{:>8} {:>8} {:>11} {:>10} {:>12.0} {:>8} {:>10}",
                c.workers,
                c.streams,
                c.contention.name(),
                c.txns,
                c.txns_per_sec,
                c.group_commits,
                c.max_group
            );
        }
        // scaling summary: low-contention 4-worker vs 1-worker speed-up
        // per stream count (the acceptance gate for the pipeline)
        for &streams in &[1usize, 2, 4] {
            let rate = |w: usize| {
                cells
                    .iter()
                    .find(|c| {
                        c.workers == w && c.streams == streams && c.contention == Contention::Low
                    })
                    .map(|c| c.txns_per_sec)
            };
            if let (Some(r1), Some(r4)) = (rate(1), rate(4)) {
                println!(
                    "speedup 4w/1w @ {streams} stream(s), low contention: {:.2}x",
                    r4 / r1
                );
            }
        }
        if obs_dump {
            println!("\ncumulative pipeline metrics (all cells):");
            print!("{snapshot}");
        }
    }
}
