//! Regenerates Table 08 of the paper. `--txns N` scales the batch;
//! `--json` emits machine-readable output.

fn main() {
    rmdb_bench::run_table(rmdb_machine::experiments::table08);
}
