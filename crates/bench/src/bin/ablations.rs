//! Regenerates the ablation experiments (prose findings of §4.1.3 and
//! §4.2.5 plus sensitivity sweeps): `ablations [--txns N] [--out DIR]`.

use rmdb_core::export::{tables_to_json, tables_to_text};
use rmdb_machine::ablations::all_ablations;
use rmdb_machine::experiments::PAPER_TXNS;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut txns = PAPER_TXNS;
    let mut out: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--txns" => {
                txns = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(PAPER_TXNS);
                i += 1;
            }
            "--out" => {
                out = args.get(i + 1).cloned();
                i += 1;
            }
            _ => {}
        }
        i += 1;
    }
    let tables = all_ablations(txns);
    let text = tables_to_text(&tables);
    print!("{text}");
    if let Some(dir) = out {
        std::fs::create_dir_all(&dir).expect("create output dir");
        std::fs::write(format!("{dir}/ablations.txt"), &text).expect("write ablations.txt");
        std::fs::write(format!("{dir}/ablations.json"), tables_to_json(&tables))
            .expect("write ablations.json");
        eprintln!("wrote {dir}/ablations.txt and {dir}/ablations.json");
    }
}
