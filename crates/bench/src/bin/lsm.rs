//! Leveled differential-store bench: write amplification and range-scan
//! throughput across the two paper-§3 query strategies.
//!
//! The leveled store buys bounded read fan-in by rewriting runs during
//! compaction; the cost is write amplification — device frames written
//! per user byte committed. This bench drives a put/delete workload
//! through the full hierarchy (memtable → journal → L0 → compacted
//! levels), then measures:
//!
//! * **write amplification** — `frames_written × FRAME_SIZE / user_bytes`,
//!   split into journal and run-rewrite components;
//! * **range-scan throughput** — scans/second for the *basic* strategy
//!   (full set-union ∪ set-difference) vs the *optimal* strategy
//!   (newest-first priority walk), over narrow and wide key ranges;
//! * **equivalence** — every measured scan is cross-checked basic vs
//!   optimal; any divergence is counted and fails the process, because a
//!   store that answers faster by answering differently is not faster.
//!
//! ```text
//! lsm [--smoke] [--json]
//! ```
//!
//! * `--smoke` — CI-sized single cell
//! * `--json`  — machine-readable output only
//!
//! Emits `results/BENCH_lsm.json`; `scripts/verify.sh` gates on zero
//! equivalence violations and a compaction count above zero (a run that
//! never compacted measured nothing).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rmdb_difffile::{LsmConfig, LsmStore, ScanStrategy};
use rmdb_storage::FRAME_SIZE;
use std::time::Instant;

/// One workload cell: commit `txns` transactions over `keys` keys with
/// `value_len`-byte values, maintenance interleaved.
#[derive(Clone, Copy)]
struct Cell {
    name: &'static str,
    keys: u64,
    txns: u64,
    value_len: usize,
}

struct CellResult {
    name: &'static str,
    committed_txns: u64,
    user_bytes: u64,
    frames_written: u64,
    journal_frames: u64,
    run_frames: u64,
    flushes: u64,
    compactions: u64,
    write_amplification: f64,
    levels_live: u64,
    l0_runs: usize,
    basic_scans_per_sec: f64,
    optimal_scans_per_sec: f64,
    equivalence_violations: u64,
}

impl CellResult {
    fn json(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"committed_txns\":{},\"user_bytes\":{},\
             \"frames_written\":{},\"journal_frames\":{},\"run_frames\":{},\
             \"flushes\":{},\"compactions\":{},\"write_amplification\":{:.3},\
             \"levels_live\":{},\"l0_runs\":{},\"basic_scans_per_sec\":{:.1},\
             \"optimal_scans_per_sec\":{:.1},\"equivalence_violations\":{}}}",
            self.name,
            self.committed_txns,
            self.user_bytes,
            self.frames_written,
            self.journal_frames,
            self.run_frames,
            self.flushes,
            self.compactions,
            self.write_amplification,
            self.levels_live,
            self.l0_runs,
            self.basic_scans_per_sec,
            self.optimal_scans_per_sec,
            self.equivalence_violations,
        )
    }
}

fn cfg() -> LsmConfig {
    // small levels so the workload exercises several compaction tiers
    LsmConfig {
        journal_frames: 32,
        arena_frames: 512,
        memtable_limit: 32,
        l0_limit: 3,
        level_base_frames: 4,
        fanout: 3,
        max_levels: 4,
        ..LsmConfig::default()
    }
}

/// Timed scan loop under one strategy; returns (scans/sec, results of the
/// last round for equivalence checking).
#[allow(clippy::type_complexity)]
fn scan_round(
    store: &LsmStore,
    ranges: &[(u64, u64)],
    strategy: ScanStrategy,
    rounds: u32,
) -> (f64, Vec<Vec<(u64, Vec<u8>)>>) {
    let t0 = Instant::now();
    let mut last = Vec::new();
    for _ in 0..rounds {
        last = ranges
            .iter()
            .map(|&(lo, hi)| store.range(lo, hi, strategy).expect("range scan"))
            .collect();
    }
    let scans = u64::from(rounds) * ranges.len() as u64;
    (scans as f64 / t0.elapsed().as_secs_f64().max(1e-9), last)
}

fn run_cell(cell: Cell, scan_rounds: u32) -> CellResult {
    let store = LsmStore::new(cfg()).expect("lsm store");
    let mut rng = StdRng::seed_from_u64(0x1985 ^ cell.txns);
    for i in 0..cell.txns {
        let t = store.begin();
        for _ in 0..rng.gen_range(1..4) {
            let key = rng.gen_range(0..cell.keys);
            if rng.gen_bool(0.85) {
                let mut v = vec![0u8; cell.value_len];
                rng.fill(&mut v[..]);
                store.put(t, key, &v).expect("put");
            } else {
                store.delete(t, key).expect("delete");
            }
        }
        store.commit(t).expect("commit");
        if i % 8 == 7 {
            store.maintain().expect("maintain");
        }
    }
    store.flush_now().expect("final flush");
    store.maintain().expect("final maintain");

    let stats = store.stats();
    let frames_written = store.disk_writes();
    let manifest = store.manifest();
    let wa = if stats.user_bytes == 0 {
        0.0
    } else {
        (frames_written * FRAME_SIZE as u64) as f64 / stats.user_bytes as f64
    };

    // narrow, medium, and full ranges
    let ranges = [
        (0, cell.keys / 8),
        (cell.keys / 4, cell.keys / 2),
        (0, cell.keys - 1),
    ];
    let (basic_rate, basic_rows) = scan_round(&store, &ranges, ScanStrategy::Basic, scan_rounds);
    let (optimal_rate, optimal_rows) =
        scan_round(&store, &ranges, ScanStrategy::Optimal, scan_rounds);
    let equivalence_violations = basic_rows
        .iter()
        .zip(&optimal_rows)
        .filter(|(b, o)| b != o)
        .count() as u64;

    CellResult {
        name: cell.name,
        committed_txns: stats.commits,
        user_bytes: stats.user_bytes,
        frames_written,
        journal_frames: stats.journal_frames_written,
        run_frames: stats.run_frames_written,
        flushes: stats.flushes,
        compactions: stats.compactions,
        write_amplification: wa,
        levels_live: manifest.levels_live(),
        l0_runs: manifest.l0.len(),
        basic_scans_per_sec: basic_rate,
        optimal_scans_per_sec: optimal_rate,
        equivalence_violations,
    }
}

fn main() {
    let mut smoke = false;
    let mut json = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--json" => json = true,
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let cells: &[Cell] = if smoke {
        &[Cell {
            name: "smoke",
            keys: 64,
            txns: 400,
            value_len: 24,
        }]
    } else {
        &[
            Cell {
                name: "narrow-hot",
                keys: 64,
                txns: 2_000,
                value_len: 24,
            },
            Cell {
                name: "wide-uniform",
                keys: 512,
                txns: 4_000,
                value_len: 48,
            },
            Cell {
                name: "large-values",
                keys: 128,
                txns: 2_000,
                value_len: 160,
            },
        ]
    };
    let scan_rounds = if smoke { 20 } else { 100 };

    let results: Vec<CellResult> = cells.iter().map(|&c| run_cell(c, scan_rounds)).collect();
    let violations: u64 = results.iter().map(|r| r.equivalence_violations).sum();

    let report = format!(
        "{{\"bench\":\"lsm\",\"smoke\":{smoke},\"frame_size\":{FRAME_SIZE},\
         \"equivalence_violations\":{violations},\"cells\":[{}]}}",
        results
            .iter()
            .map(CellResult::json)
            .collect::<Vec<_>>()
            .join(",")
    );
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/BENCH_lsm.json", &report).expect("write BENCH_lsm.json");

    if json {
        println!("{report}");
    } else {
        for r in &results {
            println!(
                "{:>14}: WA {:.2} ({} frames / {} user bytes), {} flushes, \
                 {} compactions, L0 {} + {} levels, basic {:.0}/s vs optimal {:.0}/s",
                r.name,
                r.write_amplification,
                r.frames_written,
                r.user_bytes,
                r.flushes,
                r.compactions,
                r.l0_runs,
                r.levels_live,
                r.basic_scans_per_sec,
                r.optimal_scans_per_sec,
            );
        }
        println!("wrote results/BENCH_lsm.json");
    }
    if violations > 0 {
        eprintln!("FAIL: {violations} basic/optimal equivalence violations");
        std::process::exit(1);
    }
}
