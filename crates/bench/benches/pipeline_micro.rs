//! Criterion micro-benches for the exec pipeline's hot paths: log append,
//! sharded-pool claim (uncontended and contended), and the group-commit
//! gate. These catch per-PR regressions on the paths every transaction
//! crosses, without running the full scaling sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rmdb_exec::{ExecConfig, ExecDb};
use rmdb_storage::{EvictPolicy, Page, PageId, ShardedPool};
use rmdb_wal::{LogRecord, ParallelLogManager, SelectionPolicy, WalConfig};
use std::hint::black_box;

fn update_record(txn: u64, page: u64) -> LogRecord {
    LogRecord::Update {
        txn,
        page: rmdb_storage::PageId(page),
        prev_lsn: rmdb_storage::Lsn(0),
        new_lsn: rmdb_storage::Lsn(page + 1),
        offset: 0,
        before: vec![0xAA; 64],
        after: vec![0xBB; 64],
    }
}

/// Single-append hot path: one routed fragment through the manager,
/// amortized over a reusable manager per stream count.
fn bench_append_hot_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline/append_one_fragment");
    for streams in [1usize, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(streams), &streams, |b, &n| {
            let mut m = ParallelLogManager::new(n, 1 << 16, SelectionPolicy::Cyclic, 7);
            let rec = update_record(1, 1);
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                black_box(m.append_routed((i % 25) as usize, i % 8, &rec).unwrap())
            })
        });
    }
    group.finish();
}

/// Uncontended pool claim: lock the owning shard, fault the page in,
/// touch it, unpin — the per-read cost every executor pays.
fn bench_pool_claim(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline/pool_claim");
    for shards in [1usize, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(shards), &shards, |b, &n| {
            let pool: ShardedPool = ShardedPool::new(n, 64, EvictPolicy::Lru);
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                let id = PageId(i % 256);
                let mut shard = pool.lock(id);
                if !shard.pool.contains(id) {
                    shard.pool.insert(id, Page::new(id), false).unwrap();
                }
                shard.pool.pin(id);
                let got = shard.pool.get(id).is_some();
                shard.pool.unpin(id);
                black_box(got)
            })
        });
    }
    group.finish();
}

/// Contended pool checkout: 4 threads hammer a shared key range; one
/// iteration is a full round of 256 claims per thread. Shard count is the
/// independent variable — the single-shard cell is the mutex convoy the
/// sharding exists to break up.
fn bench_pool_claim_contended(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline/pool_claim_contended_4x256");
    group.sample_size(10);
    for shards in [1usize, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(shards), &shards, |b, &n| {
            let pool: ShardedPool = ShardedPool::new(n, 64, EvictPolicy::Lru);
            b.iter(|| {
                std::thread::scope(|s| {
                    for t in 0..4u64 {
                        let pool = &pool;
                        s.spawn(move || {
                            for i in 0..256u64 {
                                let id = PageId((t * 977 + i) % 128);
                                let mut shard = pool.lock(id);
                                if !shard.pool.contains(id) {
                                    shard.pool.insert(id, Page::new(id), false).unwrap();
                                }
                                shard.pool.pin(id);
                                black_box(shard.pool.get(id).is_some());
                                shard.pool.unpin(id);
                            }
                        });
                    }
                });
            })
        });
    }
    group.finish();
}

/// The commit gate end to end: one single-page transaction through
/// `run_txn`, including the group-commit daemon's durability ack.
fn bench_commit_gate(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline/commit_gate");
    group.sample_size(10);
    let db = ExecDb::new(ExecConfig {
        wal: WalConfig {
            data_pages: 64,
            pool_frames: 24,
            log_streams: 2,
            log_frames: 1 << 16,
            ..WalConfig::default()
        },
        pool_shards: 4,
        ..ExecConfig::default()
    });
    let mut i = 0u64;
    group.bench_function("run_txn_1_write", |b| {
        b.iter(|| {
            i += 1;
            let page = i % 64;
            db.run_txn(0, |ctx| ctx.write(page, 0, &i.to_le_bytes()))
                .expect("bench txn")
        })
    });
    group.finish();
    db.shutdown().ok();
}

criterion_group!(
    benches,
    bench_append_hot_path,
    bench_pool_claim,
    bench_pool_claim_contended,
    bench_commit_gate
);
criterion_main!(benches);
