//! Microbenchmarks of the parallel-logging layer: fragment routing and
//! append throughput versus stream count and selection policy, commit
//! cost, and crash-recovery time versus log length. These are the
//! ablations behind the design choices DESIGN.md calls out for §3.1.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rmdb_wal::{LogRecord, ParallelLogManager, SelectionPolicy, WalConfig, WalDb};
use std::hint::black_box;

fn update_record(txn: u64, page: u64) -> LogRecord {
    LogRecord::Update {
        txn,
        page: rmdb_storage::PageId(page),
        prev_lsn: rmdb_storage::Lsn(0),
        new_lsn: rmdb_storage::Lsn(page + 1),
        offset: 0,
        before: vec![0xAA; 100],
        after: vec![0xBB; 100],
    }
}

fn bench_append_streams(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal/append_1000_fragments");
    for streams in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(streams), &streams, |b, &n| {
            b.iter(|| {
                let mut m = ParallelLogManager::new(n, 4096, SelectionPolicy::Cyclic, 7);
                for i in 0..1000u64 {
                    m.append_routed((i % 25) as usize, i % 8, &update_record(i % 8, i))
                        .unwrap();
                }
                m.force_all().unwrap();
                black_box(m.pages_written_per_stream())
            })
        });
    }
    group.finish();
}

fn bench_selection_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal/selection_policy");
    for policy in SelectionPolicy::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(policy.label()),
            &policy,
            |b, &p| {
                b.iter(|| {
                    let mut m = ParallelLogManager::new(4, 4096, p, 7);
                    for i in 0..1000u64 {
                        m.append_routed((i % 25) as usize, i % 3, &update_record(i % 3, i))
                            .unwrap();
                    }
                    black_box(m.fragments_per_stream().to_vec())
                })
            },
        );
    }
    group.finish();
}

fn bench_commit(c: &mut Criterion) {
    c.bench_function("wal/commit_txn_10_writes", |b| {
        let mut db = WalDb::new(WalConfig {
            data_pages: 64,
            log_frames: 1 << 16,
            ..WalConfig::default()
        });
        b.iter(|| {
            let t = db.begin();
            for p in 0..10 {
                db.write(t, p, 0, b"benchmark-payload").unwrap();
            }
            db.commit(t).unwrap();
        })
    });
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal/recovery");
    for txns in [10u64, 100, 500] {
        group.bench_with_input(BenchmarkId::from_parameter(txns), &txns, |b, &n| {
            let mut db = WalDb::new(WalConfig {
                data_pages: 256,
                log_frames: 1 << 16,
                ..WalConfig::default()
            });
            for i in 0..n {
                let t = db.begin();
                db.write(t, i % 256, 0, b"recovered-data").unwrap();
                db.commit(t).unwrap();
            }
            let image = db.crash_image();
            b.iter(|| {
                let img = rmdb_wal::CrashImage {
                    data: image.data.snapshot(),
                    logs: image.logs.iter().map(|l| l.snapshot()).collect(),
                };
                black_box(
                    WalDb::recover(img, WalConfig::default())
                        .unwrap()
                        .1
                        .records_scanned,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_append_streams,
    bench_selection_policies,
    bench_commit,
    bench_recovery
);
criterion_main!(benches);
