//! End-to-end simulator benchmarks: wall-clock cost of regenerating the
//! paper's headline configurations (useful for tracking simulator
//! performance regressions; the *simulated* results live in the table
//! binaries).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rmdb_machine::config::{LoggingConfig, MachineConfig, RecoveryOverlay};
use rmdb_machine::Machine;
use std::hint::black_box;

fn bench_bare_configs(c: &mut Criterion) {
    let mut group = c.benchmark_group("machine/bare");
    group.sample_size(10);
    for (name, mut cfg) in MachineConfig::paper_configurations() {
        cfg.num_txns = 12;
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| black_box(Machine::new(cfg.clone()).run().exec_time_per_page_ms))
        });
    }
    group.finish();
}

fn bench_logging_overlay(c: &mut Criterion) {
    let mut group = c.benchmark_group("machine/logging");
    group.sample_size(10);
    for disks in [1usize, 4] {
        let mut cfg = MachineConfig::table3_machine();
        cfg.num_txns = 12;
        cfg.overlay = RecoveryOverlay::Logging(LoggingConfig {
            physical: true,
            log_disks: disks,
            ..LoggingConfig::default()
        });
        group.bench_with_input(BenchmarkId::from_parameter(disks), &cfg, |b, cfg| {
            b.iter(|| black_box(Machine::new(cfg.clone()).run().exec_time_per_page_ms))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bare_configs, bench_logging_overlay);
criterion_main!(benches);
