//! Benchmarks of the relation layer: heap scans vs B+tree lookups, join
//! strategies, and the per-architecture cost of the same relational
//! transaction (the paper's recovery overheads visible at the API level).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rmdb_core::PageStore;
use rmdb_relation::{hash_join, nested_loop_join, BTree, HeapFile};
use rmdb_shadow::{ShadowConfig, ShadowPager};
use rmdb_wal::{WalConfig, WalDb};
use std::hint::black_box;

fn wal(pages: u64) -> WalDb {
    WalDb::new(WalConfig {
        data_pages: pages,
        pool_frames: 64,
        log_frames: 1 << 16,
        ..WalConfig::default()
    })
}

fn bench_point_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("relation/point_lookup_1000_tuples");
    // heap scan
    group.bench_function("heap_scan", |b| {
        let mut db = wal(256);
        let t = db.begin();
        let rel = HeapFile::create(&mut db, t, 0, 64).unwrap();
        for k in 0..1000u64 {
            rel.insert(&mut db, t, k, &[k as u8; 32]).unwrap();
        }
        db.commit(t).unwrap();
        let mut probe = 0u64;
        b.iter(|| {
            probe = (probe + 997) % 1000;
            let t = db.begin();
            let v = rel.get(&mut db, t, probe).unwrap();
            db.abort(t).unwrap();
            black_box(v)
        })
    });
    // B+tree
    group.bench_function("btree", |b| {
        let mut db = wal(512);
        let t = db.begin();
        let tree = BTree::create(&mut db, t, 0, 400).unwrap();
        for k in 0..1000u64 {
            tree.insert(&mut db, t, k, &[k as u8; 32]).unwrap();
        }
        db.commit(t).unwrap();
        let mut probe = 0u64;
        b.iter(|| {
            probe = (probe + 997) % 1000;
            let t = db.begin();
            let v = tree.get(&mut db, t, probe).unwrap();
            db.abort(t).unwrap();
            black_box(v)
        })
    });
    group.finish();
}

fn bench_joins(c: &mut Criterion) {
    let mut group = c.benchmark_group("relation/join_300x300");
    let mut db = wal(256);
    let t = db.begin();
    let left = HeapFile::create(&mut db, t, 0, 32).unwrap();
    let right = HeapFile::create(&mut db, t, 40, 32).unwrap();
    for k in 0..300u64 {
        left.insert(&mut db, t, k, &[1u8; 24]).unwrap();
        right.insert(&mut db, t, k * 2 % 300, &[2u8; 24]).unwrap();
    }
    db.commit(t).unwrap();
    group.bench_function("nested_loop", |b| {
        b.iter(|| {
            let t = db.begin();
            let r = nested_loop_join(&mut db, t, &left, &right).unwrap();
            db.abort(t).unwrap();
            black_box(r.len())
        })
    });
    group.bench_function("hash", |b| {
        b.iter(|| {
            let t = db.begin();
            let r = hash_join(&mut db, t, &left, &right).unwrap();
            db.abort(t).unwrap();
            black_box(r.len())
        })
    });
    group.finish();
}

fn txn_cost<S: PageStore>(store: &mut S) {
    let t = store.begin();
    let rel = HeapFile::open(store, t, 0).unwrap();
    for k in (0..200u64).step_by(10) {
        rel.update(store, t, k, &[9u8; 32]).unwrap();
    }
    store.commit(t).unwrap();
}

fn bench_architectures(c: &mut Criterion) {
    let mut group = c.benchmark_group("relation/txn_20_updates_by_architecture");
    group.bench_with_input(BenchmarkId::from_parameter("wal"), &(), |b, ()| {
        let mut db = wal(256);
        let t = db.begin();
        let rel = HeapFile::create(&mut db, t, 0, 64).unwrap();
        for k in 0..200u64 {
            rel.insert(&mut db, t, k, &[k as u8; 32]).unwrap();
        }
        db.commit(t).unwrap();
        b.iter(|| txn_cost(&mut db))
    });
    group.bench_with_input(BenchmarkId::from_parameter("shadow"), &(), |b, ()| {
        let mut db = ShadowPager::new(ShadowConfig {
            logical_pages: 256,
            data_frames: 1024,
            ..ShadowConfig::default()
        })
        .unwrap();
        let t = db.begin();
        let rel = HeapFile::create(&mut db, t, 0, 64).unwrap();
        for k in 0..200u64 {
            rel.insert(&mut db, t, k, &[k as u8; 32]).unwrap();
        }
        db.commit(t).unwrap();
        b.iter(|| txn_cost(&mut db))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_point_lookup,
    bench_joins,
    bench_architectures
);
criterion_main!(benches);
