//! Microbenchmarks of the shadow architectures: commit cost under
//! clustered vs scrambled allocation, the version-selection read penalty
//! (two physical reads per logical read), and the overwriting stores'
//! commit paths — the §3.2 design-choice ablations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rmdb_shadow::{
    AllocPolicy, NoRedoStore, NoUndoStore, OverwriteConfig, ShadowConfig, ShadowPager,
    VersionConfig, VersionStore,
};
use std::hint::black_box;

fn bench_shadow_commit_alloc(c: &mut Criterion) {
    let mut group = c.benchmark_group("shadow/commit_16_pages");
    for (label, alloc) in [
        ("clustered", AllocPolicy::Clustered),
        ("scrambled", AllocPolicy::Scrambled),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &alloc, |b, &a| {
            let mut pager = ShadowPager::new(ShadowConfig {
                logical_pages: 64,
                data_frames: 2048,
                alloc: a,
                ..ShadowConfig::default()
            })
            .unwrap();
            b.iter(|| {
                let t = pager.begin();
                for p in 0..16 {
                    pager.write(t, p, 0, b"shadow-payload").unwrap();
                }
                pager.commit(t).unwrap();
            })
        });
    }
    group.finish();
}

fn bench_read_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("shadow/read_committed_page");
    // thru page-table: one indirection
    group.bench_function("thru_pagetable", |b| {
        let mut pager = ShadowPager::new(ShadowConfig::default()).unwrap();
        let t = pager.begin();
        pager.write(t, 1, 0, b"data").unwrap();
        pager.commit(t).unwrap();
        b.iter(|| {
            let t = pager.begin();
            let v = pager.read(t, 1, 0, 4).unwrap();
            pager.abort(t).unwrap();
            black_box(v)
        })
    });
    // version selection: both twin blocks fetched + selection
    group.bench_function("version_selection", |b| {
        let mut store = VersionStore::new(VersionConfig::default());
        let t = store.begin();
        store.write(t, 1, 0, b"data").unwrap();
        store.commit(t).unwrap();
        b.iter(|| {
            let t = store.begin();
            let v = store.read(t, 1, 0, 4).unwrap();
            store.abort(t).unwrap();
            black_box(v)
        })
    });
    group.finish();
}

fn bench_overwriting_commit(c: &mut Criterion) {
    let mut group = c.benchmark_group("shadow/overwriting_commit_8_pages");
    group.bench_function("no_undo", |b| {
        let mut s = NoUndoStore::new(OverwriteConfig {
            logical_pages: 64,
            scratch_slots: 32,
        });
        b.iter(|| {
            let t = s.begin();
            for p in 0..8 {
                s.write(t, p, 0, b"overwrite-data").unwrap();
            }
            s.commit(t).unwrap();
        })
    });
    group.bench_function("no_redo", |b| {
        let mut s = NoRedoStore::new(OverwriteConfig {
            logical_pages: 64,
            scratch_slots: 32,
        });
        b.iter(|| {
            let t = s.begin();
            for p in 0..8 {
                s.write(t, p, 0, b"overwrite-data").unwrap();
            }
            s.commit(t).unwrap();
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_shadow_commit_alloc,
    bench_read_paths,
    bench_overwriting_commit
);
criterion_main!(benches);
