//! Microbenchmarks of the differential-file engine: the basic-vs-optimal
//! scan strategies, parallel scans (the machine's query processors), and
//! the merge operation — §3.3's costs in isolation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rmdb_difffile::{DiffConfig, DiffDb, ScanStrategy, Tuple};
use std::hint::black_box;

fn populated(base_tuples: u64, diff_ops: u64) -> DiffDb {
    let base = (0..base_tuples)
        .map(|k| Tuple {
            key: k,
            value: vec![(k % 251) as u8; 64],
        })
        .collect();
    let mut db = DiffDb::with_base(
        DiffConfig {
            base_capacity: 256,
            a_capacity: 128,
            d_capacity: 128,
            commit_frames: 8,
            ..Default::default()
        },
        base,
    )
    .unwrap();
    let t = db.begin();
    for i in 0..diff_ops {
        db.update(t, i * 7 % base_tuples, b"updated").unwrap();
    }
    db.commit(t).unwrap();
    db
}

fn bench_scan_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("difffile/scan");
    for (label, strategy) in [
        ("basic", ScanStrategy::Basic),
        ("optimal", ScanStrategy::Optimal),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &strategy, |b, &s| {
            let mut db = populated(2000, 200);
            b.iter(|| {
                let t = db.begin();
                let r = db.query(t, |tp| tp.key % 97 == 0, s).unwrap();
                db.abort(t).unwrap();
                black_box(r.len())
            })
        });
    }
    group.finish();
}

fn bench_parallel_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("difffile/parallel_scan_workers");
    for workers in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            let mut db = populated(4000, 100);
            b.iter(|| {
                let t = db.begin();
                let r = db
                    .query_parallel(t, |tp| tp.key % 31 == 0, ScanStrategy::Optimal, w)
                    .unwrap();
                db.abort(t).unwrap();
                black_box(r.len())
            })
        });
    }
    group.finish();
}

fn bench_merge(c: &mut Criterion) {
    c.bench_function("difffile/merge_200_ops", |b| {
        b.iter(|| {
            let mut db = populated(1000, 200);
            db.merge().unwrap();
            black_box(db.base_pages())
        })
    });
}

criterion_group!(
    benches,
    bench_scan_strategies,
    bench_parallel_scan,
    bench_merge
);
criterion_main!(benches);
