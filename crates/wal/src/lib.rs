//! Parallel write-ahead logging — the paper's winning recovery architecture,
//! implemented functionally.
//!
//! The architecture (paper §3.1): when a query processor updates a page it
//! creates a *log fragment* and ships it to one of N *log processors*, each
//! owning a log disk. The log processor assembles fragments from many query
//! processors into 4 KB log pages and writes them sequentially to its disk.
//! The back-end controller tracks, per updated page, which log processor
//! holds its fragment, and enforces the write-ahead rule: an updated data
//! page may be written to the data disk only after its fragment is on
//! stable storage. A transaction's fragments are scattered over several
//! logs; recovery works **without merging the distributed logs** (companion
//! paper \[13\]), which this crate re-derives using per-page LSNs.
//!
//! Layout of this crate:
//!
//! * [`record`] — log-record types and their wire encoding;
//! * [`stream`] — one log stream: byte-oriented appends framed into 4 KB
//!   checksummed log pages on a [`rmdb_storage::MemDisk`], with a durable
//!   truncation point;
//! * [`select`] — the four log-processor selection policies studied in
//!   Table 3 (cyclic, random, QP mod N, Txn mod N);
//! * [`manager`] — the bank of N streams plus routing;
//! * [`lock`] — the page-level strict two-phase lock table the paper's
//!   back-end controller scheduler uses;
//! * [`db`] — [`WalDb`], the user-facing engine: begin/read/write/commit/
//!   abort/checkpoint plus crash images;
//! * [`recovery`] — distributed-log analysis, repeat-history redo and
//!   compensated undo.
//!
//! # Example
//!
//! ```
//! use rmdb_wal::{WalConfig, WalDb};
//!
//! let mut db = WalDb::new(WalConfig::default());
//! let t = db.begin();
//! db.write(t, 3, 0, b"hello").unwrap();
//! db.commit(t).unwrap();
//!
//! // crash and recover: the committed write survives
//! let image = db.crash_image();
//! let (mut db2, report) = WalDb::recover(image, WalConfig::default()).unwrap();
//! let t2 = db2.begin();
//! assert_eq!(db2.read(t2, 3, 0, 5).unwrap(), b"hello");
//! assert_eq!(report.redone_updates, 1);
//! ```

pub mod backoff;
pub mod concurrent;
pub mod db;
pub mod lock;
pub mod manager;
pub mod record;
pub mod recovery;
pub mod scheduler;
pub mod select;
pub mod stream;

pub use backoff::Backoff;
pub use concurrent::{RetryStats, SharedWal, TxnCtx};
pub use db::{CrashImage, LogMode, LoggingPolicy, Savepoint, TxnId, WalConfig, WalDb, WalError};
pub use lock::{LockMode, LockTable};
pub use manager::ParallelLogManager;
pub use record::{LogRecord, LogicalOp, DECISION_COST, DECISION_FORCED};
pub use recovery::{recover_observed, RecoveryReport};
pub use scheduler::{Decision, Scheduler, WaitStats};
pub use select::SelectionPolicy;
pub use stream::{IndexedRecord, LogStream, ScanStats};
