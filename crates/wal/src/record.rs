//! Log records and their wire encoding.
//!
//! A record is encoded as a little-endian byte string and appended to a log
//! stream; records may span log-page boundaries (a *physical* log fragment
//! carries two full page images and always spans). The encoding is
//! deliberately simple — a tag byte followed by fixed-width fields and
//! length-prefixed byte strings — and is exercised by a property-based
//! round-trip test.

use bytes::{Buf, BufMut};
use rmdb_storage::{Lsn, Page, PageId, StorageError, PAYLOAD_SIZE};

/// Transaction identifier.
pub type RawTxnId = u64;

/// One logical (command) operation inside a [`LogRecord::Logical`] record.
///
/// Every op names the single page it writes and the globally unique LSN the
/// write produced; single-page ops are what keep command redo idempotent
/// under STEAL — recovery re-executes an op only while `page.lsn < op.lsn`,
/// exactly the rule physical fragments use, so per-page LSN order is the
/// one total order all replay paths agree on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogicalOp {
    /// Store `data` at `offset` (the logical form of a blind write).
    Put {
        /// Written page.
        page: PageId,
        /// Page LSN the write produced.
        lsn: Lsn,
        /// Payload offset of the written bytes.
        offset: u32,
        /// Bytes written.
        data: Vec<u8>,
    },
    /// Add `delta` (wrapping) to the little-endian u64 at `offset`.
    AddU64 {
        /// Written page.
        page: PageId,
        /// Page LSN the write produced.
        lsn: Lsn,
        /// Payload offset of the counter.
        offset: u32,
        /// Wrapping increment.
        delta: u64,
    },
    /// Fill `len` bytes at `offset` with `byte`.
    Fill {
        /// Written page.
        page: PageId,
        /// Page LSN the write produced.
        lsn: Lsn,
        /// Payload offset of the filled range.
        offset: u32,
        /// Length of the filled range.
        len: u32,
        /// Fill byte.
        byte: u8,
    },
}

const OP_PUT: u8 = 1;
const OP_ADD_U64: u8 = 2;
const OP_FILL: u8 = 3;

impl LogicalOp {
    /// The page this op writes.
    pub fn page(&self) -> PageId {
        match *self {
            LogicalOp::Put { page, .. }
            | LogicalOp::AddU64 { page, .. }
            | LogicalOp::Fill { page, .. } => page,
        }
    }

    /// The page LSN this op produced.
    pub fn lsn(&self) -> Lsn {
        match *self {
            LogicalOp::Put { lsn, .. }
            | LogicalOp::AddU64 { lsn, .. }
            | LogicalOp::Fill { lsn, .. } => lsn,
        }
    }

    /// Re-execute the op against `page` (the command-redo path). Does not
    /// stamp the page LSN — the caller owns the `page.lsn < op.lsn` check.
    pub fn apply(&self, page: &mut Page) -> Result<(), StorageError> {
        match self {
            LogicalOp::Put { offset, data, .. } => {
                let off = *offset as usize;
                if off + data.len() > PAYLOAD_SIZE {
                    return Err(StorageError::Protocol("logical op exceeds page payload"));
                }
                page.write_at(off, data);
            }
            LogicalOp::AddU64 { offset, delta, .. } => {
                let off = *offset as usize;
                if off + 8 > PAYLOAD_SIZE {
                    return Err(StorageError::Protocol("logical op exceeds page payload"));
                }
                let mut cur = [0u8; 8];
                cur.copy_from_slice(page.read_at(off, 8));
                let next = u64::from_le_bytes(cur).wrapping_add(*delta);
                page.write_at(off, &next.to_le_bytes());
            }
            LogicalOp::Fill {
                offset, len, byte, ..
            } => {
                let (off, n) = (*offset as usize, *len as usize);
                if off + n > PAYLOAD_SIZE {
                    return Err(StorageError::Protocol("logical op exceeds page payload"));
                }
                page.payload_mut()[off..off + n].fill(*byte);
            }
        }
        Ok(())
    }

    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            LogicalOp::Put {
                page,
                lsn,
                offset,
                data,
            } => {
                out.put_u8(OP_PUT);
                out.put_u64_le(page.0);
                out.put_u64_le(lsn.0);
                out.put_u32_le(*offset);
                out.put_u32_le(data.len() as u32);
                out.put_slice(data);
            }
            LogicalOp::AddU64 {
                page,
                lsn,
                offset,
                delta,
            } => {
                out.put_u8(OP_ADD_U64);
                out.put_u64_le(page.0);
                out.put_u64_le(lsn.0);
                out.put_u32_le(*offset);
                out.put_u64_le(*delta);
            }
            LogicalOp::Fill {
                page,
                lsn,
                offset,
                len,
                byte,
            } => {
                out.put_u8(OP_FILL);
                out.put_u64_le(page.0);
                out.put_u64_le(lsn.0);
                out.put_u32_le(*offset);
                out.put_u32_le(*len);
                out.put_u8(*byte);
            }
        }
    }

    /// Encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        match self {
            LogicalOp::Put { data, .. } => 1 + 8 + 8 + 4 + 4 + data.len(),
            LogicalOp::AddU64 { .. } => 1 + 8 + 8 + 4 + 8,
            LogicalOp::Fill { .. } => 1 + 8 + 8 + 4 + 4 + 1,
        }
    }

    /// Length of the op at the front of `buf`; `None` on a torn prefix.
    fn peek_len(b: &mut &[u8]) -> Option<usize> {
        if b.is_empty() {
            return None;
        }
        let tag = b.get_u8();
        let len = match tag {
            OP_PUT => {
                if b.remaining() < 8 + 8 + 4 + 4 {
                    return None;
                }
                b.advance(8 + 8 + 4);
                let dlen = b.get_u32_le() as usize;
                if b.remaining() < dlen {
                    return None;
                }
                b.advance(dlen);
                1 + 8 + 8 + 4 + 4 + dlen
            }
            OP_ADD_U64 => {
                if b.remaining() < 8 + 8 + 4 + 8 {
                    return None;
                }
                b.advance(8 + 8 + 4 + 8);
                1 + 8 + 8 + 4 + 8
            }
            OP_FILL => {
                if b.remaining() < 8 + 8 + 4 + 4 + 1 {
                    return None;
                }
                b.advance(8 + 8 + 4 + 4 + 1);
                1 + 8 + 8 + 4 + 4 + 1
            }
            _ => return None,
        };
        Some(len)
    }

    fn decode(b: &mut &[u8]) -> Option<LogicalOp> {
        if b.is_empty() {
            return None;
        }
        let tag = b.get_u8();
        let op = match tag {
            OP_PUT => {
                if b.remaining() < 8 + 8 + 4 + 4 {
                    return None;
                }
                let page = PageId(b.get_u64_le());
                let lsn = Lsn(b.get_u64_le());
                let offset = b.get_u32_le();
                let dlen = b.get_u32_le() as usize;
                if b.remaining() < dlen {
                    return None;
                }
                let data = b[..dlen].to_vec();
                b.advance(dlen);
                LogicalOp::Put {
                    page,
                    lsn,
                    offset,
                    data,
                }
            }
            OP_ADD_U64 => {
                if b.remaining() < 8 + 8 + 4 + 8 {
                    return None;
                }
                LogicalOp::AddU64 {
                    page: PageId(b.get_u64_le()),
                    lsn: Lsn(b.get_u64_le()),
                    offset: b.get_u32_le(),
                    delta: b.get_u64_le(),
                }
            }
            OP_FILL => {
                if b.remaining() < 8 + 8 + 4 + 4 + 1 {
                    return None;
                }
                LogicalOp::Fill {
                    page: PageId(b.get_u64_le()),
                    lsn: Lsn(b.get_u64_le()),
                    offset: b.get_u32_le(),
                    len: b.get_u32_le(),
                    byte: b.get_u8(),
                }
            }
            _ => return None,
        };
        Some(op)
    }
}

/// One record in a log stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogRecord {
    /// A log fragment: one page update by one transaction.
    ///
    /// `prev_lsn` is the page's LSN before the update and `new_lsn` the LSN
    /// the update produces; per-page LSNs are what let recovery order a
    /// page's fragments without merging the distributed logs.
    Update {
        /// Updating transaction.
        txn: RawTxnId,
        /// Updated page.
        page: PageId,
        /// Page LSN before this update.
        prev_lsn: Lsn,
        /// Page LSN after this update (globally unique).
        new_lsn: Lsn,
        /// Payload offset of the changed bytes.
        offset: u32,
        /// Byte image before the update (undo).
        before: Vec<u8>,
        /// Byte image after the update (redo).
        after: Vec<u8>,
    },
    /// Redo-only record written while undoing an `Update` (at abort or
    /// during recovery); `undoes` names the `new_lsn` of the compensated
    /// update so recovery never undoes the same fragment twice.
    Compensation {
        /// Aborting transaction.
        txn: RawTxnId,
        /// Updated page.
        page: PageId,
        /// `new_lsn` of the update this compensates.
        undoes: Lsn,
        /// Page LSN after the compensation.
        new_lsn: Lsn,
        /// Payload offset of the restored bytes.
        offset: u32,
        /// Restored (pre-update) image.
        data: Vec<u8>,
    },
    /// Transaction commit. Written to the transaction's home stream only
    /// after every stream holding its fragments has been forced.
    Commit {
        /// Committing transaction.
        txn: RawTxnId,
    },
    /// Transaction abort: all its updates have been compensated.
    Abort {
        /// Aborted transaction.
        txn: RawTxnId,
    },
    /// Start of a fuzzy checkpoint; lists transactions active at the time.
    CheckpointBegin {
        /// Transactions in flight when the checkpoint began.
        active: Vec<RawTxnId>,
    },
    /// End of a fuzzy checkpoint: every page dirty at `CheckpointBegin`
    /// has been written to the data disk.
    CheckpointEnd,
    /// Command-logged transaction: the whole txn in one record, appended at
    /// commit in place of its after-image fragments AND its `Commit` record
    /// (presence implies the txn committed). Deferred-captured transactions
    /// that abort log nothing, so undo never sees a logical loser.
    Logical {
        /// Committing transaction.
        txn: RawTxnId,
        /// Commit LSN — allocated from the same global LSN counter as
        /// fragment LSNs, so it both dedups rerouted duplicates and keys the
        /// txn's position in the replay precedence DAG.
        commit_lsn: Lsn,
        /// Why this txn was command-logged (`DECISION_*`): recovery is
        /// self-describing, no policy config needed to replay.
        decision: u8,
        /// Pages the txn read (for replay-DAG read→write edges).
        reads: Vec<PageId>,
        /// The txn's writes, in execution order.
        ops: Vec<LogicalOp>,
    },
}

/// `decision` value: the policy was [`Command`](crate::LoggingPolicy) — every
/// deferred txn is command-logged regardless of size.
pub const DECISION_FORCED: u8 = 0;
/// `decision` value: adaptive cost comparison picked the logical record
/// because it encoded smaller than the after-image fragments.
pub const DECISION_COST: u8 = 1;

const TAG_UPDATE: u8 = 1;
const TAG_COMPENSATION: u8 = 2;
const TAG_COMMIT: u8 = 3;
const TAG_ABORT: u8 = 4;
const TAG_CKPT_BEGIN: u8 = 5;
const TAG_CKPT_END: u8 = 6;
const TAG_LOGICAL: u8 = 7;

impl LogRecord {
    /// The transaction a record belongs to, if any.
    pub fn txn(&self) -> Option<RawTxnId> {
        match *self {
            LogRecord::Update { txn, .. }
            | LogRecord::Compensation { txn, .. }
            | LogRecord::Commit { txn }
            | LogRecord::Abort { txn }
            | LogRecord::Logical { txn, .. } => Some(txn),
            LogRecord::CheckpointBegin { .. } | LogRecord::CheckpointEnd => None,
        }
    }

    /// Append the wire form of this record to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            LogRecord::Update {
                txn,
                page,
                prev_lsn,
                new_lsn,
                offset,
                before,
                after,
            } => {
                out.put_u8(TAG_UPDATE);
                out.put_u64_le(*txn);
                out.put_u64_le(page.0);
                out.put_u64_le(prev_lsn.0);
                out.put_u64_le(new_lsn.0);
                out.put_u32_le(*offset);
                out.put_u32_le(before.len() as u32);
                out.put_slice(before);
                out.put_u32_le(after.len() as u32);
                out.put_slice(after);
            }
            LogRecord::Compensation {
                txn,
                page,
                undoes,
                new_lsn,
                offset,
                data,
            } => {
                out.put_u8(TAG_COMPENSATION);
                out.put_u64_le(*txn);
                out.put_u64_le(page.0);
                out.put_u64_le(undoes.0);
                out.put_u64_le(new_lsn.0);
                out.put_u32_le(*offset);
                out.put_u32_le(data.len() as u32);
                out.put_slice(data);
            }
            LogRecord::Commit { txn } => {
                out.put_u8(TAG_COMMIT);
                out.put_u64_le(*txn);
            }
            LogRecord::Abort { txn } => {
                out.put_u8(TAG_ABORT);
                out.put_u64_le(*txn);
            }
            LogRecord::CheckpointBegin { active } => {
                out.put_u8(TAG_CKPT_BEGIN);
                out.put_u32_le(active.len() as u32);
                for t in active {
                    out.put_u64_le(*t);
                }
            }
            LogRecord::CheckpointEnd => out.put_u8(TAG_CKPT_END),
            LogRecord::Logical {
                txn,
                commit_lsn,
                decision,
                reads,
                ops,
            } => {
                out.put_u8(TAG_LOGICAL);
                out.put_u64_le(*txn);
                out.put_u64_le(commit_lsn.0);
                out.put_u8(*decision);
                out.put_u32_le(reads.len() as u32);
                for p in reads {
                    out.put_u64_le(p.0);
                }
                out.put_u32_le(ops.len() as u32);
                for op in ops {
                    op.encode(out);
                }
            }
        }
    }

    /// Encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        match self {
            LogRecord::Update { before, after, .. } => {
                1 + 8 * 4 + 4 + 4 + before.len() + 4 + after.len()
            }
            LogRecord::Compensation { data, .. } => 1 + 8 * 4 + 4 + 4 + data.len(),
            LogRecord::Commit { .. } | LogRecord::Abort { .. } => 9,
            LogRecord::CheckpointBegin { active } => 5 + 8 * active.len(),
            LogRecord::CheckpointEnd => 1,
            LogRecord::Logical { reads, ops, .. } => {
                1 + 8
                    + 8
                    + 1
                    + 4
                    + 8 * reads.len()
                    + 4
                    + ops.iter().map(LogicalOp::encoded_len).sum::<usize>()
            }
        }
    }

    /// Length of the complete encoded record at the front of `buf`,
    /// without materialising it (no payload allocation). `None` exactly
    /// when [`LogRecord::decode`] would return `None`.
    ///
    /// This is what lets log truncation walk record boundaries over
    /// megabytes of log without paying decode's per-record allocations.
    pub fn peek_len(buf: &[u8]) -> Option<usize> {
        let mut b = buf;
        if b.is_empty() {
            return None;
        }
        let tag = b.get_u8();
        let len = match tag {
            TAG_UPDATE => {
                if b.remaining() < 8 * 4 + 4 + 4 {
                    return None;
                }
                b.advance(8 * 4 + 4);
                let blen = b.get_u32_le() as usize;
                if b.remaining() < blen + 4 {
                    return None;
                }
                b.advance(blen);
                let alen = b.get_u32_le() as usize;
                if b.remaining() < alen {
                    return None;
                }
                1 + 8 * 4 + 4 + 4 + blen + 4 + alen
            }
            TAG_COMPENSATION => {
                if b.remaining() < 8 * 4 + 4 + 4 {
                    return None;
                }
                b.advance(8 * 4 + 4);
                let dlen = b.get_u32_le() as usize;
                if b.remaining() < dlen {
                    return None;
                }
                1 + 8 * 4 + 4 + 4 + dlen
            }
            TAG_COMMIT | TAG_ABORT => {
                if b.remaining() < 8 {
                    return None;
                }
                9
            }
            TAG_CKPT_BEGIN => {
                if b.remaining() < 4 {
                    return None;
                }
                let n = b.get_u32_le() as usize;
                if b.remaining() < 8 * n {
                    return None;
                }
                5 + 8 * n
            }
            TAG_CKPT_END => 1,
            TAG_LOGICAL => {
                if b.remaining() < 8 + 8 + 1 + 4 {
                    return None;
                }
                b.advance(8 + 8 + 1);
                let nreads = b.get_u32_le() as usize;
                if b.remaining() < 8 * nreads + 4 {
                    return None;
                }
                b.advance(8 * nreads);
                let nops = b.get_u32_le() as usize;
                let mut ops_len = 0usize;
                for _ in 0..nops {
                    ops_len += LogicalOp::peek_len(&mut b)?;
                }
                1 + 8 + 8 + 1 + 4 + 8 * nreads + 4 + ops_len
            }
            _ => return None,
        };
        Some(len)
    }

    /// Decode one record from the front of `buf`, consuming its bytes.
    ///
    /// Returns `None` if `buf` holds a prefix of a record (the stream was
    /// cut by a crash) — the caller treats the tail as unwritten. Corrupt
    /// tags also yield `None`; log-page checksums make genuine corruption
    /// inside a durable page impossible, so a bad tag means a torn tail.
    pub fn decode(buf: &mut &[u8]) -> Option<LogRecord> {
        if buf.is_empty() {
            return None;
        }
        let mut b = *buf;
        let tag = b.get_u8();
        let rec = match tag {
            TAG_UPDATE => {
                if b.remaining() < 8 * 4 + 4 + 4 {
                    return None;
                }
                let txn = b.get_u64_le();
                let page = PageId(b.get_u64_le());
                let prev_lsn = Lsn(b.get_u64_le());
                let new_lsn = Lsn(b.get_u64_le());
                let offset = b.get_u32_le();
                let blen = b.get_u32_le() as usize;
                if b.remaining() < blen + 4 {
                    return None;
                }
                let before = b[..blen].to_vec();
                b.advance(blen);
                let alen = b.get_u32_le() as usize;
                if b.remaining() < alen {
                    return None;
                }
                let after = b[..alen].to_vec();
                b.advance(alen);
                LogRecord::Update {
                    txn,
                    page,
                    prev_lsn,
                    new_lsn,
                    offset,
                    before,
                    after,
                }
            }
            TAG_COMPENSATION => {
                if b.remaining() < 8 * 4 + 4 + 4 {
                    return None;
                }
                let txn = b.get_u64_le();
                let page = PageId(b.get_u64_le());
                let undoes = Lsn(b.get_u64_le());
                let new_lsn = Lsn(b.get_u64_le());
                let offset = b.get_u32_le();
                let dlen = b.get_u32_le() as usize;
                if b.remaining() < dlen {
                    return None;
                }
                let data = b[..dlen].to_vec();
                b.advance(dlen);
                LogRecord::Compensation {
                    txn,
                    page,
                    undoes,
                    new_lsn,
                    offset,
                    data,
                }
            }
            TAG_COMMIT => {
                if b.remaining() < 8 {
                    return None;
                }
                LogRecord::Commit {
                    txn: b.get_u64_le(),
                }
            }
            TAG_ABORT => {
                if b.remaining() < 8 {
                    return None;
                }
                LogRecord::Abort {
                    txn: b.get_u64_le(),
                }
            }
            TAG_CKPT_BEGIN => {
                if b.remaining() < 4 {
                    return None;
                }
                let n = b.get_u32_le() as usize;
                if b.remaining() < 8 * n {
                    return None;
                }
                let active = (0..n).map(|_| b.get_u64_le()).collect();
                LogRecord::CheckpointBegin { active }
            }
            TAG_CKPT_END => LogRecord::CheckpointEnd,
            TAG_LOGICAL => {
                if b.remaining() < 8 + 8 + 1 + 4 {
                    return None;
                }
                let txn = b.get_u64_le();
                let commit_lsn = Lsn(b.get_u64_le());
                let decision = b.get_u8();
                let nreads = b.get_u32_le() as usize;
                if b.remaining() < 8 * nreads + 4 {
                    return None;
                }
                let reads = (0..nreads).map(|_| PageId(b.get_u64_le())).collect();
                let nops = b.get_u32_le() as usize;
                let mut ops = Vec::with_capacity(nops.min(1024));
                for _ in 0..nops {
                    ops.push(LogicalOp::decode(&mut b)?);
                }
                LogRecord::Logical {
                    txn,
                    commit_lsn,
                    decision,
                    reads,
                    ops,
                }
            }
            _ => return None,
        };
        *buf = b;
        Some(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn round_trip(rec: &LogRecord) {
        let mut bytes = Vec::new();
        rec.encode(&mut bytes);
        assert_eq!(bytes.len(), rec.encoded_len());
        assert_eq!(LogRecord::peek_len(&bytes), Some(bytes.len()));
        // peek_len agrees with decode on every strict prefix too
        for cut in 0..bytes.len() {
            assert_eq!(LogRecord::peek_len(&bytes[..cut]), None, "cut at {cut}");
        }
        let mut cursor = bytes.as_slice();
        let decoded = LogRecord::decode(&mut cursor).expect("decodes");
        assert!(cursor.is_empty(), "trailing bytes");
        assert_eq!(&decoded, rec);
    }

    #[test]
    fn round_trip_all_variants() {
        round_trip(&LogRecord::Update {
            txn: 7,
            page: PageId(42),
            prev_lsn: Lsn(1),
            new_lsn: Lsn(2),
            offset: 100,
            before: vec![1, 2, 3],
            after: vec![4, 5, 6, 7],
        });
        round_trip(&LogRecord::Compensation {
            txn: 7,
            page: PageId(42),
            undoes: Lsn(2),
            new_lsn: Lsn(9),
            offset: 100,
            data: vec![1, 2, 3],
        });
        round_trip(&LogRecord::Commit { txn: 3 });
        round_trip(&LogRecord::Abort { txn: 4 });
        round_trip(&LogRecord::CheckpointBegin {
            active: vec![1, 2, 3],
        });
        round_trip(&LogRecord::CheckpointBegin { active: vec![] });
        round_trip(&LogRecord::CheckpointEnd);
        round_trip(&LogRecord::Logical {
            txn: 12,
            commit_lsn: Lsn(99),
            decision: DECISION_COST,
            reads: vec![PageId(3), PageId(9)],
            ops: vec![
                LogicalOp::Put {
                    page: PageId(3),
                    lsn: Lsn(90),
                    offset: 16,
                    data: vec![1, 2, 3, 4],
                },
                LogicalOp::AddU64 {
                    page: PageId(9),
                    lsn: Lsn(91),
                    offset: 0,
                    delta: u64::MAX,
                },
                LogicalOp::Fill {
                    page: PageId(3),
                    lsn: Lsn(92),
                    offset: 64,
                    len: 17,
                    byte: 0xAB,
                },
            ],
        });
        round_trip(&LogRecord::Logical {
            txn: 13,
            commit_lsn: Lsn(100),
            decision: DECISION_FORCED,
            reads: vec![],
            ops: vec![],
        });
    }

    #[test]
    fn logical_ops_apply_and_bound_check() {
        let mut page = Page::new(PageId(1));
        LogicalOp::Put {
            page: PageId(1),
            lsn: Lsn(1),
            offset: 8,
            data: vec![7; 4],
        }
        .apply(&mut page)
        .expect("put applies");
        assert_eq!(page.read_at(8, 4), &[7; 4]);
        LogicalOp::AddU64 {
            page: PageId(1),
            lsn: Lsn(2),
            offset: 0,
            delta: 41,
        }
        .apply(&mut page)
        .expect("add applies");
        LogicalOp::AddU64 {
            page: PageId(1),
            lsn: Lsn(3),
            offset: 0,
            delta: 1,
        }
        .apply(&mut page)
        .expect("add applies");
        let mut cur = [0u8; 8];
        cur.copy_from_slice(page.read_at(0, 8));
        assert_eq!(u64::from_le_bytes(cur), 42);
        LogicalOp::Fill {
            page: PageId(1),
            lsn: Lsn(4),
            offset: 32,
            len: 8,
            byte: 0xCC,
        }
        .apply(&mut page)
        .expect("fill applies");
        assert_eq!(page.read_at(32, 8), &[0xCC; 8]);
        // every op kind rejects out-of-payload ranges instead of panicking
        for op in [
            LogicalOp::Put {
                page: PageId(1),
                lsn: Lsn(5),
                offset: PAYLOAD_SIZE as u32 - 2,
                data: vec![0; 4],
            },
            LogicalOp::AddU64 {
                page: PageId(1),
                lsn: Lsn(6),
                offset: PAYLOAD_SIZE as u32 - 4,
                delta: 1,
            },
            LogicalOp::Fill {
                page: PageId(1),
                lsn: Lsn(7),
                offset: PAYLOAD_SIZE as u32,
                len: 1,
                byte: 0,
            },
        ] {
            assert!(op.apply(&mut page).is_err(), "op {op:?} must bound-check");
        }
    }

    #[test]
    fn truncated_record_returns_none_and_consumes_nothing() {
        let rec = LogRecord::Update {
            txn: 7,
            page: PageId(42),
            prev_lsn: Lsn(1),
            new_lsn: Lsn(2),
            offset: 100,
            before: vec![1; 50],
            after: vec![2; 50],
        };
        let mut bytes = Vec::new();
        rec.encode(&mut bytes);
        for cut in 0..bytes.len() {
            let mut cursor = &bytes[..cut];
            let before_ptr = cursor;
            assert!(LogRecord::decode(&mut cursor).is_none(), "cut at {cut}");
            assert_eq!(cursor.len(), before_ptr.len(), "consumed on failure");
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut cursor: &[u8] = &[0xEE, 0, 0, 0];
        assert!(LogRecord::decode(&mut cursor).is_none());
    }

    #[test]
    fn decode_sequence() {
        let mut bytes = Vec::new();
        LogRecord::Commit { txn: 1 }.encode(&mut bytes);
        LogRecord::Abort { txn: 2 }.encode(&mut bytes);
        LogRecord::CheckpointEnd.encode(&mut bytes);
        let mut cursor = bytes.as_slice();
        assert_eq!(
            LogRecord::decode(&mut cursor),
            Some(LogRecord::Commit { txn: 1 })
        );
        assert_eq!(
            LogRecord::decode(&mut cursor),
            Some(LogRecord::Abort { txn: 2 })
        );
        assert_eq!(
            LogRecord::decode(&mut cursor),
            Some(LogRecord::CheckpointEnd)
        );
        assert_eq!(LogRecord::decode(&mut cursor), None);
    }

    proptest! {
        #[test]
        fn round_trip_arbitrary_update(
            txn in any::<u64>(),
            page in any::<u64>(),
            prev in any::<u64>(),
            new in any::<u64>(),
            offset in any::<u32>(),
            before in proptest::collection::vec(any::<u8>(), 0..200),
            after in proptest::collection::vec(any::<u8>(), 0..200),
        ) {
            round_trip(&LogRecord::Update {
                txn,
                page: PageId(page),
                prev_lsn: Lsn(prev),
                new_lsn: Lsn(new),
                offset,
                before,
                after,
            });
        }

        #[test]
        fn round_trip_arbitrary_ckpt(active in proptest::collection::vec(any::<u64>(), 0..50)) {
            round_trip(&LogRecord::CheckpointBegin { active });
        }

        #[test]
        fn round_trip_arbitrary_logical(
            txn in any::<u64>(),
            commit in any::<u64>(),
            decision in any::<u8>(),
            reads in proptest::collection::vec(any::<u64>(), 0..8),
            ops in proptest::collection::vec(
                prop_oneof![
                    (any::<u64>(), any::<u64>(), any::<u32>(),
                     proptest::collection::vec(any::<u8>(), 0..64))
                        .prop_map(|(p, l, o, d)| LogicalOp::Put {
                            page: PageId(p), lsn: Lsn(l), offset: o, data: d,
                        }),
                    (any::<u64>(), any::<u64>(), any::<u32>(), any::<u64>())
                        .prop_map(|(p, l, o, d)| LogicalOp::AddU64 {
                            page: PageId(p), lsn: Lsn(l), offset: o, delta: d,
                        }),
                    (any::<u64>(), any::<u64>(), any::<u32>(), any::<u32>(), any::<u8>())
                        .prop_map(|(p, l, o, n, b)| LogicalOp::Fill {
                            page: PageId(p), lsn: Lsn(l), offset: o, len: n, byte: b,
                        }),
                ],
                0..12,
            ),
        ) {
            round_trip(&LogRecord::Logical {
                txn,
                commit_lsn: Lsn(commit),
                decision,
                reads: reads.into_iter().map(PageId).collect(),
                ops,
            });
        }
    }
}
