//! Log records and their wire encoding.
//!
//! A record is encoded as a little-endian byte string and appended to a log
//! stream; records may span log-page boundaries (a *physical* log fragment
//! carries two full page images and always spans). The encoding is
//! deliberately simple — a tag byte followed by fixed-width fields and
//! length-prefixed byte strings — and is exercised by a property-based
//! round-trip test.

use bytes::{Buf, BufMut};
use rmdb_storage::{Lsn, PageId};

/// Transaction identifier.
pub type RawTxnId = u64;

/// One record in a log stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogRecord {
    /// A log fragment: one page update by one transaction.
    ///
    /// `prev_lsn` is the page's LSN before the update and `new_lsn` the LSN
    /// the update produces; per-page LSNs are what let recovery order a
    /// page's fragments without merging the distributed logs.
    Update {
        /// Updating transaction.
        txn: RawTxnId,
        /// Updated page.
        page: PageId,
        /// Page LSN before this update.
        prev_lsn: Lsn,
        /// Page LSN after this update (globally unique).
        new_lsn: Lsn,
        /// Payload offset of the changed bytes.
        offset: u32,
        /// Byte image before the update (undo).
        before: Vec<u8>,
        /// Byte image after the update (redo).
        after: Vec<u8>,
    },
    /// Redo-only record written while undoing an `Update` (at abort or
    /// during recovery); `undoes` names the `new_lsn` of the compensated
    /// update so recovery never undoes the same fragment twice.
    Compensation {
        /// Aborting transaction.
        txn: RawTxnId,
        /// Updated page.
        page: PageId,
        /// `new_lsn` of the update this compensates.
        undoes: Lsn,
        /// Page LSN after the compensation.
        new_lsn: Lsn,
        /// Payload offset of the restored bytes.
        offset: u32,
        /// Restored (pre-update) image.
        data: Vec<u8>,
    },
    /// Transaction commit. Written to the transaction's home stream only
    /// after every stream holding its fragments has been forced.
    Commit {
        /// Committing transaction.
        txn: RawTxnId,
    },
    /// Transaction abort: all its updates have been compensated.
    Abort {
        /// Aborted transaction.
        txn: RawTxnId,
    },
    /// Start of a fuzzy checkpoint; lists transactions active at the time.
    CheckpointBegin {
        /// Transactions in flight when the checkpoint began.
        active: Vec<RawTxnId>,
    },
    /// End of a fuzzy checkpoint: every page dirty at `CheckpointBegin`
    /// has been written to the data disk.
    CheckpointEnd,
}

const TAG_UPDATE: u8 = 1;
const TAG_COMPENSATION: u8 = 2;
const TAG_COMMIT: u8 = 3;
const TAG_ABORT: u8 = 4;
const TAG_CKPT_BEGIN: u8 = 5;
const TAG_CKPT_END: u8 = 6;

impl LogRecord {
    /// The transaction a record belongs to, if any.
    pub fn txn(&self) -> Option<RawTxnId> {
        match *self {
            LogRecord::Update { txn, .. }
            | LogRecord::Compensation { txn, .. }
            | LogRecord::Commit { txn }
            | LogRecord::Abort { txn } => Some(txn),
            LogRecord::CheckpointBegin { .. } | LogRecord::CheckpointEnd => None,
        }
    }

    /// Append the wire form of this record to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            LogRecord::Update {
                txn,
                page,
                prev_lsn,
                new_lsn,
                offset,
                before,
                after,
            } => {
                out.put_u8(TAG_UPDATE);
                out.put_u64_le(*txn);
                out.put_u64_le(page.0);
                out.put_u64_le(prev_lsn.0);
                out.put_u64_le(new_lsn.0);
                out.put_u32_le(*offset);
                out.put_u32_le(before.len() as u32);
                out.put_slice(before);
                out.put_u32_le(after.len() as u32);
                out.put_slice(after);
            }
            LogRecord::Compensation {
                txn,
                page,
                undoes,
                new_lsn,
                offset,
                data,
            } => {
                out.put_u8(TAG_COMPENSATION);
                out.put_u64_le(*txn);
                out.put_u64_le(page.0);
                out.put_u64_le(undoes.0);
                out.put_u64_le(new_lsn.0);
                out.put_u32_le(*offset);
                out.put_u32_le(data.len() as u32);
                out.put_slice(data);
            }
            LogRecord::Commit { txn } => {
                out.put_u8(TAG_COMMIT);
                out.put_u64_le(*txn);
            }
            LogRecord::Abort { txn } => {
                out.put_u8(TAG_ABORT);
                out.put_u64_le(*txn);
            }
            LogRecord::CheckpointBegin { active } => {
                out.put_u8(TAG_CKPT_BEGIN);
                out.put_u32_le(active.len() as u32);
                for t in active {
                    out.put_u64_le(*t);
                }
            }
            LogRecord::CheckpointEnd => out.put_u8(TAG_CKPT_END),
        }
    }

    /// Encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        match self {
            LogRecord::Update { before, after, .. } => {
                1 + 8 * 4 + 4 + 4 + before.len() + 4 + after.len()
            }
            LogRecord::Compensation { data, .. } => 1 + 8 * 4 + 4 + 4 + data.len(),
            LogRecord::Commit { .. } | LogRecord::Abort { .. } => 9,
            LogRecord::CheckpointBegin { active } => 5 + 8 * active.len(),
            LogRecord::CheckpointEnd => 1,
        }
    }

    /// Length of the complete encoded record at the front of `buf`,
    /// without materialising it (no payload allocation). `None` exactly
    /// when [`LogRecord::decode`] would return `None`.
    ///
    /// This is what lets log truncation walk record boundaries over
    /// megabytes of log without paying decode's per-record allocations.
    pub fn peek_len(buf: &[u8]) -> Option<usize> {
        let mut b = buf;
        if b.is_empty() {
            return None;
        }
        let tag = b.get_u8();
        let len = match tag {
            TAG_UPDATE => {
                if b.remaining() < 8 * 4 + 4 + 4 {
                    return None;
                }
                b.advance(8 * 4 + 4);
                let blen = b.get_u32_le() as usize;
                if b.remaining() < blen + 4 {
                    return None;
                }
                b.advance(blen);
                let alen = b.get_u32_le() as usize;
                if b.remaining() < alen {
                    return None;
                }
                1 + 8 * 4 + 4 + 4 + blen + 4 + alen
            }
            TAG_COMPENSATION => {
                if b.remaining() < 8 * 4 + 4 + 4 {
                    return None;
                }
                b.advance(8 * 4 + 4);
                let dlen = b.get_u32_le() as usize;
                if b.remaining() < dlen {
                    return None;
                }
                1 + 8 * 4 + 4 + 4 + dlen
            }
            TAG_COMMIT | TAG_ABORT => {
                if b.remaining() < 8 {
                    return None;
                }
                9
            }
            TAG_CKPT_BEGIN => {
                if b.remaining() < 4 {
                    return None;
                }
                let n = b.get_u32_le() as usize;
                if b.remaining() < 8 * n {
                    return None;
                }
                5 + 8 * n
            }
            TAG_CKPT_END => 1,
            _ => return None,
        };
        Some(len)
    }

    /// Decode one record from the front of `buf`, consuming its bytes.
    ///
    /// Returns `None` if `buf` holds a prefix of a record (the stream was
    /// cut by a crash) — the caller treats the tail as unwritten. Corrupt
    /// tags also yield `None`; log-page checksums make genuine corruption
    /// inside a durable page impossible, so a bad tag means a torn tail.
    pub fn decode(buf: &mut &[u8]) -> Option<LogRecord> {
        if buf.is_empty() {
            return None;
        }
        let mut b = *buf;
        let tag = b.get_u8();
        let rec = match tag {
            TAG_UPDATE => {
                if b.remaining() < 8 * 4 + 4 + 4 {
                    return None;
                }
                let txn = b.get_u64_le();
                let page = PageId(b.get_u64_le());
                let prev_lsn = Lsn(b.get_u64_le());
                let new_lsn = Lsn(b.get_u64_le());
                let offset = b.get_u32_le();
                let blen = b.get_u32_le() as usize;
                if b.remaining() < blen + 4 {
                    return None;
                }
                let before = b[..blen].to_vec();
                b.advance(blen);
                let alen = b.get_u32_le() as usize;
                if b.remaining() < alen {
                    return None;
                }
                let after = b[..alen].to_vec();
                b.advance(alen);
                LogRecord::Update {
                    txn,
                    page,
                    prev_lsn,
                    new_lsn,
                    offset,
                    before,
                    after,
                }
            }
            TAG_COMPENSATION => {
                if b.remaining() < 8 * 4 + 4 + 4 {
                    return None;
                }
                let txn = b.get_u64_le();
                let page = PageId(b.get_u64_le());
                let undoes = Lsn(b.get_u64_le());
                let new_lsn = Lsn(b.get_u64_le());
                let offset = b.get_u32_le();
                let dlen = b.get_u32_le() as usize;
                if b.remaining() < dlen {
                    return None;
                }
                let data = b[..dlen].to_vec();
                b.advance(dlen);
                LogRecord::Compensation {
                    txn,
                    page,
                    undoes,
                    new_lsn,
                    offset,
                    data,
                }
            }
            TAG_COMMIT => {
                if b.remaining() < 8 {
                    return None;
                }
                LogRecord::Commit {
                    txn: b.get_u64_le(),
                }
            }
            TAG_ABORT => {
                if b.remaining() < 8 {
                    return None;
                }
                LogRecord::Abort {
                    txn: b.get_u64_le(),
                }
            }
            TAG_CKPT_BEGIN => {
                if b.remaining() < 4 {
                    return None;
                }
                let n = b.get_u32_le() as usize;
                if b.remaining() < 8 * n {
                    return None;
                }
                let active = (0..n).map(|_| b.get_u64_le()).collect();
                LogRecord::CheckpointBegin { active }
            }
            TAG_CKPT_END => LogRecord::CheckpointEnd,
            _ => return None,
        };
        *buf = b;
        Some(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn round_trip(rec: &LogRecord) {
        let mut bytes = Vec::new();
        rec.encode(&mut bytes);
        assert_eq!(bytes.len(), rec.encoded_len());
        assert_eq!(LogRecord::peek_len(&bytes), Some(bytes.len()));
        // peek_len agrees with decode on every strict prefix too
        for cut in 0..bytes.len() {
            assert_eq!(LogRecord::peek_len(&bytes[..cut]), None, "cut at {cut}");
        }
        let mut cursor = bytes.as_slice();
        let decoded = LogRecord::decode(&mut cursor).expect("decodes");
        assert!(cursor.is_empty(), "trailing bytes");
        assert_eq!(&decoded, rec);
    }

    #[test]
    fn round_trip_all_variants() {
        round_trip(&LogRecord::Update {
            txn: 7,
            page: PageId(42),
            prev_lsn: Lsn(1),
            new_lsn: Lsn(2),
            offset: 100,
            before: vec![1, 2, 3],
            after: vec![4, 5, 6, 7],
        });
        round_trip(&LogRecord::Compensation {
            txn: 7,
            page: PageId(42),
            undoes: Lsn(2),
            new_lsn: Lsn(9),
            offset: 100,
            data: vec![1, 2, 3],
        });
        round_trip(&LogRecord::Commit { txn: 3 });
        round_trip(&LogRecord::Abort { txn: 4 });
        round_trip(&LogRecord::CheckpointBegin {
            active: vec![1, 2, 3],
        });
        round_trip(&LogRecord::CheckpointBegin { active: vec![] });
        round_trip(&LogRecord::CheckpointEnd);
    }

    #[test]
    fn truncated_record_returns_none_and_consumes_nothing() {
        let rec = LogRecord::Update {
            txn: 7,
            page: PageId(42),
            prev_lsn: Lsn(1),
            new_lsn: Lsn(2),
            offset: 100,
            before: vec![1; 50],
            after: vec![2; 50],
        };
        let mut bytes = Vec::new();
        rec.encode(&mut bytes);
        for cut in 0..bytes.len() {
            let mut cursor = &bytes[..cut];
            let before_ptr = cursor;
            assert!(LogRecord::decode(&mut cursor).is_none(), "cut at {cut}");
            assert_eq!(cursor.len(), before_ptr.len(), "consumed on failure");
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut cursor: &[u8] = &[0xEE, 0, 0, 0];
        assert!(LogRecord::decode(&mut cursor).is_none());
    }

    #[test]
    fn decode_sequence() {
        let mut bytes = Vec::new();
        LogRecord::Commit { txn: 1 }.encode(&mut bytes);
        LogRecord::Abort { txn: 2 }.encode(&mut bytes);
        LogRecord::CheckpointEnd.encode(&mut bytes);
        let mut cursor = bytes.as_slice();
        assert_eq!(
            LogRecord::decode(&mut cursor),
            Some(LogRecord::Commit { txn: 1 })
        );
        assert_eq!(
            LogRecord::decode(&mut cursor),
            Some(LogRecord::Abort { txn: 2 })
        );
        assert_eq!(
            LogRecord::decode(&mut cursor),
            Some(LogRecord::CheckpointEnd)
        );
        assert_eq!(LogRecord::decode(&mut cursor), None);
    }

    proptest! {
        #[test]
        fn round_trip_arbitrary_update(
            txn in any::<u64>(),
            page in any::<u64>(),
            prev in any::<u64>(),
            new in any::<u64>(),
            offset in any::<u32>(),
            before in proptest::collection::vec(any::<u8>(), 0..200),
            after in proptest::collection::vec(any::<u8>(), 0..200),
        ) {
            round_trip(&LogRecord::Update {
                txn,
                page: PageId(page),
                prev_lsn: Lsn(prev),
                new_lsn: Lsn(new),
                offset,
                before,
                after,
            });
        }

        #[test]
        fn round_trip_arbitrary_ckpt(active in proptest::collection::vec(any::<u64>(), 0..50)) {
            round_trip(&LogRecord::CheckpointBegin { active });
        }
    }
}
