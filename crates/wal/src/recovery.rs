//! Crash recovery over the distributed logs — without merging them.
//!
//! The paper's companion work (\[13\]) shows transaction and system failures
//! can be recovered without merging the per-log-processor logs into one
//! physical log. The key idea reconstructed here: updates to a single page
//! are totally ordered by the page-level locking scheduler, and every
//! fragment carries the page LSN it produces, so redo can process each
//! page's fragments in LSN order no matter which stream they came from —
//! there is never a need for a global inter-stream order.
//!
//! The algorithm is undo/redo ("repeat history"):
//!
//! 1. **Analysis** — scan every stream independently; a transaction is a
//!    *winner* iff a commit record for it is durable on any stream (the
//!    commit protocol forced all its fragment streams first, so a durable
//!    commit implies durable fragments).
//! 2. **Redo** — apply every durable `Update` and `Compensation` fragment,
//!    per page in `new_lsn` order, skipping fragments already reflected
//!    (`page.lsn >= new_lsn`).
//! 3. **Undo** — for each loser, apply before-images of its
//!    not-yet-compensated updates in reverse LSN order, appending new
//!    compensation records (so recovery itself is crash-safe and
//!    idempotent), then an abort record.

use crate::db::{CrashImage, TxnId, WalConfig, WalDb, WalError};
use crate::manager::ParallelLogManager;
use crate::record::{LogRecord, LogicalOp};
use rmdb_obs::{EventKind, Registry};
use rmdb_storage::{write_page_verified, Disk, Lsn, Page, PageId, StorageError};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// What recovery did, for observability and tests.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Streams scanned.
    pub streams_scanned: usize,
    /// Total durable records seen.
    pub records_scanned: usize,
    /// Transactions whose commit record was found.
    pub committed_txns: Vec<TxnId>,
    /// Transactions rolled back by recovery.
    pub loser_txns: Vec<TxnId>,
    /// Update/compensation fragments replayed (page image was stale).
    pub redone_updates: u64,
    /// Loser fragments undone.
    pub undone_updates: u64,
    /// Distinct pages recovery wrote back to the data disk.
    pub pages_written: u64,
    /// Torn data pages reconstructed from the doublewrite buffer or from
    /// full-page (physical) log images.
    pub torn_pages_repaired: u64,
    /// Records salvaged from streams whose scan was cut short by a
    /// corrupt log page (zero when every stream scanned clean).
    pub salvaged_records: u64,
    /// Corrupt (torn) log pages quarantined during the scans.
    pub quarantined_log_pages: u64,
    /// Data pages that were corrupt and could not be rebuilt; the frame is
    /// left in place, so reading the page yields a typed error rather than
    /// silently invented contents.
    pub quarantined_data_pages: u64,
    /// Transient I/O faults ridden through by bounded retry.
    pub retried_ios: u64,
    /// Duplicate update/compensation fragments skipped during analysis.
    /// Failover reroutes a dead stream's volatile fragments to a survivor;
    /// if the original turned out to be durable after all, both copies are
    /// in the logs, keyed by the same globally-unique `new_lsn`.
    pub duplicate_fragments: u64,
    /// Command-logged (logical) commit records found during analysis.
    pub logical_commits: u64,
    /// Logical ops re-executed during redo (the command-replay path, as
    /// opposed to fragment installs).
    pub reexecuted_ops: u64,
}

/// Bounded retry for data-disk reads during recovery: transient faults and
/// one-off read bit flips are retried; persistent corruption surfaces as
/// the final typed error for the caller's repair/quarantine logic.
fn read_data_retry(disk: &Disk, addr: u64, retried: &mut u64) -> Result<Page, StorageError> {
    const ATTEMPTS: u32 = 4;
    let mut last = StorageError::Io { addr };
    for attempt in 0..ATTEMPTS {
        match disk.read_page(addr) {
            Err(e @ (StorageError::Io { .. } | StorageError::Corrupt { .. }))
                if attempt + 1 < ATTEMPTS =>
            {
                *retried += 1;
                last = e;
            }
            other => return other,
        }
    }
    Err(last)
}

struct RedoItem {
    new_lsn: Lsn,
    body: RedoBody,
}

enum RedoBody {
    Install { offset: u32, data: Vec<u8> },
    Op(LogicalOp),
}

/// Run crash recovery; returns the reopened engine and a report.
pub fn recover(image: CrashImage, cfg: WalConfig) -> Result<(WalDb, RecoveryReport), WalError> {
    recover_observed(image, cfg, &Registry::new())
}

/// [`recover`], publishing its accounting into `obs` as it goes: the
/// `recovery.*` counters are incremented at the same logical sites as the
/// corresponding [`RecoveryReport`] fields (so the two can be
/// cross-checked), per-phase wall-clock lands in `recovery.*_us`
/// histograms, and each finished phase emits a
/// [`EventKind::RecoveryPhase`] event (stream = phase ordinal,
/// payload = µs).
pub fn recover_observed(
    image: CrashImage,
    cfg: WalConfig,
    obs: &Registry,
) -> Result<(WalDb, RecoveryReport), WalError> {
    let c_scanned = obs.counter("recovery.records_scanned");
    let c_redone = obs.counter("recovery.redone_updates");
    let c_undone = obs.counter("recovery.undone_updates");
    let c_q_log = obs.counter("recovery.quarantined_log_pages");
    let c_q_data = obs.counter("recovery.quarantined_data_pages");
    let c_torn = obs.counter("recovery.torn_pages_repaired");
    let c_salvaged = obs.counter("recovery.salvaged_records");
    let c_written = obs.counter("recovery.pages_written");
    let c_dupes = obs.counter("recovery.duplicate_fragments");
    let c_logical = obs.counter("recovery.logical_commits");
    let c_reexec = obs.counter("recovery.reexecuted_ops");
    let t_start = std::time::Instant::now();

    let CrashImage { data, logs } = image;
    let mut data: Disk = data;
    let mut log = ParallelLogManager::open(logs, cfg.policy, cfg.seed)?;

    let scanned = log.scan_all_with_stats();
    let mut report = RecoveryReport {
        streams_scanned: scanned.len(),
        ..RecoveryReport::default()
    };
    let mut scans: Vec<Vec<LogRecord>> = Vec::with_capacity(scanned.len());
    for (records, stats) in scanned {
        report.quarantined_log_pages += stats.corrupt_pages;
        c_q_log.add(stats.corrupt_pages);
        report.retried_ios += stats.retried_reads;
        if stats.corrupt_pages > 0 {
            // the decodable prefix before the torn page is what survives
            report.salvaged_records += records.len() as u64;
            c_salvaged.add(records.len() as u64);
        }
        scans.push(records);
    }

    // Harvest the doublewrite buffer: the latest valid full image per page,
    // used to rebuild home frames torn by the crash. A corrupt doublewrite
    // slot means the crash hit the doublewrite write itself — the home
    // frame is then still intact, so the slot is simply ignored.
    let mut doublewrite: HashMap<PageId, Page> = HashMap::new();
    for slot in cfg.data_pages..data.capacity() {
        if !data.is_allocated(slot) {
            continue;
        }
        if let Ok(p) = read_data_retry(&data, slot, &mut report.retried_ios) {
            match doublewrite.get(&p.id) {
                Some(have) if have.lsn >= p.lsn => {}
                _ => {
                    doublewrite.insert(p.id, p);
                }
            }
        }
    }

    // ---- Analysis ----
    let mut committed: HashSet<TxnId> = HashSet::new();
    let mut compensated: HashSet<u64> = HashSet::new();
    let mut max_lsn: u64 = 0;
    let mut max_txn: TxnId = 0;
    // Per-page redo items; BTreeMap for deterministic page order.
    let mut redo: BTreeMap<PageId, Vec<RedoItem>> = BTreeMap::new();
    // Per-loser undo candidates.
    struct UndoCand {
        page: PageId,
        new_lsn: Lsn,
        offset: u32,
        before: Vec<u8>,
        stream: usize,
    }
    let mut updates_by_txn: HashMap<TxnId, Vec<UndoCand>> = HashMap::new();
    // `new_lsn`s are globally unique, so a second update/compensation with
    // the same one is a rerouted duplicate of a fragment that was durable
    // on the quarantined stream after all — analyse it exactly once.
    let mut seen_lsns: HashSet<u64> = HashSet::new();

    for (stream_idx, records) in scans.iter().enumerate() {
        for rec in records {
            report.records_scanned += 1;
            c_scanned.inc();
            if let Some(t) = rec.txn() {
                max_txn = max_txn.max(t);
            }
            match rec {
                LogRecord::Update {
                    txn,
                    page,
                    new_lsn,
                    offset,
                    before,
                    after,
                    ..
                } => {
                    max_lsn = max_lsn.max(new_lsn.0);
                    if !seen_lsns.insert(new_lsn.0) {
                        report.duplicate_fragments += 1;
                        c_dupes.inc();
                        continue;
                    }
                    redo.entry(*page).or_default().push(RedoItem {
                        new_lsn: *new_lsn,
                        body: RedoBody::Install {
                            offset: *offset,
                            data: after.clone(),
                        },
                    });
                    updates_by_txn.entry(*txn).or_default().push(UndoCand {
                        page: *page,
                        new_lsn: *new_lsn,
                        offset: *offset,
                        before: before.clone(),
                        stream: stream_idx,
                    });
                }
                LogRecord::Compensation {
                    page,
                    undoes,
                    new_lsn,
                    offset,
                    data,
                    ..
                } => {
                    max_lsn = max_lsn.max(new_lsn.0);
                    compensated.insert(undoes.0);
                    if !seen_lsns.insert(new_lsn.0) {
                        report.duplicate_fragments += 1;
                        c_dupes.inc();
                        continue;
                    }
                    redo.entry(*page).or_default().push(RedoItem {
                        new_lsn: *new_lsn,
                        body: RedoBody::Install {
                            offset: *offset,
                            data: data.clone(),
                        },
                    });
                }
                LogRecord::Commit { txn } => {
                    committed.insert(*txn);
                }
                LogRecord::Logical {
                    txn,
                    commit_lsn,
                    ops,
                    ..
                } => {
                    // The logical record IS the commit record; its ops carry
                    // their own per-write LSNs, so redo orders them exactly
                    // like fragments. commit_lsn comes from the same global
                    // counter, which makes it the dedup key for reroutes.
                    max_lsn = max_lsn.max(commit_lsn.0);
                    for op in ops {
                        max_lsn = max_lsn.max(op.lsn().0);
                    }
                    if !seen_lsns.insert(commit_lsn.0) {
                        report.duplicate_fragments += 1;
                        c_dupes.inc();
                        continue;
                    }
                    committed.insert(*txn);
                    report.logical_commits += 1;
                    c_logical.inc();
                    for op in ops {
                        redo.entry(op.page()).or_default().push(RedoItem {
                            new_lsn: op.lsn(),
                            body: RedoBody::Op(op.clone()),
                        });
                    }
                }
                LogRecord::Abort { .. }
                | LogRecord::CheckpointBegin { .. }
                | LogRecord::CheckpointEnd => {}
            }
        }
    }

    report.committed_txns = committed.iter().copied().collect();
    report.committed_txns.sort_unstable();
    let analysis_us = t_start.elapsed().as_micros() as u64;
    obs.histogram("recovery.analysis_us").record(analysis_us);
    obs.emit(EventKind::RecoveryPhase, 0, 0, 0, analysis_us);

    // ---- Redo (repeat history) ----
    let t_redo = std::time::Instant::now();
    let mut pages: BTreeMap<PageId, Page> = BTreeMap::new();
    let mut quarantined: BTreeSet<PageId> = BTreeSet::new();
    for (page_id, mut items) in redo {
        items.sort_by_key(|i| i.new_lsn);
        let mut page = if data.is_allocated(page_id.0) {
            match read_data_retry(&data, page_id.0, &mut report.retried_ios) {
                Ok(p) => p,
                Err(StorageError::Corrupt { .. }) => {
                    if let Some(copy) = doublewrite.get(&page_id) {
                        // Torn home write: the doublewrite buffer holds a
                        // verified full image written just before it.
                        report.torn_pages_repaired += 1;
                        c_torn.inc();
                        copy.clone()
                    } else if items.first().is_some_and(|i| {
                        matches!(&i.body, RedoBody::Install { offset: 0, data }
                            if data.len() == rmdb_storage::PAYLOAD_SIZE)
                    }) {
                        // Under physical logging the earliest retained
                        // fragment carries a full page image, so the page
                        // can be rebuilt from scratch by replaying.
                        report.torn_pages_repaired += 1;
                        c_torn.inc();
                        Page::new(page_id)
                    } else {
                        // Unrebuildable: quarantine. The torn frame stays
                        // on disk, so reads of this page surface a typed
                        // Corrupt error instead of invented contents.
                        report.quarantined_data_pages += 1;
                        c_q_data.inc();
                        quarantined.insert(page_id);
                        continue;
                    }
                }
                Err(e) => return Err(e.into()),
            }
        } else {
            Page::new(page_id)
        };
        for item in items {
            match &item.body {
                RedoBody::Install { offset, data } => {
                    if *offset as usize + data.len() > rmdb_storage::PAYLOAD_SIZE {
                        // a fragment that was never writable; refuse rather
                        // than panic
                        return Err(WalError::Storage(StorageError::Protocol(
                            "log fragment exceeds page payload",
                        )));
                    }
                    if page.lsn < item.new_lsn {
                        page.write_at(*offset as usize, data);
                        page.lsn = item.new_lsn;
                        report.redone_updates += 1;
                        c_redone.inc();
                    }
                }
                RedoBody::Op(op) => {
                    if page.lsn < item.new_lsn {
                        op.apply(&mut page)?;
                        page.lsn = item.new_lsn;
                        report.redone_updates += 1;
                        c_redone.inc();
                        report.reexecuted_ops += 1;
                        c_reexec.inc();
                    }
                }
            }
        }
        pages.insert(page_id, page);
    }
    let redo_us = t_redo.elapsed().as_micros() as u64;
    obs.histogram("recovery.redo_us").record(redo_us);
    obs.emit(EventKind::RecoveryPhase, 0, 1, 0, redo_us);

    // ---- Undo losers ----
    let t_undo = std::time::Instant::now();
    let mut losers: Vec<TxnId> = updates_by_txn
        .keys()
        .copied()
        .filter(|t| !committed.contains(t))
        .collect();
    losers.sort_unstable();
    report.loser_txns = losers.clone();

    let mut next_lsn = max_lsn + 1;
    for &loser in &losers {
        let mut cands = updates_by_txn.remove(&loser).expect("loser has updates");
        cands.retain(|c| !compensated.contains(&c.new_lsn.0));
        cands.sort_by_key(|c| std::cmp::Reverse(c.new_lsn));
        let mut last_stream = None;
        for cand in &cands {
            if quarantined.contains(&cand.page) {
                // the page is unreadable either way; undoing onto a fresh
                // frame would invent contents for the untouched bytes
                continue;
            }
            if cand.offset as usize + cand.before.len() > rmdb_storage::PAYLOAD_SIZE {
                return Err(WalError::Storage(StorageError::Protocol(
                    "log fragment exceeds page payload",
                )));
            }
            let page = pages
                .entry(cand.page)
                .or_insert_with(|| Page::new(cand.page));
            let new_lsn = Lsn(next_lsn);
            next_lsn += 1;
            page.write_at(cand.offset as usize, &cand.before);
            page.lsn = new_lsn;
            report.undone_updates += 1;
            c_undone.inc();
            log.append_to(
                cand.stream,
                &LogRecord::Compensation {
                    txn: loser,
                    page: cand.page,
                    undoes: cand.new_lsn,
                    new_lsn,
                    offset: cand.offset,
                    data: cand.before.clone(),
                },
            )?;
            last_stream = Some(cand.stream);
        }
        log.append_to(last_stream.unwrap_or(0), &LogRecord::Abort { txn: loser })?;
    }

    let undo_us = t_undo.elapsed().as_micros() as u64;
    obs.histogram("recovery.undo_us").record(undo_us);
    obs.emit(EventKind::RecoveryPhase, 0, 2, 0, undo_us);

    // ---- Make the recovered state durable: log first, then data ----
    let t_flush = std::time::Instant::now();
    log.force_all()?;
    for (id, page) in &pages {
        write_page_verified(&mut data, id.0, page, 4)?;
        report.pages_written += 1;
        c_written.inc();
    }
    let flush_us = t_flush.elapsed().as_micros() as u64;
    obs.histogram("recovery.flush_us").record(flush_us);
    obs.emit(EventKind::RecoveryPhase, 0, 3, 0, flush_us);
    // retried I/Os accumulate through &mut report plumbing in the helpers;
    // mirror the final tally rather than threading a handle through them
    obs.counter("recovery.retried_ios").add(report.retried_ios);

    let db = WalDb::from_parts(cfg, data, log, max_txn + 1, next_lsn);
    Ok((db, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::{LogMode, WalDb};
    use crate::select::SelectionPolicy;

    fn cfg(streams: usize) -> WalConfig {
        WalConfig {
            data_pages: 32,
            pool_frames: 8,
            log_streams: streams,
            ..WalConfig::default()
        }
    }

    fn read_committed(db: &mut WalDb, page: u64, offset: usize, len: usize) -> Vec<u8> {
        let t = db.begin();
        let v = db.read(t, page, offset, len).unwrap();
        db.commit(t).unwrap();
        v
    }

    #[test]
    fn committed_txn_survives_crash() {
        let mut db = WalDb::new(cfg(3));
        let t = db.begin();
        db.write(t, 5, 0, b"durable").unwrap();
        db.commit(t).unwrap();
        let (mut db2, report) = WalDb::recover(db.crash_image(), cfg(3)).unwrap();
        assert_eq!(read_committed(&mut db2, 5, 0, 7), b"durable");
        assert_eq!(report.committed_txns.len(), 1);
        assert!(report.loser_txns.is_empty());
    }

    #[test]
    fn uncommitted_txn_disappears() {
        let mut db = WalDb::new(cfg(2));
        let t0 = db.begin();
        db.write(t0, 1, 0, b"base").unwrap();
        db.commit(t0).unwrap();
        let t = db.begin();
        db.write(t, 1, 0, b"junk").unwrap();
        // force the log so the loser's fragments are durable — recovery
        // must still roll them back
        let _ = t;
        let (mut db2, report) = WalDb::recover(db.crash_image(), cfg(2)).unwrap();
        assert_eq!(read_committed(&mut db2, 1, 0, 4), b"base");
        assert!(report.committed_txns.contains(&t0));
    }

    #[test]
    fn stolen_dirty_page_of_loser_is_undone() {
        // Tiny pool forces the loser's dirty page onto the data disk
        // (STEAL) before the crash; recovery must restore the base value.
        let mut db = WalDb::new(WalConfig {
            data_pages: 32,
            pool_frames: 2,
            log_streams: 2,
            ..WalConfig::default()
        });
        let setup = db.begin();
        db.write(setup, 0, 0, b"base0").unwrap();
        db.commit(setup).unwrap();
        db.checkpoint().unwrap();

        let loser = db.begin();
        db.write(loser, 0, 0, b"evil0").unwrap();
        db.write(loser, 1, 0, b"evil1").unwrap();
        db.write(loser, 2, 0, b"evil2").unwrap(); // evictions happen here
        let image = db.crash_image();
        // prove the steal actually happened: some "evil" page is on disk
        let stolen = (0..3).any(|p| {
            image
                .data
                .read_page(p)
                .map(|pg| pg.read_at(0, 4) == b"evil")
                .unwrap_or(false)
        });
        assert!(stolen, "test setup: a dirty loser page must reach disk");

        let (mut db2, report) = WalDb::recover(image, cfg(2)).unwrap();
        assert_eq!(read_committed(&mut db2, 0, 0, 5), b"base0");
        assert_eq!(read_committed(&mut db2, 1, 0, 5), vec![0u8; 5]);
        assert_eq!(report.loser_txns, vec![loser]);
        assert!(report.undone_updates >= 1);
    }

    #[test]
    fn fragments_scattered_across_streams_recover_without_merging() {
        let mut db = WalDb::new(WalConfig {
            data_pages: 32,
            pool_frames: 16,
            log_streams: 4,
            policy: SelectionPolicy::Cyclic,
            ..WalConfig::default()
        });
        let t = db.begin();
        for page in 0..8 {
            db.write_via(page as usize, t, page, 0, format!("pg{page:02}").as_bytes())
                .unwrap();
        }
        db.commit(t).unwrap();
        let (mut db2, report) = WalDb::recover(db.crash_image(), cfg(4)).unwrap();
        for page in 0..8 {
            assert_eq!(
                read_committed(&mut db2, page, 0, 4),
                format!("pg{page:02}").into_bytes()
            );
        }
        assert_eq!(report.streams_scanned, 4);
        assert_eq!(report.redone_updates, 8);
    }

    #[test]
    fn multiple_updates_same_page_redo_in_lsn_order() {
        let mut db = WalDb::new(cfg(3));
        let t = db.begin();
        db.write(t, 7, 0, b"v1").unwrap();
        db.write(t, 7, 0, b"v2").unwrap();
        db.write(t, 7, 1, b"X").unwrap(); // final: "vX"
        db.commit(t).unwrap();
        let (mut db2, _) = WalDb::recover(db.crash_image(), cfg(3)).unwrap();
        assert_eq!(read_committed(&mut db2, 7, 0, 2), b"vX");
    }

    #[test]
    fn aborted_txn_stays_aborted_after_crash() {
        let mut db = WalDb::new(cfg(2));
        let t0 = db.begin();
        db.write(t0, 3, 0, b"keep").unwrap();
        db.commit(t0).unwrap();
        let t = db.begin();
        db.write(t, 3, 0, b"drop").unwrap();
        db.abort(t).unwrap();
        let (mut db2, _) = WalDb::recover(db.crash_image(), cfg(2)).unwrap();
        assert_eq!(read_committed(&mut db2, 3, 0, 4), b"keep");
    }

    #[test]
    fn winner_and_loser_interleaved_on_different_pages() {
        let mut db = WalDb::new(cfg(3));
        let w = db.begin();
        let l = db.begin();
        db.write(w, 1, 0, b"winner").unwrap();
        db.write(l, 2, 0, b"loser!").unwrap();
        db.write(w, 3, 0, b"also-w").unwrap();
        db.commit(w).unwrap();
        // l never commits
        let (mut db2, report) = WalDb::recover(db.crash_image(), cfg(3)).unwrap();
        assert_eq!(read_committed(&mut db2, 1, 0, 6), b"winner");
        assert_eq!(read_committed(&mut db2, 2, 0, 6), vec![0u8; 6]);
        assert_eq!(read_committed(&mut db2, 3, 0, 6), b"also-w");
        assert_eq!(report.loser_txns, vec![l]);
    }

    #[test]
    fn sequential_winners_on_same_page() {
        let mut db = WalDb::new(cfg(2));
        for i in 0..5u8 {
            let t = db.begin();
            db.write(t, 4, i as usize, &[b'a' + i]).unwrap();
            db.commit(t).unwrap();
        }
        let (mut db2, _) = WalDb::recover(db.crash_image(), cfg(2)).unwrap();
        assert_eq!(read_committed(&mut db2, 4, 0, 5), b"abcde");
    }

    #[test]
    fn recovery_is_idempotent() {
        let mut db = WalDb::new(cfg(2));
        let t0 = db.begin();
        db.write(t0, 1, 0, b"base").unwrap();
        db.commit(t0).unwrap();
        let l = db.begin();
        db.write(l, 1, 0, b"lost").unwrap();
        // crash, recover, crash during/after recovery, recover again
        let (db2, _) = WalDb::recover(db.crash_image(), cfg(2)).unwrap();
        let (mut db3, report) = WalDb::recover(db2.crash_image(), cfg(2)).unwrap();
        assert_eq!(read_committed(&mut db3, 1, 0, 4), b"base");
        // second recovery must not undo again (compensations durable)
        assert_eq!(report.undone_updates, 0, "idempotent undo");
    }

    #[test]
    fn checkpoint_bounds_recovery_work() {
        let mut db = WalDb::new(cfg(2));
        for i in 0..10 {
            let t = db.begin();
            db.write(t, i, 0, b"bulk").unwrap();
            db.commit(t).unwrap();
        }
        db.checkpoint().unwrap();
        let t = db.begin();
        db.write(t, 11, 0, b"tail").unwrap();
        db.commit(t).unwrap();
        let (mut db2, report) = WalDb::recover(db.crash_image(), cfg(2)).unwrap();
        assert!(
            report.records_scanned <= 4,
            "checkpoint must truncate the scan, saw {}",
            report.records_scanned
        );
        assert_eq!(read_committed(&mut db2, 0, 0, 4), b"bulk");
        assert_eq!(read_committed(&mut db2, 11, 0, 4), b"tail");
    }

    #[test]
    fn physical_logging_recovers_identically() {
        let mk = || WalConfig {
            log_mode: LogMode::Physical,
            ..cfg(2)
        };
        let mut db = WalDb::new(mk());
        let t = db.begin();
        db.write(t, 1, 50, b"phys").unwrap();
        db.commit(t).unwrap();
        let l = db.begin();
        db.write(l, 1, 50, b"gone").unwrap();
        let (mut db2, _) = WalDb::recover(db.crash_image(), mk()).unwrap();
        assert_eq!(read_committed(&mut db2, 1, 50, 4), b"phys");
    }

    #[test]
    fn unforced_commit_tail_means_loser() {
        // A transaction whose commit record was appended but the home
        // stream never forced is a loser — verify via a hand-built image.
        let mut db = WalDb::new(cfg(1));
        let t0 = db.begin();
        db.write(t0, 1, 0, b"base").unwrap();
        db.commit(t0).unwrap();
        let t = db.begin();
        db.write(t, 1, 0, b"half").unwrap();
        // Simulate "commit in progress": a checkpoint makes the fragment
        // (and even the dirty page) durable, but no commit record exists
        // ⇒ the crash image has a durable update without a commit.
        db.checkpoint().unwrap();
        let image = db.crash_image();
        assert_eq!(image.data.read_page(1).unwrap().read_at(0, 4), b"half");
        let (mut db2, report) = WalDb::recover(image, cfg(1)).unwrap();
        assert_eq!(read_committed(&mut db2, 1, 0, 4), b"base");
        assert!(report.loser_txns.contains(&t));
    }

    #[test]
    fn torn_data_page_repaired_under_physical_logging() {
        let mk = || WalConfig {
            log_mode: LogMode::Physical,
            log_frames: 1 << 14,
            ..cfg(2)
        };
        let mut db = WalDb::new(mk());
        let t = db.begin();
        db.write(t, 4, 0, b"first").unwrap();
        db.write(t, 4, 100, b"second").unwrap();
        db.commit(t).unwrap();
        // force the page to disk so there is something to tear
        db.flush_all().unwrap();
        let mut image = db.crash_image();
        assert!(image.data.is_allocated(4));
        // tear the data page: half the frame is stale
        let mut fresh = image.data.read_page(4).unwrap();
        fresh.write_at(0, b"newer");
        fresh.write_at(3000, b"tail-change"); // beyond the cut point
        fresh.lsn = rmdb_storage::Lsn(999);
        image
            .data
            .write_partial(4, &fresh.to_frame(), 2000)
            .unwrap();
        assert!(image.data.read_page(4).is_err(), "page must be torn");

        let (mut db2, report) = WalDb::recover(image, mk()).unwrap();
        assert_eq!(report.torn_pages_repaired, 1);
        assert_eq!(read_committed(&mut db2, 4, 0, 5), b"first");
        assert_eq!(read_committed(&mut db2, 4, 100, 6), b"second");
    }

    #[test]
    fn torn_data_page_repaired_from_doublewrite_under_logical_logging() {
        // logical fragments cannot rebuild a page from nothing, but every
        // home write parks a verified image in the doublewrite buffer first
        let mut db = WalDb::new(cfg(2));
        let t = db.begin();
        db.write(t, 4, 0, b"data").unwrap();
        db.commit(t).unwrap();
        db.flush_all().unwrap();
        let mut image = db.crash_image();
        let page = image.data.read_page(4).unwrap();
        // make the frame actually differ across the cut so the checksum fails
        let mut other = page.clone();
        other.write_at(0, b"XXXX");
        other.write_at(3000, b"YYYY");
        image
            .data
            .write_partial(4, &other.to_frame(), 2000)
            .unwrap();
        assert!(image.data.read_page(4).is_err());
        let (mut db2, report) = WalDb::recover(image, cfg(2)).unwrap();
        assert_eq!(report.torn_pages_repaired, 1);
        assert_eq!(report.quarantined_data_pages, 0);
        assert_eq!(read_committed(&mut db2, 4, 0, 4), b"data");
    }

    #[test]
    fn torn_data_page_without_doublewrite_is_quarantined() {
        // with the doublewrite buffer disabled and only logical fragments,
        // a torn page cannot be rebuilt: recovery quarantines it (typed
        // error on read) instead of panicking or inventing contents
        let mk = || WalConfig {
            dw_slots: 0,
            ..cfg(2)
        };
        let mut db = WalDb::new(mk());
        let t = db.begin();
        db.write(t, 4, 0, b"gone").unwrap();
        db.write(t, 5, 0, b"fine").unwrap();
        db.commit(t).unwrap();
        db.flush_all().unwrap();
        let mut image = db.crash_image();
        let page = image.data.read_page(4).unwrap();
        let mut other = page.clone();
        other.write_at(0, b"XXXX");
        other.write_at(3000, b"YYYY");
        image
            .data
            .write_partial(4, &other.to_frame(), 2000)
            .unwrap();
        assert!(image.data.read_page(4).is_err());

        let (mut db2, report) = WalDb::recover(image, mk()).unwrap();
        assert_eq!(report.quarantined_data_pages, 1);
        assert_eq!(report.torn_pages_repaired, 0);
        // the quarantined page reads as a typed storage error, not a panic
        let q = db2.begin();
        assert!(matches!(
            db2.read(q, 4, 0, 4),
            Err(WalError::Storage(
                rmdb_storage::StorageError::Corrupt { .. }
            ))
        ));
        // untouched pages are unaffected
        assert_eq!(db2.read(q, 5, 0, 4).unwrap(), b"fine");
    }

    #[test]
    fn empty_image_recovers_to_empty_db() {
        let db = WalDb::new(cfg(2));
        let (mut db2, report) = WalDb::recover(db.crash_image(), cfg(2)).unwrap();
        assert_eq!(report.records_scanned, 0);
        assert_eq!(read_committed(&mut db2, 0, 0, 4), vec![0u8; 4]);
    }
}
