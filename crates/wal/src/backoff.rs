//! Seeded exponential backoff with jitter for lock-conflict retry loops.
//!
//! A transaction that loses a page-lock race and retries immediately tends
//! to lose the same race again — and when several threads do it at once
//! they convoy behind the lock holder, burning cycles without making
//! progress. [`Backoff`] spaces the retries out exponentially and breaks
//! the symmetry between threads with deterministic, seeded jitter, so a
//! given (seed, attempt) pair always produces the same delay and
//! multi-threaded tests stay replayable in aggregate.

use std::time::Duration;

/// Deterministic exponential backoff with jitter.
///
/// Delay for attempt `k` (0-based) is drawn uniformly from
/// `[base·2ᵏ/2, base·2ᵏ]`, capped at `cap`. Attempt 0 yields the thread
/// instead of sleeping — the first conflict is usually resolved by the
/// time the scheduler runs us again.
///
/// ```
/// use rmdb_wal::backoff::Backoff;
///
/// let mut b = Backoff::new(42);
/// assert_eq!(b.attempts(), 0);
/// let d1 = b.next_delay();
/// let d2 = b.next_delay();
/// assert!(d2 >= d1, "delays grow: {d1:?} then {d2:?}");
/// // same seed, same schedule
/// let mut c = Backoff::new(42);
/// assert_eq!(c.next_delay(), d1);
/// assert_eq!(c.next_delay(), d2);
/// ```
#[derive(Debug, Clone)]
pub struct Backoff {
    attempt: u32,
    base_us: u64,
    cap_us: u64,
    state: u64,
}

/// Default first-retry delay (microseconds).
pub const DEFAULT_BASE_US: u64 = 20;
/// Default delay ceiling (microseconds).
pub const DEFAULT_CAP_US: u64 = 5_000;

/// Map a caller seed to a non-zero xorshift state. The old mapping was
/// `seed | 1`, which aliased every even/odd seed pair `(2k, 2k + 1)` to
/// the same state — two runs seeded differently (e.g. neighbouring query
/// processors) silently shared one jitter schedule, and replaying a run
/// from its recorded seed could pick up the *other* member of the pair's
/// schedule. splitmix64's finalizer is bijective on `u64`, so distinct
/// seeds always yield distinct states; the single seed whose image is 0
/// falls back to a fixed odd constant.
fn scramble_seed(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    if z == 0 {
        0x9E37_79B9_7F4A_7C15
    } else {
        z
    }
}

impl Backoff {
    /// Backoff with the default bounds, seeded for deterministic jitter.
    pub fn new(seed: u64) -> Self {
        Backoff::with_bounds(seed, DEFAULT_BASE_US, DEFAULT_CAP_US)
    }

    /// Backoff sleeping `base_us·2ᵏ` (jittered) up to `cap_us`.
    pub fn with_bounds(seed: u64, base_us: u64, cap_us: u64) -> Self {
        Backoff {
            attempt: 0,
            base_us: base_us.max(1),
            cap_us: cap_us.max(base_us.max(1)),
            state: scramble_seed(seed),
        }
    }

    /// Retries scheduled so far.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Forget the history (a successful attempt resets contention).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }

    /// xorshift64* step — tiny, seeded, and good enough for jitter.
    fn next_rand(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// The delay for the next retry (advances the attempt counter).
    /// Attempt 0 returns a zero duration — callers yield instead.
    pub fn next_delay(&mut self) -> Duration {
        let k = self.attempt;
        self.attempt = self.attempt.saturating_add(1);
        if k == 0 {
            return Duration::ZERO;
        }
        let ceiling = self
            .base_us
            .saturating_mul(1u64 << (k - 1).min(20))
            .min(self.cap_us);
        let floor = (ceiling / 2).max(1);
        let jittered = floor + self.next_rand() % (ceiling - floor + 1);
        Duration::from_micros(jittered)
    }

    /// Sleep (or yield, on the first attempt) for the next delay.
    pub fn wait(&mut self) {
        let d = self.next_delay();
        if d.is_zero() {
            std::thread::yield_now();
        } else {
            std::thread::sleep(d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_attempt_yields_not_sleeps() {
        let mut b = Backoff::new(7);
        assert_eq!(b.next_delay(), Duration::ZERO);
        assert!(b.next_delay() > Duration::ZERO);
    }

    #[test]
    fn delays_are_capped() {
        let mut b = Backoff::with_bounds(9, 10, 500);
        let mut last = Duration::ZERO;
        for _ in 0..40 {
            last = b.next_delay();
            assert!(last <= Duration::from_micros(500));
        }
        assert!(last >= Duration::from_micros(250), "near the cap: {last:?}");
    }

    #[test]
    fn deterministic_per_seed_distinct_across_seeds() {
        let schedule = |seed: u64| -> Vec<Duration> {
            let mut b = Backoff::new(seed);
            (0..8).map(|_| b.next_delay()).collect()
        };
        assert_eq!(schedule(1), schedule(1));
        assert_ne!(schedule(1), schedule(2), "different seeds must diverge");
    }

    #[test]
    fn adjacent_seeds_do_not_alias() {
        // Regression: `seed | 1` collapsed every (2k, 2k+1) pair onto one
        // xorshift state, so runs seeded 2 and 3 replayed each other's
        // jitter. The scrambled mapping must keep them distinct.
        let schedule = |seed: u64| -> Vec<Duration> {
            let mut b = Backoff::new(seed);
            (0..8).map(|_| b.next_delay()).collect()
        };
        for k in [0u64, 1, 2, 10, 42, 992, 1_000_000] {
            assert_ne!(
                schedule(2 * k),
                schedule(2 * k + 1),
                "seeds {} and {} alias",
                2 * k,
                2 * k + 1
            );
        }
        // replayability is unchanged: same seed, same schedule
        assert_eq!(schedule(2), schedule(2));
    }

    #[test]
    fn scrambled_state_is_never_zero() {
        // xorshift's only absorbing state is 0; every seed must avoid it.
        for seed in (0..1_000_000u64).step_by(997) {
            assert_ne!(super::scramble_seed(seed), 0, "seed {seed} maps to 0");
        }
    }

    #[test]
    fn reset_restarts_the_schedule() {
        let mut b = Backoff::new(3);
        for _ in 0..5 {
            b.next_delay();
        }
        b.reset();
        assert_eq!(b.attempts(), 0);
        assert_eq!(b.next_delay(), Duration::ZERO);
    }
}
