//! The bank of N parallel log streams plus fragment routing.
//!
//! This is the log-processor side of the paper's architecture: query
//! processors hand fragments to [`ParallelLogManager::append_routed`],
//! which picks a log processor with the configured [`SelectionPolicy`] and
//! appends the fragment to that stream. Commit/abort records are appended
//! to a chosen *home* stream by the engine (see [`crate::db`]), which also
//! enforces the write-ahead and commit-force protocols using the positions
//! this module reports.

use crate::record::LogRecord;
use crate::select::{SelectionPolicy, Selector};
use crate::stream::{IndexedRecord, LogStream, ScanStats};
use rmdb_storage::fault::FaultHandle;
use rmdb_storage::{BackendKind, Disk, StorageError};

/// A durable location in the distributed log: stream index and byte
/// position within that stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogPos {
    /// Which log processor's stream.
    pub stream: usize,
    /// End position of the record within the stream.
    pub pos: u64,
}

/// N log processors, each with a private log disk.
pub struct ParallelLogManager {
    streams: Vec<LogStream>,
    selector: Selector,
    fragments: Vec<u64>,
}

impl ParallelLogManager {
    /// Create `n` fresh in-memory streams of `frames_per_log` frames each.
    pub fn new(n: usize, frames_per_log: u64, policy: SelectionPolicy, seed: u64) -> Self {
        ParallelLogManager::new_on(n, frames_per_log, policy, seed, &BackendKind::Mem)
            .expect("in-memory log disks always provision")
    }

    /// Create `n` fresh streams, each on its own device provisioned from
    /// `backend` (one log platter per log processor, as in the paper).
    pub fn new_on(
        n: usize,
        frames_per_log: u64,
        policy: SelectionPolicy,
        seed: u64,
        backend: &BackendKind,
    ) -> Result<Self, StorageError> {
        assert!(n > 0, "need at least one log processor");
        let streams = (0..n)
            .map(|_| LogStream::create_on(backend.provision(frames_per_log)?))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ParallelLogManager {
            streams,
            selector: Selector::new(policy, n, seed),
            fragments: vec![0; n],
        })
    }

    /// Re-open from crash-image log disks.
    pub fn open(
        disks: Vec<Disk>,
        policy: SelectionPolicy,
        seed: u64,
    ) -> Result<Self, StorageError> {
        assert!(!disks.is_empty(), "need at least one log disk");
        let n = disks.len();
        let streams = disks
            .into_iter()
            .map(LogStream::open)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ParallelLogManager {
            streams,
            selector: Selector::new(policy, n, seed),
            fragments: vec![0; n],
        })
    }

    /// Number of log processors.
    pub fn n_streams(&self) -> usize {
        self.streams.len()
    }

    /// Route a fragment produced by query processor `qp` for transaction
    /// `txn` to a log processor; returns where it landed.
    pub fn append_routed(
        &mut self,
        qp: usize,
        txn: u64,
        rec: &LogRecord,
    ) -> Result<LogPos, StorageError> {
        let stream = self.selector.pick(qp, txn);
        self.append_to(stream, rec)
    }

    /// Append to a specific stream (home-stream records: commit, abort,
    /// compensation, checkpoint).
    pub fn append_to(&mut self, stream: usize, rec: &LogRecord) -> Result<LogPos, StorageError> {
        let pos = self.streams[stream].append(rec)?;
        self.fragments[stream] += 1;
        Ok(LogPos { stream, pos })
    }

    /// Pick the home stream for a new transaction without appending.
    pub fn pick_home(&mut self, qp: usize, txn: u64) -> usize {
        self.selector.pick(qp, txn)
    }

    /// Force one stream.
    pub fn force(&mut self, stream: usize) -> Result<(), StorageError> {
        self.streams[stream].force()
    }

    /// Force every stream.
    pub fn force_all(&mut self) -> Result<(), StorageError> {
        for s in &mut self.streams {
            s.force()?;
        }
        Ok(())
    }

    /// Whether the record at `pos` is on stable storage.
    pub fn is_durable(&self, pos: LogPos) -> bool {
        self.streams[pos.stream].is_durable(pos.pos)
    }

    /// Scan every stream from its truncation point (recovery input).
    /// Element `i` is stream `i`'s records in append order.
    pub fn scan_all(&self) -> Vec<Vec<LogRecord>> {
        self.streams.iter().map(|s| s.scan()).collect()
    }

    /// [`ParallelLogManager::scan_all`] with per-stream salvage stats.
    pub fn scan_all_with_stats(&self) -> Vec<(Vec<LogRecord>, ScanStats)> {
        self.streams.iter().map(|s| s.scan_with_stats()).collect()
    }

    /// [`ParallelLogManager::scan_all_with_stats`] with each record tagged
    /// by the log-disk frame holding its first byte — the input to
    /// checkpoint-bounded restart analysis.
    pub fn scan_all_indexed(&self) -> Vec<(Vec<IndexedRecord>, ScanStats)> {
        self.streams.iter().map(|s| s.scan_indexed()).collect()
    }

    /// Durably drop one stream's scan prefix before `frame` (the
    /// checkpoint-bound rule). `frame` must begin a record; see
    /// [`LogStream::truncate_to`] for the contract.
    pub fn truncate_stream_to(&mut self, stream: usize, frame: u64) -> Result<(), StorageError> {
        self.streams[stream].truncate_to(frame)
    }

    /// Attach one shared fault injector to every log disk.
    pub fn attach_faults(&mut self, handle: &FaultHandle) {
        for s in &mut self.streams {
            s.attach_faults(handle.clone());
        }
    }

    /// Truncate every stream (checkpoint completed with no live txns).
    pub fn truncate_all(&mut self) -> Result<(), StorageError> {
        for s in &mut self.streams {
            s.truncate()?;
        }
        Ok(())
    }

    /// Crash image of every log disk.
    pub fn disk_snapshots(&self) -> Vec<Disk> {
        self.streams.iter().map(|s| s.disk_snapshot()).collect()
    }

    /// Fragments routed to each stream (load-balance observability).
    pub fn fragments_per_stream(&self) -> &[u64] {
        &self.fragments
    }

    /// Log pages written by each stream.
    pub fn pages_written_per_stream(&self) -> Vec<u64> {
        self.streams.iter().map(|s| s.pages_written()).collect()
    }

    /// Direct access to a stream (tests and benches).
    pub fn stream(&self, i: usize) -> &LogStream {
        &self.streams[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn commit(txn: u64) -> LogRecord {
        LogRecord::Commit { txn }
    }

    #[test]
    fn cyclic_routing_spreads_fragments() {
        let mut m = ParallelLogManager::new(3, 64, SelectionPolicy::Cyclic, 0);
        for i in 0..9 {
            m.append_routed(i, 1, &commit(i as u64)).unwrap();
        }
        assert_eq!(m.fragments_per_stream(), &[3, 3, 3]);
    }

    #[test]
    fn txn_mod_concentrates() {
        let mut m = ParallelLogManager::new(4, 64, SelectionPolicy::TxnMod, 0);
        for qp in 0..12 {
            m.append_routed(qp, 6, &commit(6)).unwrap();
        }
        assert_eq!(m.fragments_per_stream(), &[0, 0, 12, 0]);
    }

    #[test]
    fn scan_all_reflects_forced_state() {
        let mut m = ParallelLogManager::new(2, 64, SelectionPolicy::Cyclic, 0);
        let a = m.append_to(0, &commit(1)).unwrap();
        let b = m.append_to(1, &commit(2)).unwrap();
        m.force(0).unwrap();
        assert!(m.is_durable(a));
        assert!(!m.is_durable(b));
        // recover from snapshots: only stream 0's record survives
        let recovered =
            ParallelLogManager::open(m.disk_snapshots(), SelectionPolicy::Cyclic, 0).unwrap();
        let scans = recovered.scan_all();
        assert_eq!(scans[0], vec![commit(1)]);
        assert!(scans[1].is_empty());
    }

    #[test]
    fn force_all_covers_every_stream() {
        let mut m = ParallelLogManager::new(3, 64, SelectionPolicy::Cyclic, 0);
        let positions: Vec<LogPos> = (0..3)
            .map(|s| m.append_to(s, &commit(s as u64)).unwrap())
            .collect();
        m.force_all().unwrap();
        assert!(positions.iter().all(|&p| m.is_durable(p)));
    }

    #[test]
    fn truncate_all_drops_history() {
        let mut m = ParallelLogManager::new(2, 64, SelectionPolicy::Cyclic, 0);
        m.append_to(0, &commit(1)).unwrap();
        m.append_to(1, &commit(2)).unwrap();
        m.truncate_all().unwrap();
        assert!(m.scan_all().iter().all(|s| s.is_empty()));
    }

    #[test]
    #[should_panic(expected = "at least one log processor")]
    fn zero_streams_rejected() {
        ParallelLogManager::new(0, 64, SelectionPolicy::Cyclic, 0);
    }
}
