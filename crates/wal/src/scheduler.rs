//! The back-end controller's transaction scheduler: blocking page locks
//! with FIFO wait queues and deadlock detection.
//!
//! The paper assumes "a scheduler, located in the back-end controller,
//! which employs page-level locking". [`crate::lock::LockTable`] is the
//! non-blocking core; this module adds what a real scheduler needs on
//! top: conflicting requests **wait** in FIFO order, grants cascade when
//! locks are released, and a waits-for graph catches deadlocks so the
//! controller can pick a victim instead of hanging the machine.

use crate::lock::{LockMode, LockTable};
use rmdb_storage::PageId;
use std::collections::{HashMap, VecDeque};

/// Outcome of a scheduled lock request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decision {
    /// Lock granted; proceed.
    Granted,
    /// Conflict: the transaction is enqueued and must wait for a
    /// [`Scheduler::release_all`] to grant it (reported there).
    Waiting {
        /// Waiting transactions chosen as deadlock victims to keep this
        /// wait acyclic. Their waits are already cancelled; the caller
        /// **must abort them** (releasing their locks) or the system
        /// stalls. Empty in the common, cycle-free case.
        victims: Vec<u64>,
    },
    /// The requester itself is the youngest transaction in a cycle its
    /// wait would close; the request is *not* enqueued and the requester
    /// should abort and retry.
    Deadlock {
        /// Transactions forming the cycle, starting with the requester.
        cycle: Vec<u64>,
        /// Other victims cancelled while resolving earlier cycles of the
        /// same request (rare; the caller must abort these too).
        victims: Vec<u64>,
    },
}

/// Point-in-time wait-queue statistics for observability.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WaitStats {
    /// Transactions currently blocked.
    pub waiting_txns: usize,
    /// Total waits ever enqueued.
    pub waits_enqueued: u64,
    /// Deepest single-page wait queue ever observed.
    pub max_wait_depth: usize,
    /// Deadlock cycles detected.
    pub deadlocks_detected: u64,
    /// Times a *younger* transaction (not the requester) was chosen as
    /// the victim.
    pub victims_chosen: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct WaitEntry {
    txn: u64,
    mode: LockMode,
}

/// Page-level locking scheduler with FIFO waiting and deadlock detection.
///
/// Deadlocks are resolved by aborting the **youngest** transaction in the
/// cycle — transaction ids are handed out monotonically, so the largest id
/// has done the least work and is the cheapest to redo. When the youngest
/// is the requester itself the request is rejected outright
/// ([`Decision::Deadlock`]); otherwise the requester waits and the victim's
/// wait is cancelled for the caller to abort ([`Decision::Waiting`]).
///
/// ```
/// use rmdb_wal::{LockMode, scheduler::{Decision, Scheduler}};
/// use rmdb_storage::PageId;
///
/// let mut s = Scheduler::new();
/// assert_eq!(s.request(1, PageId(7), LockMode::Exclusive), Decision::Granted);
/// assert_eq!(
///     s.request(2, PageId(7), LockMode::Exclusive),
///     Decision::Waiting { victims: vec![] },
/// );
/// // txn 1 finishes: the waiter is granted
/// assert_eq!(s.release_all(1), vec![(2, PageId(7))]);
/// ```
#[derive(Debug, Default)]
pub struct Scheduler {
    locks: LockTable,
    waiting: HashMap<PageId, VecDeque<WaitEntry>>,
    /// txn → page it is waiting on (a transaction waits on one page at a
    /// time: it is single-threaded until granted).
    waits_on: HashMap<u64, PageId>,
    deadlocks_detected: u64,
    waits_enqueued: u64,
    max_wait_depth: usize,
    victims_chosen: u64,
}

impl Scheduler {
    /// An empty scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Direct access to the underlying lock table (read-only queries).
    pub fn locks(&self) -> &LockTable {
        &self.locks
    }

    /// Number of transactions currently waiting.
    pub fn waiting_txns(&self) -> usize {
        self.waits_on.len()
    }

    /// Deadlocks detected so far.
    pub fn deadlocks_detected(&self) -> u64 {
        self.deadlocks_detected
    }

    /// Current depth of the wait queue on `page`.
    pub fn queue_depth(&self, page: PageId) -> usize {
        self.waiting.get(&page).map_or(0, |q| q.len())
    }

    /// Snapshot of the wait-queue counters.
    pub fn wait_stats(&self) -> WaitStats {
        WaitStats {
            waiting_txns: self.waits_on.len(),
            waits_enqueued: self.waits_enqueued,
            max_wait_depth: self.max_wait_depth,
            deadlocks_detected: self.deadlocks_detected,
            victims_chosen: self.victims_chosen,
        }
    }

    /// Who blocks `txn` right now: the holders of the page it waits on
    /// plus any waiter queued ahead of it.
    fn blockers(&self, txn: u64, page: PageId) -> Vec<u64> {
        let mut out = Vec::new();
        // queued-ahead waiters
        if let Some(q) = self.waiting.get(&page) {
            for w in q {
                if w.txn == txn {
                    break;
                }
                out.push(w.txn);
            }
        }
        // current holders (conservatively: anyone holding the page)
        for holder in self.locks.holders(page) {
            if holder != txn && !out.contains(&holder) {
                out.push(holder);
            }
        }
        out
    }

    /// Would `txn` waiting on `page` close a cycle? Returns the cycle if
    /// so (starting at `txn`).
    fn find_cycle(&self, txn: u64, page: PageId) -> Option<Vec<u64>> {
        // DFS over "t waits on page p; p is blocked by holders/earlier
        // waiters; those may in turn wait…"
        let mut stack = vec![(txn, page, vec![txn])];
        let mut visited = std::collections::HashSet::new();
        while let Some((t, p, path)) = stack.pop() {
            for blocker in self.blockers(t, p) {
                if blocker == txn {
                    return Some(path);
                }
                if !visited.insert(blocker) {
                    continue;
                }
                if let Some(&next_page) = self.waits_on.get(&blocker) {
                    let mut next_path = path.clone();
                    next_path.push(blocker);
                    stack.push((blocker, next_page, next_path));
                }
            }
        }
        None
    }

    /// Request `mode` on `page` for `txn`: grant, enqueue, or resolve a
    /// deadlock by victimising the youngest transaction in the cycle.
    ///
    /// # Panics
    /// If `txn` is already waiting on another page (a transaction issues
    /// one request at a time).
    pub fn request(&mut self, txn: u64, page: PageId, mode: LockMode) -> Decision {
        assert!(
            !self.waits_on.contains_key(&txn),
            "txn {txn} already waiting"
        );
        // FIFO fairness: if others already wait on this page, join the
        // queue even when the lock itself would be compatible.
        let queue_empty = self.waiting.get(&page).is_none_or(|q| q.is_empty());
        if queue_empty && self.locks.acquire(txn, page, mode).is_ok() {
            return Decision::Granted;
        }
        self.waits_on.insert(txn, page);
        self.waiting
            .entry(page)
            .or_default()
            .push_back(WaitEntry { txn, mode });
        self.waits_enqueued += 1;
        self.max_wait_depth = self.max_wait_depth.max(self.queue_depth(page));
        // The wait may close cycles; break each by aborting its youngest
        // member (largest id — ids are monotonic, so least work lost).
        let mut victims = Vec::new();
        while let Some(cycle) = self.find_cycle(txn, page) {
            self.deadlocks_detected += 1;
            let youngest = *cycle.iter().max().expect("cycle is non-empty");
            if youngest == txn {
                // the requester is the victim: undo the tentative wait
                self.remove_waiter(txn, page);
                return Decision::Deadlock { cycle, victims };
            }
            // cancel the younger waiter's wait; the caller aborts it
            self.victims_chosen += 1;
            self.cancel_wait(youngest);
            victims.push(youngest);
        }
        Decision::Waiting { victims }
    }

    fn remove_waiter(&mut self, txn: u64, page: PageId) {
        if let Some(q) = self.waiting.get_mut(&page) {
            q.retain(|w| w.txn != txn);
            if q.is_empty() {
                self.waiting.remove(&page);
            }
        }
        self.waits_on.remove(&txn);
    }

    /// A waiting transaction gives up (e.g. it was chosen as a deadlock
    /// victim elsewhere, or timed out).
    pub fn cancel_wait(&mut self, txn: u64) {
        if let Some(page) = self.waits_on.get(&txn).copied() {
            self.remove_waiter(txn, page);
        }
    }

    /// Release all of `txn`'s locks (commit/abort) and grant as many
    /// queued waiters as now fit, in FIFO order per page.
    ///
    /// Returns the `(txn, page)` pairs that were granted — the controller
    /// resumes those transactions.
    pub fn release_all(&mut self, txn: u64) -> Vec<(u64, PageId)> {
        self.cancel_wait(txn);
        let released = self.locks.release_all(txn);
        let mut granted = Vec::new();
        for page in released {
            self.drain_queue(page, &mut granted);
        }
        granted
    }

    /// Grant the longest FIFO-compatible prefix of a page's wait queue.
    fn drain_queue(&mut self, page: PageId, granted: &mut Vec<(u64, PageId)>) {
        loop {
            let Some(q) = self.waiting.get_mut(&page) else {
                return;
            };
            let Some(&head) = q.front() else {
                self.waiting.remove(&page);
                return;
            };
            if self.locks.acquire(head.txn, page, head.mode).is_ok() {
                q.pop_front();
                self.waits_on.remove(&head.txn);
                granted.push((head.txn, page));
            } else {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: PageId = PageId(1);
    const Q: PageId = PageId(2);

    #[test]
    fn grants_when_free() {
        let mut s = Scheduler::new();
        assert_eq!(s.request(1, P, LockMode::Exclusive), Decision::Granted);
        assert_eq!(s.request(2, Q, LockMode::Shared), Decision::Granted);
        assert_eq!(s.waiting_txns(), 0);
    }

    #[test]
    fn conflicting_request_waits_and_is_granted_on_release() {
        let mut s = Scheduler::new();
        assert_eq!(s.request(1, P, LockMode::Exclusive), Decision::Granted);
        assert_eq!(
            s.request(2, P, LockMode::Exclusive),
            Decision::Waiting { victims: vec![] }
        );
        assert_eq!(s.waiting_txns(), 1);
        let granted = s.release_all(1);
        assert_eq!(granted, vec![(2, P)]);
        assert_eq!(s.waiting_txns(), 0);
    }

    #[test]
    fn fifo_order_is_respected() {
        let mut s = Scheduler::new();
        s.request(1, P, LockMode::Exclusive);
        assert_eq!(
            s.request(2, P, LockMode::Exclusive),
            Decision::Waiting { victims: vec![] }
        );
        assert_eq!(
            s.request(3, P, LockMode::Exclusive),
            Decision::Waiting { victims: vec![] }
        );
        assert_eq!(s.release_all(1), vec![(2, P)]);
        assert_eq!(s.release_all(2), vec![(3, P)]);
        assert!(s.release_all(3).is_empty());
    }

    #[test]
    fn shared_waiters_granted_together() {
        let mut s = Scheduler::new();
        s.request(1, P, LockMode::Exclusive);
        assert_eq!(
            s.request(2, P, LockMode::Shared),
            Decision::Waiting { victims: vec![] }
        );
        assert_eq!(
            s.request(3, P, LockMode::Shared),
            Decision::Waiting { victims: vec![] }
        );
        let granted = s.release_all(1);
        assert_eq!(granted, vec![(2, P), (3, P)]);
    }

    #[test]
    fn shared_then_exclusive_waits_behind() {
        let mut s = Scheduler::new();
        s.request(1, P, LockMode::Exclusive);
        s.request(2, P, LockMode::Shared);
        s.request(3, P, LockMode::Exclusive);
        let granted = s.release_all(1);
        // shared head granted; exclusive stays queued behind it
        assert_eq!(granted, vec![(2, P)]);
        assert_eq!(s.waiting_txns(), 1);
        assert_eq!(s.release_all(2), vec![(3, P)]);
    }

    #[test]
    fn queue_jumping_is_prevented() {
        // a compatible request must not overtake earlier waiters
        let mut s = Scheduler::new();
        s.request(1, P, LockMode::Shared);
        s.request(2, P, LockMode::Exclusive); // waits behind the S lock
                                              // txn 3's S-request is compatible with the held S lock, but must
                                              // queue behind txn 2 (no starvation of writers)
        assert_eq!(
            s.request(3, P, LockMode::Shared),
            Decision::Waiting { victims: vec![] }
        );
        let granted = s.release_all(1);
        assert_eq!(granted[0], (2, P), "writer first");
    }

    #[test]
    fn two_txn_deadlock_detected() {
        let mut s = Scheduler::new();
        s.request(1, P, LockMode::Exclusive);
        s.request(2, Q, LockMode::Exclusive);
        assert_eq!(
            s.request(1, Q, LockMode::Exclusive),
            Decision::Waiting { victims: vec![] }
        );
        match s.request(2, P, LockMode::Exclusive) {
            Decision::Deadlock { cycle, victims } => {
                assert!(victims.is_empty());
                assert!(cycle.contains(&2));
                assert_eq!(s.deadlocks_detected(), 1);
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
        // victim aborts; the survivor gets its lock
        let granted = s.release_all(2);
        assert_eq!(granted, vec![(1, Q)]);
    }

    #[test]
    fn three_txn_cycle_detected() {
        let mut s = Scheduler::new();
        let r = PageId(3);
        s.request(1, P, LockMode::Exclusive);
        s.request(2, Q, LockMode::Exclusive);
        s.request(3, r, LockMode::Exclusive);
        assert_eq!(
            s.request(1, Q, LockMode::Exclusive),
            Decision::Waiting { victims: vec![] }
        );
        assert_eq!(
            s.request(2, r, LockMode::Exclusive),
            Decision::Waiting { victims: vec![] }
        );
        assert!(matches!(
            s.request(3, P, LockMode::Exclusive),
            Decision::Deadlock { .. }
        ));
    }

    #[test]
    fn no_false_deadlocks_on_a_chain() {
        let mut s = Scheduler::new();
        s.request(1, P, LockMode::Exclusive);
        assert_eq!(
            s.request(2, P, LockMode::Exclusive),
            Decision::Waiting { victims: vec![] }
        );
        s.request(3, Q, LockMode::Exclusive);
        // 3 waits on P too — a chain, not a cycle
        assert_eq!(
            s.request(1, Q, LockMode::Exclusive),
            Decision::Waiting { victims: vec![] }
        );
        // wait: txn 1 waits on Q held by 3; 3 holds Q and waits on nothing
        assert_eq!(s.waiting_txns(), 2);
    }

    #[test]
    fn older_requester_victimises_youngest() {
        // 1 holds P, 2 holds Q; 2 waits on P. When the OLDER txn 1 then
        // waits on Q (closing the cycle), the younger txn 2 is chosen as
        // the victim and its wait is cancelled — txn 1 keeps waiting.
        let mut s = Scheduler::new();
        s.request(1, P, LockMode::Exclusive);
        s.request(2, Q, LockMode::Exclusive);
        assert_eq!(
            s.request(2, P, LockMode::Exclusive),
            Decision::Waiting { victims: vec![] }
        );
        assert_eq!(
            s.request(1, Q, LockMode::Exclusive),
            Decision::Waiting { victims: vec![2] }
        );
        assert_eq!(s.wait_stats().victims_chosen, 1);
        assert_eq!(s.deadlocks_detected(), 1);
        // only txn 1 is still waiting; the caller now aborts the victim,
        // which hands Q to txn 1
        assert_eq!(s.waiting_txns(), 1);
        assert_eq!(s.release_all(2), vec![(1, Q)]);
        assert_eq!(s.waiting_txns(), 0);
    }

    #[test]
    fn wait_stats_track_depth_and_enqueues() {
        let mut s = Scheduler::new();
        s.request(1, P, LockMode::Exclusive);
        s.request(2, P, LockMode::Exclusive);
        s.request(3, P, LockMode::Exclusive);
        assert_eq!(s.queue_depth(P), 2);
        assert_eq!(s.queue_depth(Q), 0);
        let stats = s.wait_stats();
        assert_eq!(stats.waits_enqueued, 2);
        assert_eq!(stats.max_wait_depth, 2);
        assert_eq!(stats.waiting_txns, 2);
        s.release_all(1);
        s.release_all(2);
        // history survives the queues draining
        assert_eq!(s.wait_stats().max_wait_depth, 2);
        assert_eq!(s.wait_stats().waiting_txns, 0);
    }

    #[test]
    fn cancel_wait_removes_from_queue() {
        let mut s = Scheduler::new();
        s.request(1, P, LockMode::Exclusive);
        s.request(2, P, LockMode::Exclusive);
        s.request(3, P, LockMode::Exclusive);
        s.cancel_wait(2);
        assert_eq!(s.release_all(1), vec![(3, P)]);
    }

    #[test]
    fn deadlock_rejection_leaves_clean_state() {
        let mut s = Scheduler::new();
        s.request(1, P, LockMode::Exclusive);
        s.request(2, Q, LockMode::Exclusive);
        s.request(1, Q, LockMode::Exclusive); // 1 waits
        let _ = s.request(2, P, LockMode::Exclusive); // deadlock, rejected
                                                      // txn 2 is not waiting, so releasing it cascades to txn 1 only
        assert_eq!(s.waiting_txns(), 1);
        let granted = s.release_all(2);
        assert_eq!(granted, vec![(1, Q)]);
        assert_eq!(s.waiting_txns(), 0);
    }

    #[test]
    #[should_panic(expected = "already waiting")]
    fn double_wait_panics() {
        let mut s = Scheduler::new();
        s.request(1, P, LockMode::Exclusive);
        s.request(2, P, LockMode::Exclusive);
        s.request(2, Q, LockMode::Exclusive);
    }
}
