//! Page-level locking, as used by the back-end controller's scheduler.
//!
//! The paper assumes "a scheduler, located in the back-end controller,
//! which employs page-level locking" for concurrency control. This module
//! implements a strict two-phase lock table with shared/exclusive page
//! locks and upgrade. It is non-blocking: a conflicting request returns an
//! error so single-threaded tests (and the simulator) can decide what to do
//! with the blocked transaction; there is no internal wait queue.

use rmdb_storage::PageId;
use std::collections::{HashMap, HashSet};

/// Shared (read) or exclusive (write) page lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Multiple readers.
    Shared,
    /// Single writer.
    Exclusive,
}

/// A conflicting lock request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockConflict {
    /// The contested page.
    pub page: PageId,
    /// A transaction currently holding a conflicting lock.
    pub holder: u64,
}

#[derive(Debug)]
struct Entry {
    mode: LockMode,
    holders: HashSet<u64>,
}

/// A table of page locks held by transactions.
#[derive(Debug, Default)]
pub struct LockTable {
    locks: HashMap<PageId, Entry>,
    by_txn: HashMap<u64, HashSet<PageId>>,
}

impl LockTable {
    /// An empty lock table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Lock mode `txn` holds on `page`, if any.
    pub fn held(&self, txn: u64, page: PageId) -> Option<LockMode> {
        self.locks
            .get(&page)
            .filter(|e| e.holders.contains(&txn))
            .map(|e| e.mode)
    }

    /// Number of pages currently locked (by anyone).
    pub fn locked_pages(&self) -> usize {
        self.locks.len()
    }

    /// The transactions currently holding a lock on `page`, in sorted
    /// order (empty if unlocked).
    pub fn holders(&self, page: PageId) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .locks
            .get(&page)
            .map(|e| e.holders.iter().copied().collect())
            .unwrap_or_default();
        v.sort_unstable();
        v
    }

    /// Acquire (or upgrade to) `mode` on `page` for `txn`.
    ///
    /// Grants are: S alongside other S holders; X when free; S→X upgrade
    /// when `txn` is the sole holder. Re-acquiring an already-held
    /// (equal or stronger) lock is a no-op.
    pub fn acquire(&mut self, txn: u64, page: PageId, mode: LockMode) -> Result<(), LockConflict> {
        match self.locks.get_mut(&page) {
            None => {
                self.locks.insert(
                    page,
                    Entry {
                        mode,
                        holders: HashSet::from([txn]),
                    },
                );
                self.by_txn.entry(txn).or_default().insert(page);
                Ok(())
            }
            Some(entry) => {
                let held = entry.holders.contains(&txn);
                match (entry.mode, mode, held) {
                    // Already strong enough.
                    (LockMode::Exclusive, _, true) | (LockMode::Shared, LockMode::Shared, true) => {
                        Ok(())
                    }
                    // Upgrade when sole holder.
                    (LockMode::Shared, LockMode::Exclusive, true) => {
                        if entry.holders.len() == 1 {
                            entry.mode = LockMode::Exclusive;
                            Ok(())
                        } else {
                            let holder = *entry
                                .holders
                                .iter()
                                .find(|&&h| h != txn)
                                .expect("another holder exists");
                            Err(LockConflict { page, holder })
                        }
                    }
                    // New shared holder joins shared lock.
                    (LockMode::Shared, LockMode::Shared, false) => {
                        entry.holders.insert(txn);
                        self.by_txn.entry(txn).or_default().insert(page);
                        Ok(())
                    }
                    // Everything else conflicts.
                    (LockMode::Shared, LockMode::Exclusive, false)
                    | (LockMode::Exclusive, _, false) => {
                        let holder = *entry.holders.iter().next().expect("entry has a holder");
                        Err(LockConflict { page, holder })
                    }
                }
            }
        }
    }

    /// Release every lock `txn` holds (strict 2PL: called at commit/abort).
    /// Returns the pages released.
    pub fn release_all(&mut self, txn: u64) -> Vec<PageId> {
        let pages = self.by_txn.remove(&txn).unwrap_or_default();
        let mut released: Vec<PageId> = pages.into_iter().collect();
        released.sort_unstable();
        for &page in &released {
            if let Some(entry) = self.locks.get_mut(&page) {
                entry.holders.remove(&txn);
                if entry.holders.is_empty() {
                    self.locks.remove(&page);
                }
            }
        }
        released
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: PageId = PageId(1);
    const Q: PageId = PageId(2);

    #[test]
    fn shared_locks_coexist() {
        let mut lt = LockTable::new();
        lt.acquire(1, P, LockMode::Shared).unwrap();
        lt.acquire(2, P, LockMode::Shared).unwrap();
        assert_eq!(lt.held(1, P), Some(LockMode::Shared));
        assert_eq!(lt.held(2, P), Some(LockMode::Shared));
    }

    #[test]
    fn exclusive_excludes() {
        let mut lt = LockTable::new();
        lt.acquire(1, P, LockMode::Exclusive).unwrap();
        assert_eq!(
            lt.acquire(2, P, LockMode::Shared),
            Err(LockConflict { page: P, holder: 1 })
        );
        assert_eq!(
            lt.acquire(2, P, LockMode::Exclusive),
            Err(LockConflict { page: P, holder: 1 })
        );
    }

    #[test]
    fn shared_blocks_exclusive_from_other() {
        let mut lt = LockTable::new();
        lt.acquire(1, P, LockMode::Shared).unwrap();
        assert!(lt.acquire(2, P, LockMode::Exclusive).is_err());
    }

    #[test]
    fn sole_holder_upgrades() {
        let mut lt = LockTable::new();
        lt.acquire(1, P, LockMode::Shared).unwrap();
        lt.acquire(1, P, LockMode::Exclusive).unwrap();
        assert_eq!(lt.held(1, P), Some(LockMode::Exclusive));
    }

    #[test]
    fn upgrade_blocked_by_other_reader() {
        let mut lt = LockTable::new();
        lt.acquire(1, P, LockMode::Shared).unwrap();
        lt.acquire(2, P, LockMode::Shared).unwrap();
        assert_eq!(
            lt.acquire(1, P, LockMode::Exclusive),
            Err(LockConflict { page: P, holder: 2 })
        );
        // still holds its shared lock
        assert_eq!(lt.held(1, P), Some(LockMode::Shared));
    }

    #[test]
    fn reacquire_is_noop() {
        let mut lt = LockTable::new();
        lt.acquire(1, P, LockMode::Exclusive).unwrap();
        lt.acquire(1, P, LockMode::Exclusive).unwrap();
        lt.acquire(1, P, LockMode::Shared).unwrap(); // weaker: still fine
        assert_eq!(lt.held(1, P), Some(LockMode::Exclusive));
    }

    #[test]
    fn release_all_frees_pages() {
        let mut lt = LockTable::new();
        lt.acquire(1, P, LockMode::Exclusive).unwrap();
        lt.acquire(1, Q, LockMode::Shared).unwrap();
        lt.acquire(2, Q, LockMode::Shared).unwrap();
        let released = lt.release_all(1);
        assert_eq!(released, vec![P, Q]);
        // P is free now; Q still held by 2
        lt.acquire(3, P, LockMode::Exclusive).unwrap();
        assert!(lt.acquire(3, Q, LockMode::Exclusive).is_err());
        assert_eq!(lt.held(2, Q), Some(LockMode::Shared));
    }

    #[test]
    fn release_unknown_txn_is_empty() {
        let mut lt = LockTable::new();
        assert!(lt.release_all(99).is_empty());
    }

    #[test]
    fn locked_pages_counts() {
        let mut lt = LockTable::new();
        assert_eq!(lt.locked_pages(), 0);
        lt.acquire(1, P, LockMode::Shared).unwrap();
        lt.acquire(2, Q, LockMode::Exclusive).unwrap();
        assert_eq!(lt.locked_pages(), 2);
        lt.release_all(1);
        assert_eq!(lt.locked_pages(), 1);
    }
}
