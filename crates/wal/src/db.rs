//! [`WalDb`]: the functional database engine running the parallel-logging
//! recovery architecture.
//!
//! The engine plays all the roles of the paper's machine at once: query
//! processors create log fragments on every page update
//! ([`WalDb::write_via`] takes the QP number so the selection policies are
//! exercised faithfully); the back-end controller's page table is the
//! `page_last_log` map, used to enforce the **write-ahead rule** when the
//! buffer pool evicts a dirty page; and commit forces every stream holding
//! the transaction's fragments before appending the commit record to the
//! transaction's *home* stream — the invariant that makes distributed-log
//! recovery sound.
//!
//! Buffer management is STEAL/NO-FORCE (the general case): dirty pages may
//! reach the data disk before commit, and need not reach it at commit.

use crate::lock::{LockMode, LockTable};
use crate::manager::{LogPos, ParallelLogManager};
use crate::record::{LogRecord, LogicalOp, DECISION_COST, DECISION_FORCED};
use crate::recovery;
use crate::select::SelectionPolicy;
use rmdb_storage::fault::FaultHandle;
use rmdb_storage::{
    read_page_retry, write_page_verified, BackendKind, BufferPool, Disk, EvictPolicy, Lsn, Page,
    PageId, StorageError, PAYLOAD_SIZE,
};
use std::collections::{BTreeSet, HashMap};

/// Transaction identifier handed out by [`WalDb::begin`].
pub type TxnId = u64;

/// Logical (byte-range delta) or physical (full before/after page image)
/// log fragments — the distinction behind Table 1 vs Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogMode {
    /// Fragments carry only the changed byte range.
    Logical,
    /// Fragments carry the full before and after page images (two log
    /// pages of data per update, as in the paper's Table 3 experiment).
    Physical,
}

/// Per-transaction logging policy: physical after-image fragments, command
/// (logical) records, or a per-commit cost-based choice between the two.
///
/// Under [`Command`](LoggingPolicy::Command) and
/// [`Adaptive`](LoggingPolicy::Adaptive), writes are *deferred-captured*:
/// nothing is appended while the transaction runs — its dirty pages are
/// pinned in the pool (so STEAL cannot leak un-logged data to disk) and its
/// fragments + logical ops are retained transaction-locally. At commit the
/// engine either appends one [`LogRecord::Logical`] record (which doubles as
/// the commit record) or *spills* the retained fragments and commits
/// physically. Deferred transactions that abort log nothing at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoggingPolicy {
    /// Always log physical after-image fragments as writes happen (the
    /// engine's original behavior).
    Fragments,
    /// Always command-log: every deferred transaction commits with one
    /// logical record, regardless of relative size.
    Command,
    /// Choose per transaction at commit: command-log iff
    /// `logical_bytes * 100 <= threshold_pct * fragment_bytes`.
    Adaptive {
        /// Percentage threshold; 100 means "whenever the logical record is
        /// no bigger than the fragments it replaces".
        threshold_pct: u32,
    },
}

/// Configuration for a [`WalDb`].
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Pages on the data disk.
    pub data_pages: u64,
    /// Buffer-pool frames.
    pub pool_frames: usize,
    /// Number of log processors (N ≥ 1).
    pub log_streams: usize,
    /// Frames per log disk.
    pub log_frames: u64,
    /// Fragment routing policy.
    pub policy: SelectionPolicy,
    /// Logical or physical fragments.
    pub log_mode: LogMode,
    /// Buffer replacement policy.
    pub evict: EvictPolicy,
    /// Seed for the random selection policy.
    pub seed: u64,
    /// Doublewrite-buffer slots appended after the data pages on the data
    /// disk. Every data-page flush parks a verified full image in a slot
    /// before overwriting the home frame, so a write torn by a crash can
    /// always be repaired — even under logical logging, whose fragments
    /// cannot rebuild a page from scratch. Zero disables the buffer.
    pub dw_slots: u64,
    /// Auto-checkpoint knob: take a fuzzy [`WalDb::checkpoint`] after every
    /// N commits (0 disables). Bounds the redo scan a checkpoint-aware
    /// restart engine has to replay after a crash.
    pub ckpt_every_commits: u64,
    /// Per-transaction logging policy (see [`LoggingPolicy`]).
    pub logging: LoggingPolicy,
    /// Which block-device backend the engine provisions its disks on —
    /// data disk, doublewrite slots, and every log platter alike.
    pub backend: BackendKind,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            data_pages: 256,
            pool_frames: 32,
            log_streams: 2,
            log_frames: 4096,
            policy: SelectionPolicy::Cyclic,
            log_mode: LogMode::Logical,
            evict: EvictPolicy::Lru,
            seed: 0xDB,
            dw_slots: 8,
            ckpt_every_commits: 0,
            logging: LoggingPolicy::Fragments,
            backend: BackendKind::Mem,
        }
    }
}

/// Errors from engine operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalError {
    /// Underlying storage failed.
    Storage(StorageError),
    /// Page-level lock conflict (the caller may retry after the holder
    /// finishes).
    LockConflict {
        /// Contested page.
        page: PageId,
        /// Conflicting holder.
        holder: TxnId,
    },
    /// Operation named a transaction that is not active.
    UnknownTxn(TxnId),
    /// Page number or byte range outside the database.
    OutOfBounds {
        /// Offending page.
        page: u64,
        /// Byte offset.
        offset: usize,
        /// Length.
        len: usize,
    },
}

impl From<StorageError> for WalError {
    fn from(e: StorageError) -> Self {
        WalError::Storage(e)
    }
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Storage(e) => write!(f, "storage: {e}"),
            WalError::LockConflict { page, holder } => {
                write!(f, "lock conflict on {page} held by txn {holder}")
            }
            WalError::UnknownTxn(t) => write!(f, "unknown transaction {t}"),
            WalError::OutOfBounds { page, offset, len } => {
                write!(f, "out of bounds: page {page} offset {offset} len {len}")
            }
        }
    }
}

impl std::error::Error for WalError {}

/// Everything that survives a crash: the data disk and the log disks.
#[derive(Debug)]
pub struct CrashImage {
    /// Durable data disk contents.
    pub data: Disk,
    /// Durable log disk contents, one per stream.
    pub logs: Vec<Disk>,
}

/// A point inside a transaction that [`WalDb::rollback_to`] can return to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Savepoint {
    txn: TxnId,
    undo_len: usize,
}

#[derive(Debug)]
struct UndoEntry {
    page: PageId,
    offset: u32,
    before: Vec<u8>,
    new_lsn: Lsn,
}

/// Deferred capture for a [`LoggingPolicy::Command`]/`Adaptive` transaction:
/// the fragments it *would* have appended (kept for a physical spill), the
/// logical ops mirroring them one-to-one, and the pages it read. Each
/// retained fragment holds one pin on its page in the buffer pool.
#[derive(Debug, Default)]
struct Deferred {
    /// `(qp, fragment)` per write, in execution order — parallel to `undo`.
    frags: Vec<(usize, LogRecord)>,
    /// Logical op per write, in execution order — parallel to `frags`.
    ops: Vec<LogicalOp>,
    /// Pages read under shared locks (for replay-DAG edges).
    reads: BTreeSet<PageId>,
    /// Total encoded size of `frags` (the physical cost side).
    phys_bytes: usize,
}

#[derive(Debug)]
struct TxnState {
    home: usize,
    streams: BTreeSet<usize>,
    undo: Vec<UndoEntry>,
    /// `Some` while the transaction is deferred-captured; spilling to
    /// fragment mode takes it.
    deferred: Option<Deferred>,
}

/// The parallel-logging database engine.
pub struct WalDb {
    cfg: WalConfig,
    data: Disk,
    pool: BufferPool,
    log: ParallelLogManager,
    locks: LockTable,
    active: HashMap<TxnId, TxnState>,
    /// The back-end controller's page table: last fragment logged for each
    /// dirty page, consulted before any data-page write (WAL rule).
    page_last_log: HashMap<PageId, LogPos>,
    next_txn: TxnId,
    next_lsn: u64,
    committed: u64,
    aborted: u64,
    wal_forces: u64,
    /// Round-robin cursor over the doublewrite slots.
    dw_cursor: u64,
}

impl WalDb {
    /// A fresh, empty database.
    pub fn new(cfg: WalConfig) -> Self {
        let log = ParallelLogManager::new_on(
            cfg.log_streams,
            cfg.log_frames,
            cfg.policy,
            cfg.seed,
            &cfg.backend,
        )
        .expect("provisioning log disks on the configured backend");
        let data = cfg
            .backend
            .provision(cfg.data_pages + cfg.dw_slots)
            .expect("provisioning the data disk on the configured backend");
        WalDb::assemble(cfg, log, data)
    }

    fn assemble(cfg: WalConfig, log: ParallelLogManager, data: Disk) -> Self {
        let pool = BufferPool::new(cfg.pool_frames, cfg.evict);
        WalDb {
            data,
            pool,
            log,
            locks: LockTable::new(),
            active: HashMap::new(),
            page_last_log: HashMap::new(),
            next_txn: 1,
            next_lsn: 1,
            committed: 0,
            aborted: 0,
            wal_forces: 0,
            dw_cursor: 0,
            cfg,
        }
    }

    /// Attach one shared fault injector to the data disk and every log
    /// disk, so a single [`rmdb_storage::FaultPlan`]'s operation indices
    /// span the engine's whole I/O stream.
    pub fn attach_faults(&mut self, handle: &FaultHandle) {
        self.data.attach_faults(handle.clone());
        self.log.attach_faults(handle);
    }

    /// Construct an engine from recovered parts: the repaired data disk,
    /// the reopened log manager, and the next transaction/LSN counters.
    /// Used by [`WalDb::recover`] and by external restart engines (the
    /// `rmdb-restart` crate's checkpoint-bounded parallel restart).
    pub fn from_parts(
        cfg: WalConfig,
        data: Disk,
        log: ParallelLogManager,
        next_txn: TxnId,
        next_lsn: u64,
    ) -> Self {
        let mut db = WalDb::assemble(cfg, log, data);
        db.next_txn = next_txn;
        db.next_lsn = next_lsn;
        db
    }

    /// Recover a database from a crash image: scans all log streams (never
    /// merging them into one physical log), redoes history, undoes losers.
    pub fn recover(
        image: CrashImage,
        cfg: WalConfig,
    ) -> Result<(WalDb, recovery::RecoveryReport), WalError> {
        recovery::recover(image, cfg)
    }

    /// The configuration in force.
    pub fn config(&self) -> &WalConfig {
        &self.cfg
    }

    /// Begin a transaction.
    pub fn begin(&mut self) -> TxnId {
        let txn = self.next_txn;
        self.next_txn += 1;
        let home = self.log.pick_home(0, txn);
        let deferred = match self.cfg.logging {
            LoggingPolicy::Fragments => None,
            LoggingPolicy::Command | LoggingPolicy::Adaptive { .. } => Some(Deferred::default()),
        };
        self.active.insert(
            txn,
            TxnState {
                home,
                streams: BTreeSet::new(),
                undo: Vec::new(),
                deferred,
            },
        );
        txn
    }

    /// Transactions currently active.
    pub fn active_txns(&self) -> Vec<TxnId> {
        let mut v: Vec<TxnId> = self.active.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Committed-transaction count.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Aborted-transaction count.
    pub fn aborted(&self) -> u64 {
        self.aborted
    }

    /// Times the WAL rule forced a log stream to release a dirty page.
    pub fn wal_forces(&self) -> u64 {
        self.wal_forces
    }

    /// The log manager (observability for tests/benches).
    pub fn log(&self) -> &ParallelLogManager {
        &self.log
    }

    /// The buffer pool (observability for tests/benches).
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    fn check_bounds(&self, page: u64, offset: usize, len: usize) -> Result<(), WalError> {
        if page >= self.cfg.data_pages || offset + len > PAYLOAD_SIZE {
            Err(WalError::OutOfBounds { page, offset, len })
        } else {
            Ok(())
        }
    }

    /// Ensure `page` is resident; applies the WAL rule to any evicted
    /// dirty page.
    fn fetch(&mut self, id: PageId) -> Result<(), WalError> {
        if self.pool.contains(id) {
            return Ok(());
        }
        let page = if self.data.is_allocated(id.0) {
            // bounded retry rides transient faults and read bit flips;
            // persistent corruption surfaces as a typed error
            read_page_retry(&self.data, id.0, crate::stream::IO_RETRIES)?
        } else {
            Page::new(id)
        };
        if let Some(evicted) = self.pool.insert(id, page, false)? {
            if evicted.dirty {
                self.flush_page(&evicted.page)?;
            }
        }
        Ok(())
    }

    /// Write one dirty page to the data disk, forcing its log fragment
    /// first if needed — the paper's WAL protocol.
    ///
    /// The home write is preceded by a verified copy into a doublewrite
    /// slot and is itself read-back verified: a torn or silently lost
    /// write is retried, and a write torn by the crash itself is
    /// repairable at recovery from the doublewrite image.
    fn flush_page(&mut self, page: &Page) -> Result<(), WalError> {
        if let Some(&pos) = self.page_last_log.get(&page.id) {
            if !self.log.is_durable(pos) {
                self.log.force(pos.stream)?;
                self.wal_forces += 1;
            }
        }
        if self.cfg.dw_slots > 0 {
            let slot = self.cfg.data_pages + self.dw_cursor % self.cfg.dw_slots;
            self.dw_cursor += 1;
            write_page_verified(&mut self.data, slot, page, crate::stream::IO_RETRIES)?;
        }
        write_page_verified(&mut self.data, page.id.0, page, crate::stream::IO_RETRIES)?;
        Ok(())
    }

    /// Read `len` bytes at `offset` of `page` under a shared lock.
    pub fn read(
        &mut self,
        txn: TxnId,
        page: u64,
        offset: usize,
        len: usize,
    ) -> Result<Vec<u8>, WalError> {
        self.check_bounds(page, offset, len)?;
        if !self.active.contains_key(&txn) {
            return Err(WalError::UnknownTxn(txn));
        }
        let id = PageId(page);
        self.locks
            .acquire(txn, id, LockMode::Shared)
            .map_err(|c| WalError::LockConflict {
                page: c.page,
                holder: c.holder,
            })?;
        self.fetch_spilling(id)?;
        if let Some(d) = self.active.get_mut(&txn).and_then(|s| s.deferred.as_mut()) {
            d.reads.insert(id);
        }
        let p = self.pool.get(id).expect("fetched page resident");
        Ok(p.read_at(offset, len).to_vec())
    }

    /// Write `data` at `offset` of `page`, logging a fragment routed by
    /// the selection policy on behalf of query processor `qp`.
    pub fn write_via(
        &mut self,
        qp: usize,
        txn: TxnId,
        page: u64,
        offset: usize,
        data: &[u8],
    ) -> Result<(), WalError> {
        self.write_op(qp, txn, page, offset, data, None)
    }

    /// Add `delta` (wrapping) to the little-endian u64 at `offset` of
    /// `page`, returning the new value. Physically this is a plain 8-byte
    /// write; under deferred capture it is logged as a [`LogicalOp::AddU64`]
    /// — the canonical case where a command record (8-byte delta) beats an
    /// after-image fragment (before + after images).
    pub fn add_u64(
        &mut self,
        txn: TxnId,
        page: u64,
        offset: usize,
        delta: u64,
    ) -> Result<u64, WalError> {
        self.check_bounds(page, offset, 8)?;
        if !self.active.contains_key(&txn) {
            return Err(WalError::UnknownTxn(txn));
        }
        let id = PageId(page);
        self.locks
            .acquire(txn, id, LockMode::Exclusive)
            .map_err(|c| WalError::LockConflict {
                page: c.page,
                holder: c.holder,
            })?;
        self.fetch_spilling(id)?;
        let mut cur = [0u8; 8];
        cur.copy_from_slice(
            self.pool
                .get(id)
                .expect("fetched page resident")
                .read_at(offset, 8),
        );
        let next = u64::from_le_bytes(cur).wrapping_add(delta);
        self.write_op(0, txn, page, offset, &next.to_le_bytes(), Some(delta))?;
        Ok(next)
    }

    /// Shared write path: `add_delta` is `Some` when the write is an
    /// [`WalDb::add_u64`] (so deferred capture records the delta, not the
    /// resulting bytes).
    fn write_op(
        &mut self,
        qp: usize,
        txn: TxnId,
        page: u64,
        offset: usize,
        data: &[u8],
        add_delta: Option<u64>,
    ) -> Result<(), WalError> {
        self.check_bounds(page, offset, data.len())?;
        if !self.active.contains_key(&txn) {
            return Err(WalError::UnknownTxn(txn));
        }
        let id = PageId(page);
        self.locks
            .acquire(txn, id, LockMode::Exclusive)
            .map_err(|c| WalError::LockConflict {
                page: c.page,
                holder: c.holder,
            })?;
        // a deferred txn pinning the whole pool would wedge every fetch —
        // convert it to fragment mode before its pins fill the last frame
        let pins = self
            .active
            .get(&txn)
            .and_then(|s| s.deferred.as_ref())
            .map(|d| d.ops.len())
            .unwrap_or(0);
        if pins + 1 > self.cfg.pool_frames.saturating_sub(1).max(1) {
            self.spill_deferred(txn)?;
        }
        self.fetch_spilling(id)?;

        let new_lsn = Lsn(self.next_lsn);
        self.next_lsn += 1;

        // Build the fragment from the page's pre-image.
        let (rec, undo_entry) = {
            let p = self.pool.get(id).expect("fetched page resident");
            let prev_lsn = p.lsn;
            match self.cfg.log_mode {
                LogMode::Logical => {
                    let before = p.read_at(offset, data.len()).to_vec();
                    (
                        LogRecord::Update {
                            txn,
                            page: id,
                            prev_lsn,
                            new_lsn,
                            offset: offset as u32,
                            before: before.clone(),
                            after: data.to_vec(),
                        },
                        UndoEntry {
                            page: id,
                            offset: offset as u32,
                            before,
                            new_lsn,
                        },
                    )
                }
                LogMode::Physical => {
                    let before = p.payload().to_vec();
                    let mut after = before.clone();
                    after[offset..offset + data.len()].copy_from_slice(data);
                    (
                        LogRecord::Update {
                            txn,
                            page: id,
                            prev_lsn,
                            new_lsn,
                            offset: 0,
                            before: before.clone(),
                            after,
                        },
                        UndoEntry {
                            page: id,
                            offset: 0,
                            before,
                            new_lsn,
                        },
                    )
                }
            }
        };

        let state = self.active.get_mut(&txn).expect("txn checked active");
        if let Some(d) = state.deferred.as_mut() {
            // Deferred capture: retain the fragment instead of appending it,
            // pin the page (once per write) so STEAL can never put un-logged
            // bytes on disk, and mirror the write as a logical op. The LSN
            // sequence is identical to fragment mode, so per-page ordering —
            // and therefore replay equivalence — is policy-independent.
            let op = match add_delta {
                Some(delta) => LogicalOp::AddU64 {
                    page: id,
                    lsn: new_lsn,
                    offset: offset as u32,
                    delta,
                },
                None => LogicalOp::Put {
                    page: id,
                    lsn: new_lsn,
                    offset: offset as u32,
                    data: data.to_vec(),
                },
            };
            d.phys_bytes += rec.encoded_len();
            d.frags.push((qp, rec));
            d.ops.push(op);
            state.undo.push(undo_entry);
            self.pool.pin(id);
        } else {
            let pos = self.log.append_routed(qp, txn, &rec)?;
            let state = self.active.get_mut(&txn).expect("txn checked active");
            state.streams.insert(pos.stream);
            state.undo.push(undo_entry);
            self.page_last_log.insert(id, pos);
        }

        let p = self.pool.get_mut(id).expect("fetched page resident");
        p.write_at(offset, data);
        p.lsn = new_lsn;
        Ok(())
    }

    /// [`WalDb::fetch`], spilling deferred transactions and retrying once
    /// if the pool is exhausted (their pins are what fill it up).
    fn fetch_spilling(&mut self, id: PageId) -> Result<(), WalError> {
        match self.fetch(id) {
            Err(WalError::Storage(StorageError::PoolExhausted)) => {
                self.spill_all_deferred()?;
                self.fetch(id)
            }
            other => other,
        }
    }

    /// Convert a deferred transaction to fragment mode: append every
    /// retained fragment (routed through the qp recorded at write time),
    /// release its pins, and drop the logical capture. After this the
    /// transaction commits/aborts exactly like a
    /// [`LoggingPolicy::Fragments`] one.
    fn spill_deferred(&mut self, txn: TxnId) -> Result<(), WalError> {
        let Some(state) = self.active.get_mut(&txn) else {
            return Ok(());
        };
        let Some(d) = state.deferred.take() else {
            return Ok(());
        };
        for (i, (qp, rec)) in d.frags.iter().enumerate() {
            match self.log.append_routed(*qp, txn, rec) {
                Ok(pos) => {
                    let state = self.active.get_mut(&txn).expect("spilling active txn");
                    state.streams.insert(pos.stream);
                    self.page_last_log.insert(d.ops[i].page(), pos);
                    self.pool.unpin(d.ops[i].page());
                }
                Err(e) => {
                    // The un-appended tail would sit in the pool as
                    // un-logged dirty bytes — a STEAL hazard once unpinned.
                    // Revert it in memory (before-images, reverse order)
                    // and forget it, leaving the txn consistent with the
                    // appended prefix. Then release every remaining pin.
                    let state = self.active.get_mut(&txn).expect("spilling active txn");
                    let tail: Vec<UndoEntry> = state.undo.split_off(i);
                    for entry in tail.iter().rev() {
                        if let Some(p) = self.pool.get_mut(entry.page) {
                            p.write_at(entry.offset as usize, &entry.before);
                        }
                    }
                    for op in &d.ops[i..] {
                        self.pool.unpin(op.page());
                    }
                    return Err(e.into());
                }
            }
        }
        Ok(())
    }

    /// Spill every deferred transaction (checkpoint/flush prelude and the
    /// pool-exhaustion escape hatch).
    fn spill_all_deferred(&mut self) -> Result<(), WalError> {
        let deferred: Vec<TxnId> = self
            .active
            .iter()
            .filter(|(_, s)| s.deferred.is_some())
            .map(|(t, _)| *t)
            .collect();
        for txn in deferred {
            self.spill_deferred(txn)?;
        }
        Ok(())
    }

    /// [`WalDb::write_via`] from query processor 0.
    pub fn write(
        &mut self,
        txn: TxnId,
        page: u64,
        offset: usize,
        data: &[u8],
    ) -> Result<(), WalError> {
        self.write_via(0, txn, page, offset, data)
    }

    /// Commit: force every stream holding the transaction's fragments,
    /// then append + force the commit record on its home stream, then
    /// release locks. Dirty pages stay in the pool (NO-FORCE).
    ///
    /// A deferred-captured transaction instead decides its logging here: a
    /// single [`LogRecord::Logical`] record (which *is* the commit record)
    /// when the policy picks command logging, or a spill to fragments plus
    /// the normal commit protocol otherwise.
    pub fn commit(&mut self, txn: TxnId) -> Result<(), WalError> {
        if !self.active.contains_key(&txn) {
            return Err(WalError::UnknownTxn(txn));
        }
        if let Some(rec) = self.build_logical_commit(txn) {
            let state = self.active.remove(&txn).expect("checked active");
            let d = state.deferred.expect("logical commit is deferred");
            self.next_lsn += 1; // the commit_lsn baked into `rec`
            let append = self.log.append_to(state.home, &rec);
            let pos = match append {
                Ok(pos) => pos,
                Err(e) => {
                    // nothing was logged: revert in memory and unpin, as a
                    // deferred abort would
                    for entry in state.undo.iter().rev() {
                        if let Some(p) = self.pool.get_mut(entry.page) {
                            p.write_at(entry.offset as usize, &entry.before);
                        }
                    }
                    for op in &d.ops {
                        self.pool.unpin(op.page());
                    }
                    self.locks.release_all(txn);
                    self.aborted += 1;
                    return Err(e.into());
                }
            };
            // pins drop before the force: page_last_log now names the
            // logical record, so a later eviction re-forces under the WAL
            // rule even if this force fails
            for op in &d.ops {
                self.page_last_log.insert(op.page(), pos);
                self.pool.unpin(op.page());
            }
            self.log.force(state.home)?;
            self.locks.release_all(txn);
            self.committed += 1;
            return self.maybe_auto_checkpoint();
        }
        self.spill_deferred(txn)?;
        let state = self.active.remove(&txn).ok_or(WalError::UnknownTxn(txn))?;
        for &s in &state.streams {
            self.log.force(s)?;
        }
        self.log.append_to(state.home, &LogRecord::Commit { txn })?;
        self.log.force(state.home)?;
        self.locks.release_all(txn);
        self.committed += 1;
        self.maybe_auto_checkpoint()
    }

    /// Run the cost-based policy for a deferred transaction about to
    /// commit. `Some(record)` means command-log it (the record carries the
    /// next LSN as its commit LSN — the caller consumes that LSN);
    /// `None` means spill to fragments (or the txn was never deferred).
    fn build_logical_commit(&mut self, txn: TxnId) -> Option<LogRecord> {
        let state = self.active.get(&txn)?;
        let d = state.deferred.as_ref()?;
        if d.ops.is_empty() {
            // read-only: the plain Commit record path is already minimal
            return None;
        }
        let decision = match self.cfg.logging {
            LoggingPolicy::Command => DECISION_FORCED,
            LoggingPolicy::Adaptive { .. } => DECISION_COST,
            LoggingPolicy::Fragments => return None,
        };
        let rec = LogRecord::Logical {
            txn,
            commit_lsn: Lsn(self.next_lsn),
            decision,
            reads: d.reads.iter().copied().collect(),
            ops: d.ops.clone(),
        };
        if let LoggingPolicy::Adaptive { threshold_pct } = self.cfg.logging {
            let logical = rec.encoded_len() as u128;
            if logical * 100 > u128::from(threshold_pct) * d.phys_bytes as u128 {
                return None;
            }
        }
        Some(rec)
    }

    /// Honour [`WalConfig::ckpt_every_commits`]: fuzzy-checkpoint when the
    /// commit counter crosses the knob. An error here surfaces from the
    /// committing call, but the commit record is already durable — exactly
    /// the "ambiguous commit" a crash mid-checkpoint produces.
    fn maybe_auto_checkpoint(&mut self) -> Result<(), WalError> {
        let n = self.cfg.ckpt_every_commits;
        if n > 0 && self.committed.is_multiple_of(n) {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Group commit: commit several transactions with one force per
    /// involved log stream instead of one per transaction — the
    /// stream-level analogue of the log processor's page assembly.
    ///
    /// All-or-nothing per transaction (not across the group): each listed
    /// transaction must be active; the group shares the force work.
    pub fn commit_group(&mut self, txns: &[TxnId]) -> Result<(), WalError> {
        // validate first so a bad id does not half-commit the group
        for txn in txns {
            if !self.active.contains_key(txn) {
                return Err(WalError::UnknownTxn(*txn));
            }
        }
        // group commit shares forces across physical commit records; spill
        // any deferred members so the whole group takes that path
        for txn in txns {
            self.spill_deferred(*txn)?;
        }
        let mut states = Vec::with_capacity(txns.len());
        for txn in txns {
            states.push((*txn, self.active.remove(txn).expect("validated")));
        }
        // one force per distinct fragment stream across the whole group
        let mut streams: BTreeSet<usize> = BTreeSet::new();
        for (_, state) in &states {
            streams.extend(state.streams.iter().copied());
        }
        for s in streams {
            self.log.force(s)?;
        }
        // append all commit records, then force each home stream once
        let mut homes: BTreeSet<usize> = BTreeSet::new();
        for (txn, state) in &states {
            self.log
                .append_to(state.home, &LogRecord::Commit { txn: *txn })?;
            homes.insert(state.home);
        }
        for h in homes {
            self.log.force(h)?;
        }
        for (txn, _) in &states {
            self.locks.release_all(*txn);
            self.committed += 1;
        }
        self.maybe_auto_checkpoint()
    }

    /// Abort: undo the transaction's updates in reverse order, logging a
    /// compensation on the home stream for each, then append the abort
    /// record. No force is needed — if the tail is lost, recovery simply
    /// re-undoes the remainder.
    pub fn abort(&mut self, txn: TxnId) -> Result<(), WalError> {
        let state = self.active.remove(&txn).ok_or(WalError::UnknownTxn(txn))?;
        if let Some(d) = state.deferred {
            // Deferred abort: nothing was ever logged, so there is nothing
            // to compensate — restore the before-images in memory, release
            // the pins, and vanish without a trace in the log.
            for entry in state.undo.iter().rev() {
                if let Some(p) = self.pool.get_mut(entry.page) {
                    p.write_at(entry.offset as usize, &entry.before);
                }
            }
            for op in &d.ops {
                self.pool.unpin(op.page());
            }
            self.locks.release_all(txn);
            self.aborted += 1;
            return Ok(());
        }
        for entry in state.undo.iter().rev() {
            self.fetch(entry.page)?;
            let new_lsn = Lsn(self.next_lsn);
            self.next_lsn += 1;
            let rec = LogRecord::Compensation {
                txn,
                page: entry.page,
                undoes: entry.new_lsn,
                new_lsn,
                offset: entry.offset,
                data: entry.before.clone(),
            };
            let pos = self.log.append_to(state.home, &rec)?;
            self.page_last_log.insert(entry.page, pos);
            let p = self
                .pool
                .get_mut(entry.page)
                .expect("fetched page resident");
            p.write_at(entry.offset as usize, &entry.before);
            p.lsn = new_lsn;
        }
        self.log.append_to(state.home, &LogRecord::Abort { txn })?;
        self.locks.release_all(txn);
        self.aborted += 1;
        Ok(())
    }

    /// Flush every dirty page to the data disk (honouring the WAL rule)
    /// without writing checkpoint records or truncating the logs.
    pub fn flush_all(&mut self) -> Result<(), WalError> {
        // deferred txns hold un-logged dirty pages; spill first so every
        // flushed byte is covered by a durable-forceable fragment (WAL rule)
        self.spill_all_deferred()?;
        for id in self.pool.dirty_ids() {
            let page = self.pool.peek(id).expect("dirty page resident").clone();
            self.flush_page(&page)?;
            self.pool.mark_clean(id);
        }
        Ok(())
    }

    /// Fuzzy checkpoint: record the active set, flush every dirty page
    /// (honouring the WAL rule), record the end, and — when no transaction
    /// is active — truncate every log stream.
    pub fn checkpoint(&mut self) -> Result<(), WalError> {
        // a fuzzy checkpoint flushes every dirty page; spill deferred txns
        // so none of those pages carries un-logged bytes
        self.spill_all_deferred()?;
        let active: Vec<TxnId> = self.active_txns();
        let begin = LogRecord::CheckpointBegin {
            active: active.clone(),
        };
        for s in 0..self.log.n_streams() {
            self.log.append_to(s, &begin)?;
        }
        for id in self.pool.dirty_ids() {
            let page = self.pool.peek(id).expect("dirty page resident").clone();
            self.flush_page(&page)?;
            self.pool.mark_clean(id);
        }
        for s in 0..self.log.n_streams() {
            self.log.append_to(s, &LogRecord::CheckpointEnd)?;
        }
        self.log.force_all()?;
        if active.is_empty() {
            self.log.truncate_all()?;
        }
        Ok(())
    }

    /// Create a savepoint inside a transaction: a later
    /// [`WalDb::rollback_to`] undoes everything the transaction did after
    /// this point while keeping the transaction (and its locks) alive.
    pub fn savepoint(&mut self, txn: TxnId) -> Result<Savepoint, WalError> {
        let state = self.active.get(&txn).ok_or(WalError::UnknownTxn(txn))?;
        Ok(Savepoint {
            txn,
            undo_len: state.undo.len(),
        })
    }

    /// Partial rollback to `sp`: the transaction's updates after the
    /// savepoint are undone (with compensation records, so the rollback
    /// itself is crash-safe) and forgotten; earlier updates and all locks
    /// survive.
    pub fn rollback_to(&mut self, sp: Savepoint) -> Result<(), WalError> {
        let txn = sp.txn;
        let state = self.active.get(&txn).ok_or(WalError::UnknownTxn(txn))?;
        if sp.undo_len > state.undo.len() {
            return Err(WalError::Storage(StorageError::Protocol(
                "savepoint from a different transaction incarnation",
            )));
        }
        let home = state.home;
        if state.deferred.is_some() {
            // Deferred partial rollback: the undone suffix was never logged
            // (frags/ops/undo grow in lockstep, so `undo_len` indexes all
            // three) — revert it in memory and drop the captured tail.
            let state = self.active.get_mut(&txn).expect("checked active");
            let d = state.deferred.as_mut().expect("checked deferred");
            let dropped_ops = d.ops.split_off(sp.undo_len);
            d.frags.truncate(sp.undo_len);
            d.phys_bytes = d.frags.iter().map(|(_, r)| r.encoded_len()).sum();
            let to_undo: Vec<UndoEntry> = state.undo.split_off(sp.undo_len);
            for entry in to_undo.iter().rev() {
                if let Some(p) = self.pool.get_mut(entry.page) {
                    p.write_at(entry.offset as usize, &entry.before);
                }
            }
            for op in &dropped_ops {
                self.pool.unpin(op.page());
            }
            return Ok(());
        }
        let to_undo: Vec<UndoEntry> = {
            let state = self.active.get_mut(&txn).expect("checked active");
            state.undo.split_off(sp.undo_len)
        };
        for entry in to_undo.iter().rev() {
            self.fetch(entry.page)?;
            let new_lsn = Lsn(self.next_lsn);
            self.next_lsn += 1;
            let rec = LogRecord::Compensation {
                txn,
                page: entry.page,
                undoes: entry.new_lsn,
                new_lsn,
                offset: entry.offset,
                data: entry.before.clone(),
            };
            let pos = self.log.append_to(home, &rec)?;
            self.page_last_log.insert(entry.page, pos);
            let p = self
                .pool
                .get_mut(entry.page)
                .expect("fetched page resident");
            p.write_at(entry.offset as usize, &entry.before);
            p.lsn = new_lsn;
        }
        Ok(())
    }

    /// Take an archive copy of the database for media recovery: flushes
    /// everything dirty (honouring the WAL rule) and snapshots the data
    /// disk. Keep the log disks from the archive point onward — a
    /// quiescent checkpoint truncates them, so archives should be taken
    /// before relying on such a checkpoint.
    pub fn archive(&mut self) -> Result<Disk, WalError> {
        self.flush_all()?;
        Ok(self.data.snapshot())
    }

    /// Media recovery: the data disk was destroyed; rebuild it from an
    /// [`WalDb::archive`] copy plus the surviving log disks. Redo replays
    /// everything logged since the archive (per-page LSNs skip what the
    /// archive already contains); losers are rolled back as usual.
    pub fn recover_from_archive(
        archive: Disk,
        logs: Vec<Disk>,
        cfg: WalConfig,
    ) -> Result<(WalDb, recovery::RecoveryReport), WalError> {
        recovery::recover(
            CrashImage {
                data: archive,
                logs,
            },
            cfg,
        )
    }

    /// Capture the durable state — what a crash at this instant preserves.
    /// Buffer-pool contents and unforced log tails are *not* included.
    pub fn crash_image(&self) -> CrashImage {
        CrashImage {
            data: self.data.snapshot(),
            logs: self.log.disk_snapshots(),
        }
    }

    /// Flush everything and shut down cleanly (used to compare clean vs
    /// crash restarts in tests).
    pub fn shutdown(mut self) -> Result<CrashImage, WalError> {
        self.checkpoint()?;
        Ok(self.crash_image())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> WalConfig {
        WalConfig {
            data_pages: 16,
            pool_frames: 4,
            log_streams: 2,
            ..WalConfig::default()
        }
    }

    #[test]
    fn read_your_writes() {
        let mut db = WalDb::new(tiny());
        let t = db.begin();
        db.write(t, 1, 10, b"abc").unwrap();
        assert_eq!(db.read(t, 1, 10, 3).unwrap(), b"abc");
        db.commit(t).unwrap();
    }

    #[test]
    fn committed_data_visible_to_later_txn() {
        let mut db = WalDb::new(tiny());
        let t = db.begin();
        db.write(t, 2, 0, b"persist").unwrap();
        db.commit(t).unwrap();
        let t2 = db.begin();
        assert_eq!(db.read(t2, 2, 0, 7).unwrap(), b"persist");
    }

    #[test]
    fn abort_restores_pre_image() {
        let mut db = WalDb::new(tiny());
        let t = db.begin();
        db.write(t, 1, 0, b"original").unwrap();
        db.commit(t).unwrap();
        let t2 = db.begin();
        db.write(t2, 1, 0, b"scribble").unwrap();
        db.abort(t2).unwrap();
        let t3 = db.begin();
        assert_eq!(db.read(t3, 1, 0, 8).unwrap(), b"original");
    }

    #[test]
    fn abort_undoes_multiple_writes_in_reverse() {
        let mut db = WalDb::new(tiny());
        let t = db.begin();
        db.write(t, 1, 0, b"aa").unwrap();
        db.write(t, 1, 0, b"bb").unwrap();
        db.write(t, 1, 1, b"c").unwrap();
        db.abort(t).unwrap();
        let t2 = db.begin();
        assert_eq!(db.read(t2, 1, 0, 2).unwrap(), vec![0, 0]);
    }

    #[test]
    fn lock_conflict_reported() {
        let mut db = WalDb::new(tiny());
        let t1 = db.begin();
        let t2 = db.begin();
        db.write(t1, 3, 0, b"x").unwrap();
        let err = db.write(t2, 3, 0, b"y").unwrap_err();
        assert_eq!(
            err,
            WalError::LockConflict {
                page: PageId(3),
                holder: t1
            }
        );
        // reads conflict with the exclusive lock too
        assert!(matches!(
            db.read(t2, 3, 0, 1),
            Err(WalError::LockConflict { .. })
        ));
        db.commit(t1).unwrap();
        db.write(t2, 3, 0, b"y").unwrap();
        db.commit(t2).unwrap();
    }

    #[test]
    fn shared_readers_coexist() {
        let mut db = WalDb::new(tiny());
        let t1 = db.begin();
        let t2 = db.begin();
        assert!(db.read(t1, 5, 0, 1).is_ok());
        assert!(db.read(t2, 5, 0, 1).is_ok());
        db.commit(t1).unwrap();
        db.commit(t2).unwrap();
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut db = WalDb::new(tiny());
        let t = db.begin();
        assert!(matches!(
            db.write(t, 99, 0, b"x"),
            Err(WalError::OutOfBounds { .. })
        ));
        assert!(matches!(
            db.write(t, 1, PAYLOAD_SIZE - 1, b"xy"),
            Err(WalError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn unknown_txn_rejected() {
        let mut db = WalDb::new(tiny());
        assert_eq!(db.write(99, 1, 0, b"x"), Err(WalError::UnknownTxn(99)));
        assert_eq!(db.commit(99), Err(WalError::UnknownTxn(99)));
        assert_eq!(db.abort(99), Err(WalError::UnknownTxn(99)));
    }

    #[test]
    fn eviction_enforces_wal_rule() {
        // Pool of 2 frames; touch 3 pages in one txn so an eviction of a
        // dirty page happens before commit — the log must be forced first.
        let mut db = WalDb::new(WalConfig {
            data_pages: 16,
            pool_frames: 2,
            log_streams: 1,
            ..WalConfig::default()
        });
        let t = db.begin();
        db.write(t, 0, 0, b"page0").unwrap();
        db.write(t, 1, 0, b"page1").unwrap();
        db.write(t, 2, 0, b"page2").unwrap(); // evicts a dirty page
        assert!(db.wal_forces() >= 1, "WAL rule must force the log");
        // the crash image now contains an uncommitted page — recovery
        // must undo it (covered by recovery tests)
        db.commit(t).unwrap();
    }

    #[test]
    fn commit_forces_all_fragment_streams() {
        let mut db = WalDb::new(WalConfig {
            data_pages: 16,
            pool_frames: 8,
            log_streams: 3,
            policy: SelectionPolicy::Cyclic,
            ..WalConfig::default()
        });
        let t = db.begin();
        for page in 0..6 {
            db.write(t, page, 0, b"spread").unwrap();
        }
        db.commit(t).unwrap();
        // every stream that got fragments must be durable up to them
        let image = db.crash_image();
        let reopened = ParallelLogManager::open(image.logs, SelectionPolicy::Cyclic, 0).unwrap();
        let n_updates: usize = reopened
            .scan_all()
            .iter()
            .flatten()
            .filter(|r| matches!(r, LogRecord::Update { .. }))
            .count();
        assert_eq!(n_updates, 6, "all fragments durable after commit");
    }

    #[test]
    fn checkpoint_truncates_when_quiescent() {
        let mut db = WalDb::new(tiny());
        let t = db.begin();
        db.write(t, 1, 0, b"data").unwrap();
        db.commit(t).unwrap();
        db.checkpoint().unwrap();
        let scans = db.log().scan_all();
        assert!(
            scans.iter().all(|s| s.is_empty()),
            "quiescent checkpoint truncates the logs"
        );
        // and the data page is durable on the data disk
        let img = db.crash_image();
        assert_eq!(img.data.read_page(1).unwrap().read_at(0, 4), b"data");
    }

    #[test]
    fn checkpoint_with_active_txn_keeps_log() {
        let mut db = WalDb::new(tiny());
        let t = db.begin();
        db.write(t, 1, 0, b"live").unwrap();
        db.checkpoint().unwrap();
        let scans = db.log().scan_all();
        let updates: usize = scans
            .iter()
            .flatten()
            .filter(|r| matches!(r, LogRecord::Update { .. }))
            .count();
        assert_eq!(updates, 1, "undo information must be retained");
        db.abort(t).unwrap();
    }

    #[test]
    fn physical_mode_logs_full_images() {
        let mut db = WalDb::new(WalConfig {
            log_mode: LogMode::Physical,
            ..tiny()
        });
        let t = db.begin();
        db.write(t, 1, 100, b"tiny").unwrap();
        db.commit(t).unwrap();
        let scans = db.log().scan_all();
        let rec = scans
            .iter()
            .flatten()
            .find(|r| matches!(r, LogRecord::Update { .. }))
            .unwrap();
        if let LogRecord::Update {
            before,
            after,
            offset,
            ..
        } = rec
        {
            assert_eq!(*offset, 0);
            assert_eq!(before.len(), PAYLOAD_SIZE);
            assert_eq!(after.len(), PAYLOAD_SIZE);
            assert_eq!(&after[100..104], b"tiny");
        }
    }

    #[test]
    fn group_commit_amortizes_forces() {
        let mk = || WalConfig {
            data_pages: 32,
            pool_frames: 16,
            log_streams: 2,
            ..WalConfig::default()
        };
        // individual commits
        let mut solo = WalDb::new(mk());
        let txns: Vec<TxnId> = (0..6)
            .map(|i| {
                let t = solo.begin();
                solo.write(t, i, 0, b"solo").unwrap();
                t
            })
            .collect();
        for t in txns {
            solo.commit(t).unwrap();
        }
        let solo_forces: u64 = (0..2).map(|s| solo.log().stream(s).forces()).sum();

        // one group commit
        let mut grouped = WalDb::new(mk());
        let txns: Vec<TxnId> = (0..6)
            .map(|i| {
                let t = grouped.begin();
                grouped.write(t, i, 0, b"grup").unwrap();
                t
            })
            .collect();
        grouped.commit_group(&txns).unwrap();
        let group_forces: u64 = (0..2).map(|s| grouped.log().stream(s).forces()).sum();

        assert!(
            group_forces < solo_forces / 2,
            "group {group_forces} vs solo {solo_forces}"
        );
        assert_eq!(grouped.committed(), 6);
        // durability identical: everything survives a crash
        let (mut rec, report) = WalDb::recover(grouped.crash_image(), mk()).unwrap();
        assert_eq!(report.committed_txns.len(), 6);
        let q = rec.begin();
        for i in 0..6 {
            assert_eq!(rec.read(q, i, 0, 4).unwrap(), b"grup");
        }
    }

    #[test]
    fn group_commit_rejects_unknown_txn_atomically() {
        let mut db = WalDb::new(tiny());
        let a = db.begin();
        db.write(a, 1, 0, b"a").unwrap();
        assert_eq!(db.commit_group(&[a, 999]), Err(WalError::UnknownTxn(999)));
        // a is still active and can commit normally
        db.commit(a).unwrap();
    }

    #[test]
    fn savepoint_partial_rollback() {
        let mut db = WalDb::new(tiny());
        let t = db.begin();
        db.write(t, 1, 0, b"keep").unwrap();
        let sp = db.savepoint(t).unwrap();
        db.write(t, 1, 4, b"drop").unwrap();
        db.write(t, 2, 0, b"drop").unwrap();
        db.rollback_to(sp).unwrap();
        // post-savepoint writes gone, pre-savepoint ones intact, txn alive
        assert_eq!(db.read(t, 1, 0, 8).unwrap(), b"keep\0\0\0\0");
        assert_eq!(db.read(t, 2, 0, 4).unwrap(), vec![0; 4]);
        db.write(t, 3, 0, b"more").unwrap();
        db.commit(t).unwrap();
        let q = db.begin();
        assert_eq!(db.read(q, 1, 0, 4).unwrap(), b"keep");
        assert_eq!(db.read(q, 3, 0, 4).unwrap(), b"more");
    }

    #[test]
    fn savepoint_rollback_survives_crash() {
        let mut db = WalDb::new(tiny());
        let t = db.begin();
        db.write(t, 1, 0, b"keep").unwrap();
        let sp = db.savepoint(t).unwrap();
        db.write(t, 1, 0, b"DROP").unwrap();
        db.rollback_to(sp).unwrap();
        db.commit(t).unwrap();
        let (mut db2, _) = WalDb::recover(db.crash_image(), tiny()).unwrap();
        let q = db2.begin();
        assert_eq!(db2.read(q, 1, 0, 4).unwrap(), b"keep");
    }

    #[test]
    fn nested_savepoints_unwind_in_order() {
        let mut db = WalDb::new(tiny());
        let t = db.begin();
        db.write(t, 1, 0, b"a").unwrap();
        let sp1 = db.savepoint(t).unwrap();
        db.write(t, 1, 1, b"b").unwrap();
        let sp2 = db.savepoint(t).unwrap();
        db.write(t, 1, 2, b"c").unwrap();
        db.rollback_to(sp2).unwrap();
        assert_eq!(db.read(t, 1, 0, 3).unwrap(), b"ab\0");
        db.rollback_to(sp1).unwrap();
        assert_eq!(db.read(t, 1, 0, 3).unwrap(), b"a\0\0");
        db.commit(t).unwrap();
    }

    #[test]
    fn media_recovery_from_archive() {
        let mut db = WalDb::new(tiny());
        let t = db.begin();
        db.write(t, 1, 0, b"pre-archive").unwrap();
        db.commit(t).unwrap();
        let archive = db.archive().unwrap();
        // activity after the archive
        let t2 = db.begin();
        db.write(t2, 2, 0, b"post-archive").unwrap();
        db.commit(t2).unwrap();
        let loser = db.begin();
        db.write(loser, 3, 0, b"in-flight").unwrap();
        // the data disk is destroyed; only the archive and the logs survive
        let logs = db.crash_image().logs;
        let (mut db2, report) = WalDb::recover_from_archive(archive, logs, tiny()).unwrap();
        let q = db2.begin();
        assert_eq!(db2.read(q, 1, 0, 11).unwrap(), b"pre-archive");
        assert_eq!(db2.read(q, 2, 0, 12).unwrap(), b"post-archive");
        assert_eq!(db2.read(q, 3, 0, 9).unwrap(), vec![0; 9]);
        assert!(report.committed_txns.len() >= 2);
    }

    #[test]
    fn savepoint_of_unknown_txn_fails() {
        let mut db = WalDb::new(tiny());
        assert!(db.savepoint(99).is_err());
    }

    fn command_cfg() -> WalConfig {
        WalConfig {
            logging: LoggingPolicy::Command,
            ..tiny()
        }
    }

    fn count_recs(db: &WalDb, pred: fn(&LogRecord) -> bool) -> usize {
        db.log()
            .scan_all()
            .iter()
            .flatten()
            .filter(|r| pred(r))
            .count()
    }

    #[test]
    fn command_policy_logs_one_record_per_txn() {
        let mut db = WalDb::new(command_cfg());
        let t = db.begin();
        db.write(t, 1, 0, b"cmd").unwrap();
        db.write(t, 2, 8, b"cmd2").unwrap();
        db.add_u64(t, 3, 0, 5).unwrap();
        db.commit(t).unwrap();
        assert_eq!(
            count_recs(&db, |r| matches!(r, LogRecord::Logical { .. })),
            1
        );
        assert_eq!(
            count_recs(&db, |r| matches!(r, LogRecord::Update { .. })),
            0
        );
        assert_eq!(
            count_recs(&db, |r| matches!(r, LogRecord::Commit { .. })),
            0
        );
    }

    #[test]
    fn command_logged_txn_survives_crash() {
        let mut db = WalDb::new(command_cfg());
        let t = db.begin();
        db.write(t, 1, 0, b"keepme").unwrap();
        db.add_u64(t, 2, 0, 41).unwrap();
        db.add_u64(t, 2, 0, 1).unwrap();
        db.commit(t).unwrap();
        // an in-flight deferred loser leaves no trace at all
        let loser = db.begin();
        db.write(loser, 3, 0, b"ghost").unwrap();
        let (mut db2, report) = WalDb::recover(db.crash_image(), command_cfg()).unwrap();
        assert_eq!(report.logical_commits, 1);
        assert_eq!(report.reexecuted_ops, 3);
        assert!(report.loser_txns.is_empty(), "deferred loser logs nothing");
        let q = db2.begin();
        assert_eq!(db2.read(q, 1, 0, 6).unwrap(), b"keepme");
        assert_eq!(db2.read(q, 2, 0, 8).unwrap(), 42u64.to_le_bytes());
        assert_eq!(db2.read(q, 3, 0, 5).unwrap(), vec![0u8; 5]);
    }

    #[test]
    fn adaptive_policy_decides_per_txn() {
        let cfg = WalConfig {
            logging: LoggingPolicy::Adaptive { threshold_pct: 100 },
            ..tiny()
        };
        let mut db = WalDb::new(cfg.clone());
        // counter bumps: logical record (no before-images, 8-byte deltas)
        // is far smaller than two fragments
        let small = db.begin();
        db.add_u64(small, 1, 0, 1).unwrap();
        db.add_u64(small, 1, 8, 2).unwrap();
        db.commit(small).unwrap();
        assert_eq!(
            count_recs(&db, |r| matches!(r, LogRecord::Logical { .. })),
            1
        );
        // a read-heavy txn with one tiny write: the read-set (8 bytes per
        // page, logical-only overhead) outweighs the fragment, so it spills
        let big = db.begin();
        for p in 2..12 {
            db.read(big, p, 0, 1).unwrap();
        }
        db.write(big, 2, 0, b"x").unwrap();
        db.commit(big).unwrap();
        assert_eq!(
            count_recs(&db, |r| matches!(r, LogRecord::Logical { .. })),
            1,
            "read-heavy txn must spill to fragments"
        );
        assert_eq!(
            count_recs(&db, |r| matches!(r, LogRecord::Update { .. })),
            1
        );
        // both survive recovery
        let (mut db2, _) = WalDb::recover(db.crash_image(), cfg).unwrap();
        let q = db2.begin();
        assert_eq!(db2.read(q, 1, 0, 8).unwrap(), 1u64.to_le_bytes());
        assert_eq!(db2.read(q, 2, 0, 1).unwrap(), b"x");
    }

    #[test]
    fn deferred_abort_and_savepoints_leave_no_log_trace() {
        let mut db = WalDb::new(command_cfg());
        let base = db.begin();
        db.write(base, 1, 0, b"base").unwrap();
        db.commit(base).unwrap();

        let t = db.begin();
        db.write(t, 1, 0, b"AAAA").unwrap();
        let sp = db.savepoint(t).unwrap();
        db.write(t, 1, 0, b"BBBB").unwrap();
        db.write(t, 2, 0, b"CCCC").unwrap();
        db.rollback_to(sp).unwrap();
        assert_eq!(db.read(t, 1, 0, 4).unwrap(), b"AAAA");
        assert_eq!(db.read(t, 2, 0, 4).unwrap(), vec![0u8; 4]);
        db.abort(t).unwrap();
        let q = db.begin();
        assert_eq!(db.read(q, 1, 0, 4).unwrap(), b"base");
        db.commit(q).unwrap();
        assert_eq!(
            count_recs(&db, |r| matches!(
                r,
                LogRecord::Compensation { .. } | LogRecord::Abort { .. }
            )),
            0,
            "deferred rollback/abort must not log"
        );
        // no pins leaked: the pool can still turn over every frame
        let t2 = db.begin();
        for p in 0..8 {
            db.write(t2, p, 0, b"turn").unwrap();
        }
        db.commit(t2).unwrap();
    }

    #[test]
    fn checkpoint_spills_deferred_txns() {
        let mut db = WalDb::new(command_cfg());
        let t = db.begin();
        db.write(t, 1, 0, b"spilled").unwrap();
        db.checkpoint().unwrap();
        // the deferred write became a durable fragment under the WAL rule
        assert_eq!(
            count_recs(&db, |r| matches!(r, LogRecord::Update { .. })),
            1
        );
        db.commit(t).unwrap();
        let (mut db2, _) = WalDb::recover(db.crash_image(), command_cfg()).unwrap();
        let q = db2.begin();
        assert_eq!(db2.read(q, 1, 0, 7).unwrap(), b"spilled");
    }

    #[test]
    fn pool_exhaustion_spills_instead_of_failing() {
        // pool of 4 frames, a deferred txn pinning pages: the cap (pool/2)
        // plus the exhaustion retry must keep writes succeeding
        let mut db = WalDb::new(WalConfig {
            data_pages: 16,
            pool_frames: 4,
            log_streams: 2,
            logging: LoggingPolicy::Command,
            ..WalConfig::default()
        });
        let t = db.begin();
        for p in 0..10 {
            db.write(t, p, 0, b"spill-pressure").unwrap();
        }
        db.commit(t).unwrap();
        let (mut db2, _) = WalDb::recover(
            db.crash_image(),
            WalConfig {
                data_pages: 16,
                pool_frames: 4,
                log_streams: 2,
                logging: LoggingPolicy::Command,
                ..WalConfig::default()
            },
        )
        .unwrap();
        let q = db2.begin();
        for p in 0..10 {
            assert_eq!(db2.read(q, p, 0, 5).unwrap(), b"spill");
        }
    }

    #[test]
    fn adaptive_recovers_same_payloads_as_fragments() {
        // same workload under Fragments and Adaptive: recovered page
        // payloads must agree byte-for-byte
        let run = |logging: LoggingPolicy| -> Vec<Vec<u8>> {
            let cfg = WalConfig {
                data_pages: 16,
                pool_frames: 8,
                log_streams: 3,
                logging,
                ..WalConfig::default()
            };
            let mut db = WalDb::new(cfg.clone());
            for i in 0..20u64 {
                let t = db.begin();
                let p = i % 6;
                db.write(t, p, (i as usize % 4) * 16, format!("w{i:04}").as_bytes())
                    .unwrap();
                db.add_u64(t, 6, 0, i).unwrap();
                if i % 5 == 3 {
                    db.abort(t).unwrap();
                } else {
                    db.commit(t).unwrap();
                }
            }
            let loser = db.begin();
            db.write(loser, 7, 0, b"in-flight").unwrap();
            let (mut db2, _) = WalDb::recover(db.crash_image(), cfg).unwrap();
            let q = db2.begin();
            (0..8).map(|p| db2.read(q, p, 0, 64).unwrap()).collect()
        };
        let physical = run(LoggingPolicy::Fragments);
        let adaptive = run(LoggingPolicy::Adaptive { threshold_pct: 100 });
        let command = run(LoggingPolicy::Command);
        assert_eq!(physical, adaptive, "adaptive != fragments after recovery");
        assert_eq!(physical, command, "command != fragments after recovery");
    }

    #[test]
    fn stats_count_outcomes() {
        let mut db = WalDb::new(tiny());
        let a = db.begin();
        db.write(a, 0, 0, b"x").unwrap();
        db.commit(a).unwrap();
        let b = db.begin();
        db.write(b, 1, 0, b"y").unwrap();
        db.abort(b).unwrap();
        assert_eq!(db.committed(), 1);
        assert_eq!(db.aborted(), 1);
        assert!(db.active_txns().is_empty());
    }
}
