//! A thread-safe front end for the parallel-logging engine.
//!
//! The paper's query processors run concurrently; [`SharedWal`] lets real
//! threads play that role against one [`WalDb`]. The engine itself is
//! guarded by a mutex, but the lock is taken **per operation**, so
//! transactions from different threads genuinely interleave and contend
//! for page locks exactly as the back-end controller's scheduler would
//! see them. [`SharedWal::run_txn`] packages the standard application
//! loop: begin, run the body, commit — aborting and retrying (with
//! seeded exponential backoff, see [`crate::backoff`]) whenever the body
//! hits a page-lock conflict. For a genuinely multi-threaded pipeline
//! with fine-grained locks, see the `rmdb-exec` crate.

use crate::backoff::Backoff;
use crate::db::{CrashImage, TxnId, WalConfig, WalDb, WalError};
use parking_lot::Mutex;
use rmdb_obs::{EventKind, Registry};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// How many times [`SharedWal::run_txn`] retries a conflicted transaction
/// before giving up.
pub const MAX_RETRIES: usize = 1000;

/// Retry/abort counters accumulated across every [`SharedWal::run_txn`]
/// call on a database (all clones share one set).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Transaction bodies started (first attempts + retries).
    pub attempts: u64,
    /// Retries forced by a page-lock conflict.
    pub conflict_retries: u64,
    /// Aborts issued on behalf of retrying or failing bodies.
    pub aborts: u64,
    /// Transactions that exhausted [`MAX_RETRIES`] and gave up.
    pub starved: u64,
}

#[derive(Default)]
struct Counters {
    attempts: AtomicU64,
    conflict_retries: AtomicU64,
    aborts: AtomicU64,
    starved: AtomicU64,
}

/// A cloneable, thread-safe handle to a [`WalDb`].
#[derive(Clone)]
pub struct SharedWal {
    inner: Arc<Mutex<WalDb>>,
    counters: Arc<Counters>,
    obs: Registry,
}

/// Per-transaction view handed to [`SharedWal::run_txn`] bodies.
pub struct TxnCtx<'a> {
    shared: &'a SharedWal,
    /// The transaction id (also usable with the raw engine).
    pub id: TxnId,
    /// Query-processor number fragments are attributed to.
    pub qp: usize,
}

impl SharedWal {
    /// Wrap a fresh engine.
    pub fn new(cfg: WalConfig) -> Self {
        SharedWal::from_db(WalDb::new(cfg))
    }

    /// Wrap an existing engine (e.g. one produced by recovery).
    pub fn from_db(db: WalDb) -> Self {
        SharedWal {
            inner: Arc::new(Mutex::new(db)),
            counters: Arc::new(Counters::default()),
            obs: Registry::new(),
        }
    }

    /// The observability registry all clones of this handle share:
    /// `txn.commit_us` latency, `txn.commits` / `txn.conflict_retries` /
    /// `txn.starved` counters, and retry/abort events with their backoff
    /// delays as payloads.
    pub fn obs(&self) -> &Registry {
        &self.obs
    }

    /// Retry/abort counters across all clones of this handle.
    pub fn retry_stats(&self) -> RetryStats {
        RetryStats {
            attempts: self.counters.attempts.load(Ordering::Relaxed),
            conflict_retries: self.counters.conflict_retries.load(Ordering::Relaxed),
            aborts: self.counters.aborts.load(Ordering::Relaxed),
            starved: self.counters.starved.load(Ordering::Relaxed),
        }
    }

    /// Run `f` with exclusive access to the engine.
    pub fn with<R>(&self, f: impl FnOnce(&mut WalDb) -> R) -> R {
        f(&mut self.inner.lock())
    }

    /// Capture the durable state at this instant — the crash can land at
    /// any interleaving point between operations of live transactions.
    pub fn crash_image(&self) -> CrashImage {
        self.inner.lock().crash_image()
    }

    /// Run a transaction body with automatic retry on page-lock conflict.
    ///
    /// The body may return `Err(WalError::LockConflict { .. })` (usually
    /// by propagating it from a read/write); the transaction is then
    /// aborted, the thread backs off (exponentially, with jitter seeded
    /// from the engine seed and `qp` so schedules are reproducible per
    /// thread), and the body runs again from scratch inside a fresh
    /// transaction. Any other error aborts and propagates.
    pub fn run_txn<R>(
        &self,
        qp: usize,
        body: impl Fn(&mut TxnCtx<'_>) -> Result<R, WalError>,
    ) -> Result<R, WalError> {
        let seed = self.inner.lock().config().seed;
        // cap at 1 ms so even a MAX_RETRIES starvation run stays snappy
        let mut backoff = Backoff::with_bounds(
            seed ^ (qp as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            10,
            1_000,
        );
        let t_start = Instant::now();
        for _ in 0..MAX_RETRIES {
            self.counters.attempts.fetch_add(1, Ordering::Relaxed);
            let id = self.inner.lock().begin();
            let mut ctx = TxnCtx {
                shared: self,
                id,
                qp,
            };
            match body(&mut ctx) {
                Ok(value) => {
                    self.inner.lock().commit(id)?;
                    let us = t_start.elapsed().as_micros() as u64;
                    self.obs.counter("txn.commits").inc();
                    self.obs.histogram("txn.commit_us").record(us);
                    self.obs.emit(EventKind::TxnCommit, id, qp as u64, 0, us);
                    return Ok(value);
                }
                Err(WalError::LockConflict { page, .. }) => {
                    self.counters.aborts.fetch_add(1, Ordering::Relaxed);
                    self.counters
                        .conflict_retries
                        .fetch_add(1, Ordering::Relaxed);
                    self.inner.lock().abort(id)?;
                    let delay = backoff.next_delay();
                    self.obs.counter("txn.conflict_retries").inc();
                    self.obs.emit(
                        EventKind::TxnConflictRetry,
                        id,
                        qp as u64,
                        page.0,
                        delay.as_micros() as u64,
                    );
                    if delay.is_zero() {
                        std::thread::yield_now();
                    } else {
                        std::thread::sleep(delay);
                    }
                }
                Err(other) => {
                    self.counters.aborts.fetch_add(1, Ordering::Relaxed);
                    self.inner.lock().abort(id)?;
                    self.obs.emit(
                        EventKind::TxnAbort,
                        id,
                        qp as u64,
                        0,
                        backoff.attempts() as u64,
                    );
                    return Err(other);
                }
            }
        }
        self.counters.starved.fetch_add(1, Ordering::Relaxed);
        self.obs.counter("txn.starved").inc();
        self.obs.emit(
            EventKind::TxnStarved,
            0,
            qp as u64,
            0,
            backoff.attempts() as u64,
        );
        Err(WalError::Storage(rmdb_storage::StorageError::Protocol(
            "transaction starved: retry limit exceeded",
        )))
    }
}

impl TxnCtx<'_> {
    /// Read bytes under this transaction.
    pub fn read(&mut self, page: u64, offset: usize, len: usize) -> Result<Vec<u8>, WalError> {
        self.shared.inner.lock().read(self.id, page, offset, len)
    }

    /// Write bytes under this transaction (fragments attributed to this
    /// context's query processor).
    pub fn write(&mut self, page: u64, offset: usize, data: &[u8]) -> Result<(), WalError> {
        self.shared
            .inner
            .lock()
            .write_via(self.qp, self.id, page, offset, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::SelectionPolicy;

    fn cfg() -> WalConfig {
        WalConfig {
            data_pages: 16,
            pool_frames: 4,
            log_streams: 3,
            policy: SelectionPolicy::QpMod,
            log_frames: 1 << 14,
            ..WalConfig::default()
        }
    }

    fn read_u64(db: &SharedWal, page: u64, offset: usize) -> u64 {
        db.run_txn(0, |t| {
            let b = t.read(page, offset, 8)?;
            Ok(u64::from_le_bytes(b.try_into().unwrap()))
        })
        .unwrap()
    }

    #[test]
    fn concurrent_increments_serialize() {
        let db = SharedWal::new(cfg());
        const THREADS: usize = 8;
        const INCRS: u64 = 50;
        crossbeam::thread::scope(|s| {
            for qp in 0..THREADS {
                let db = db.clone();
                s.spawn(move |_| {
                    for _ in 0..INCRS {
                        db.run_txn(qp, |t| {
                            let b = t.read(0, 0, 8)?;
                            let v = u64::from_le_bytes(b.try_into().unwrap());
                            t.write(0, 0, &(v + 1).to_le_bytes())
                        })
                        .unwrap();
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(read_u64(&db, 0, 0), THREADS as u64 * INCRS);
    }

    #[test]
    fn concurrent_transfers_conserve_money() {
        let db = SharedWal::new(cfg());
        const ACCOUNTS: u64 = 8;
        db.run_txn(0, |t| {
            for a in 0..ACCOUNTS {
                t.write(a, 0, &100u64.to_le_bytes())?;
            }
            Ok(())
        })
        .unwrap();

        crossbeam::thread::scope(|s| {
            for qp in 0..4usize {
                let db = db.clone();
                s.spawn(move |_| {
                    for i in 0..60u64 {
                        let from = (qp as u64 + i) % ACCOUNTS;
                        let to = (qp as u64 + i * 3 + 1) % ACCOUNTS;
                        if from == to {
                            continue;
                        }
                        db.run_txn(qp, |t| {
                            let f = u64::from_le_bytes(t.read(from, 0, 8)?.try_into().unwrap());
                            if f < 5 {
                                return Ok(()); // declined
                            }
                            let g = u64::from_le_bytes(t.read(to, 0, 8)?.try_into().unwrap());
                            t.write(from, 0, &(f - 5).to_le_bytes())?;
                            t.write(to, 0, &(g + 5).to_le_bytes())
                        })
                        .unwrap();
                    }
                });
            }
        })
        .unwrap();

        let total: u64 = (0..ACCOUNTS).map(|a| read_u64(&db, a, 0)).sum();
        assert_eq!(total, ACCOUNTS * 100, "money conserved under concurrency");
    }

    #[test]
    fn crash_image_under_concurrency_recovers_consistently() {
        let db = SharedWal::new(cfg());
        db.run_txn(0, |t| {
            for a in 0..8u64 {
                t.write(a, 0, &100u64.to_le_bytes())?;
            }
            Ok(())
        })
        .unwrap();

        // threads transfer while the main thread grabs crash images
        let images: Vec<CrashImage> = crossbeam::thread::scope(|s| {
            for qp in 0..3usize {
                let db = db.clone();
                s.spawn(move |_| {
                    for i in 0..40u64 {
                        let from = (qp as u64 + i) % 8;
                        let to = (qp as u64 * 3 + i + 1) % 8;
                        if from == to {
                            continue;
                        }
                        let _ = db.run_txn(qp, |t| {
                            let f = u64::from_le_bytes(t.read(from, 0, 8)?.try_into().unwrap());
                            if f < 1 {
                                return Ok(());
                            }
                            let g = u64::from_le_bytes(t.read(to, 0, 8)?.try_into().unwrap());
                            t.write(from, 0, &(f - 1).to_le_bytes())?;
                            t.write(to, 0, &(g + 1).to_le_bytes())
                        });
                    }
                });
            }
            (0..5).map(|_| db.crash_image()).collect()
        })
        .unwrap();

        for (i, image) in images.into_iter().enumerate() {
            let (recovered, _) = WalDb::recover(image, cfg()).unwrap();
            let shared = SharedWal::from_db(recovered);
            let total: u64 = (0..8u64).map(|a| read_u64(&shared, a, 0)).sum();
            assert_eq!(total, 800, "image {i}: conservation after recovery");
        }
    }

    #[test]
    fn fragments_attributed_to_distinct_qps_spread_streams() {
        let db = SharedWal::new(cfg()); // QpMod policy, 3 streams
        crossbeam::thread::scope(|s| {
            for qp in 0..6usize {
                let db = db.clone();
                s.spawn(move |_| {
                    db.run_txn(qp, |t| t.write(qp as u64, 0, b"spread"))
                        .unwrap();
                });
            }
        })
        .unwrap();
        let per_stream = db.with(|db| db.log().fragments_per_stream().to_vec());
        assert!(
            per_stream.iter().all(|&n| n > 0),
            "QpMod over 6 QPs must hit all 3 streams: {per_stream:?}"
        );
    }

    #[test]
    fn starvation_reports_instead_of_hanging() {
        // a body that always conflicts with itself cannot happen through
        // the public API; simulate the retry exhaustion path by holding a
        // lock from a never-finished raw transaction
        let db = SharedWal::new(cfg());
        let holder = db.with(|db| {
            let t = db.begin();
            db.write(t, 0, 0, b"held").unwrap();
            t
        });
        let result = db.run_txn(1, |t| t.write(0, 0, b"blocked"));
        assert!(result.is_err(), "must not hang forever");
        let stats = db.retry_stats();
        assert_eq!(stats.starved, 1);
        assert_eq!(stats.conflict_retries, MAX_RETRIES as u64);
        db.with(|db| db.abort(holder)).unwrap();
        // and now it goes through
        db.run_txn(1, |t| t.write(0, 0, b"granted")).unwrap();
    }

    #[test]
    fn retry_stats_count_conflicts_across_threads() {
        let db = SharedWal::new(cfg());
        crossbeam::thread::scope(|s| {
            for qp in 0..4usize {
                let db = db.clone();
                s.spawn(move |_| {
                    for _ in 0..25 {
                        db.run_txn(qp, |t| {
                            let b = t.read(0, 0, 8)?;
                            let v = u64::from_le_bytes(b.try_into().unwrap());
                            t.write(0, 0, &(v + 1).to_le_bytes())
                        })
                        .unwrap();
                    }
                });
            }
        })
        .unwrap();
        let stats = db.retry_stats();
        assert_eq!(stats.attempts, 100 + stats.conflict_retries);
        assert_eq!(stats.aborts, stats.conflict_retries);
        assert_eq!(stats.starved, 0);
    }
}
