//! Log-processor selection policies (paper §3.1, evaluated in Table 3).
//!
//! When a query processor produces a log fragment it must pick one of the
//! N log processors. The paper studies four policies: cyclic, random,
//! `QpNo mod TotLp`, and `TranNo mod TotLp` — finding the first three
//! comparable and the transaction-number policy a loser (it congests one
//! log processor whenever few transactions run concurrently).

use serde::{Deserialize, Serialize};

/// How a query processor picks a log processor for each fragment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SelectionPolicy {
    /// Each fragment goes to the next stream in round-robin order
    /// (a single shared cycle, the paper's "cyclic").
    Cyclic,
    /// Uniformly random stream per fragment.
    Random,
    /// Stream = query-processor number mod N: a QP always uses one stream.
    QpMod,
    /// Stream = transaction number mod N: a transaction always uses one
    /// stream.
    TxnMod,
}

impl SelectionPolicy {
    /// All policies, in the order Table 3 reports them.
    pub const ALL: [SelectionPolicy; 4] = [
        SelectionPolicy::Cyclic,
        SelectionPolicy::Random,
        SelectionPolicy::QpMod,
        SelectionPolicy::TxnMod,
    ];

    /// Table-3 column label.
    pub fn label(&self) -> &'static str {
        match self {
            SelectionPolicy::Cyclic => "cyclic",
            SelectionPolicy::Random => "random",
            SelectionPolicy::QpMod => "QpNo mod TotLp",
            SelectionPolicy::TxnMod => "TranNo mod TotLp",
        }
    }
}

/// Stateful selector: owns the round-robin cursor, the random stream,
/// and the failover dead-stream mask.
///
/// Failover routes *around* quarantined streams rather than renumbering
/// them: the raw policy choice is computed over all N streams (so the
/// mod-based policies stay stable for survivors), then walked cyclically
/// forward to the next live stream. With no dead streams the behaviour
/// is bit-identical to the plain policies.
#[derive(Debug, Clone)]
pub struct Selector {
    policy: SelectionPolicy,
    streams: usize,
    cursor: usize,
    rng_state: u64,
    dead: Vec<bool>,
}

impl Selector {
    /// A selector over `streams` log processors.
    pub fn new(policy: SelectionPolicy, streams: usize, seed: u64) -> Self {
        assert!(streams > 0, "need at least one log processor");
        Selector {
            policy,
            streams,
            cursor: 0,
            // xorshift state must be nonzero
            rng_state: seed | 1,
            dead: vec![false; streams],
        }
    }

    /// Number of streams being selected over.
    pub fn streams(&self) -> usize {
        self.streams
    }

    /// Quarantine stream `idx`: `pick` will never return it again.
    pub fn mark_dead(&mut self, idx: usize) {
        if idx < self.streams {
            self.dead[idx] = true;
        }
    }

    /// Whether stream `idx` is quarantined.
    pub fn is_dead(&self, idx: usize) -> bool {
        idx < self.streams && self.dead[idx]
    }

    /// Streams still accepting fragments.
    pub fn live_count(&self) -> usize {
        self.dead.iter().filter(|&&d| !d).count()
    }

    /// The configured policy.
    pub fn policy(&self) -> SelectionPolicy {
        self.policy
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64* — tiny, deterministic, plenty for load spreading
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Pick the stream for a fragment produced by query processor `qp` on
    /// behalf of transaction `txn`. Quarantined streams are skipped by
    /// walking cyclically forward from the raw policy choice; if every
    /// stream is dead the raw choice is returned (the caller's degraded
    /// gate is responsible for refusing work at that point).
    pub fn pick(&mut self, qp: usize, txn: u64) -> usize {
        let raw = match self.policy {
            SelectionPolicy::Cyclic => {
                let s = self.cursor;
                self.cursor = (self.cursor + 1) % self.streams;
                s
            }
            SelectionPolicy::Random => (self.next_rand() % self.streams as u64) as usize,
            SelectionPolicy::QpMod => qp % self.streams,
            SelectionPolicy::TxnMod => (txn % self.streams as u64) as usize,
        };
        if !self.dead[raw] {
            return raw;
        }
        for step in 1..self.streams {
            let s = (raw + step) % self.streams;
            if !self.dead[s] {
                return s;
            }
        }
        raw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cyclic_visits_all_streams_evenly() {
        let mut s = Selector::new(SelectionPolicy::Cyclic, 3, 0);
        let picks: Vec<usize> = (0..9).map(|i| s.pick(i, 100)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn qp_mod_is_stable_per_qp() {
        let mut s = Selector::new(SelectionPolicy::QpMod, 4, 0);
        for qp in 0..16 {
            assert_eq!(s.pick(qp, 1), qp % 4);
            assert_eq!(s.pick(qp, 2), qp % 4, "txn must not matter");
        }
    }

    #[test]
    fn txn_mod_is_stable_per_txn() {
        let mut s = Selector::new(SelectionPolicy::TxnMod, 5, 0);
        for txn in 0..20u64 {
            assert_eq!(s.pick(0, txn), (txn % 5) as usize);
            assert_eq!(s.pick(7, txn), (txn % 5) as usize, "qp must not matter");
        }
    }

    #[test]
    fn txn_mod_congests_single_stream_with_one_txn() {
        // The pathology Table 3 demonstrates: one concurrent transaction
        // keeps all but one log processor idle.
        let mut s = Selector::new(SelectionPolicy::TxnMod, 5, 0);
        let picks: Vec<usize> = (0..100).map(|qp| s.pick(qp, 42)).collect();
        assert!(picks.iter().all(|&p| p == 2));
    }

    #[test]
    fn random_is_in_range_and_spread() {
        let mut s = Selector::new(SelectionPolicy::Random, 4, 12345);
        let mut counts = [0u32; 4];
        for i in 0..4000 {
            let p = s.pick(i, i as u64);
            counts[p] += 1;
        }
        for &c in &counts {
            assert!(
                (700..1300).contains(&c),
                "skewed random selection: {counts:?}"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = Selector::new(SelectionPolicy::Random, 7, 99);
        let mut b = Selector::new(SelectionPolicy::Random, 7, 99);
        for i in 0..100 {
            assert_eq!(a.pick(i, 0), b.pick(i, 0));
        }
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_streams_rejected() {
        Selector::new(SelectionPolicy::Cyclic, 0, 0);
    }

    #[test]
    fn dead_streams_are_never_picked() {
        for policy in SelectionPolicy::ALL {
            let mut s = Selector::new(policy, 4, 7);
            s.mark_dead(2);
            assert!(s.is_dead(2));
            assert_eq!(s.live_count(), 3);
            for i in 0..200 {
                let p = s.pick(i, i as u64);
                assert_ne!(p, 2, "{policy:?} routed to a quarantined stream");
                assert!(p < 4);
            }
        }
    }

    #[test]
    fn dead_stream_reroutes_to_next_live_cyclically() {
        // QpMod raw choice is qp % 4; dead stream 1 must land on 2,
        // and with 2 also dead on 3 — the next live stream forward.
        let mut s = Selector::new(SelectionPolicy::QpMod, 4, 0);
        s.mark_dead(1);
        assert_eq!(s.pick(1, 0), 2);
        s.mark_dead(2);
        assert_eq!(s.pick(1, 0), 3);
        assert_eq!(s.pick(2, 0), 3);
        assert_eq!(s.pick(3, 0), 3);
        assert_eq!(s.pick(0, 0), 0, "live raw picks are untouched");
        assert_eq!(s.live_count(), 2);
    }

    #[test]
    fn no_dead_streams_is_bit_identical_to_plain_policy() {
        let mut masked = Selector::new(SelectionPolicy::Random, 5, 31);
        let mut plain = Selector::new(SelectionPolicy::Random, 5, 31);
        for i in 0..500 {
            assert_eq!(masked.pick(i, i as u64), plain.pick(i, i as u64));
        }
    }

    #[test]
    fn all_dead_falls_back_to_raw_pick() {
        let mut s = Selector::new(SelectionPolicy::QpMod, 3, 0);
        for i in 0..3 {
            s.mark_dead(i);
        }
        assert_eq!(s.live_count(), 0);
        assert_eq!(s.pick(5, 0), 2, "raw choice when nothing is live");
    }
}
