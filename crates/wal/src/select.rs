//! Log-processor selection policies (paper §3.1, evaluated in Table 3).
//!
//! When a query processor produces a log fragment it must pick one of the
//! N log processors. The paper studies four policies: cyclic, random,
//! `QpNo mod TotLp`, and `TranNo mod TotLp` — finding the first three
//! comparable and the transaction-number policy a loser (it congests one
//! log processor whenever few transactions run concurrently).

use serde::{Deserialize, Serialize};

/// How a query processor picks a log processor for each fragment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SelectionPolicy {
    /// Each fragment goes to the next stream in round-robin order
    /// (a single shared cycle, the paper's "cyclic").
    Cyclic,
    /// Uniformly random stream per fragment.
    Random,
    /// Stream = query-processor number mod N: a QP always uses one stream.
    QpMod,
    /// Stream = transaction number mod N: a transaction always uses one
    /// stream.
    TxnMod,
}

impl SelectionPolicy {
    /// All policies, in the order Table 3 reports them.
    pub const ALL: [SelectionPolicy; 4] = [
        SelectionPolicy::Cyclic,
        SelectionPolicy::Random,
        SelectionPolicy::QpMod,
        SelectionPolicy::TxnMod,
    ];

    /// Table-3 column label.
    pub fn label(&self) -> &'static str {
        match self {
            SelectionPolicy::Cyclic => "cyclic",
            SelectionPolicy::Random => "random",
            SelectionPolicy::QpMod => "QpNo mod TotLp",
            SelectionPolicy::TxnMod => "TranNo mod TotLp",
        }
    }
}

/// Stateful selector: owns the round-robin cursor, the random stream,
/// and the failover dead-stream mask.
///
/// Failover routes *around* quarantined streams rather than renumbering
/// them: the raw policy choice is computed over all N streams (so the
/// mod-based policies stay stable for survivors), then walked cyclically
/// forward to the next live stream. With no dead streams the behaviour
/// is bit-identical to the plain policies.
#[derive(Debug, Clone)]
pub struct Selector {
    policy: SelectionPolicy,
    streams: usize,
    cursor: usize,
    rng_state: u64,
    dead: Vec<bool>,
}

impl Selector {
    /// A selector over `streams` log processors.
    pub fn new(policy: SelectionPolicy, streams: usize, seed: u64) -> Self {
        assert!(streams > 0, "need at least one log processor");
        Selector {
            policy,
            streams,
            cursor: 0,
            // xorshift state must be nonzero
            rng_state: seed | 1,
            dead: vec![false; streams],
        }
    }

    /// Number of streams being selected over.
    pub fn streams(&self) -> usize {
        self.streams
    }

    /// Quarantine stream `idx`: `pick` will never return it again.
    pub fn mark_dead(&mut self, idx: usize) {
        if idx < self.streams {
            self.dead[idx] = true;
        }
    }

    /// Readmit stream `idx`: `pick` may return it again. The cursor and
    /// rng state are untouched — they advance identically whatever the
    /// mask says — so a kill→rejoin round trip restores the original
    /// routing function exactly.
    pub fn mark_live(&mut self, idx: usize) {
        if idx < self.streams {
            self.dead[idx] = false;
        }
    }

    /// Whether stream `idx` is quarantined.
    pub fn is_dead(&self, idx: usize) -> bool {
        idx < self.streams && self.dead[idx]
    }

    /// Streams still accepting fragments.
    pub fn live_count(&self) -> usize {
        self.dead.iter().filter(|&&d| !d).count()
    }

    /// The configured policy.
    pub fn policy(&self) -> SelectionPolicy {
        self.policy
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64* — tiny, deterministic, plenty for load spreading
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Pick the stream for a fragment produced by query processor `qp` on
    /// behalf of transaction `txn`. Quarantined streams are skipped by
    /// walking cyclically forward from the raw policy choice; if every
    /// stream is dead the raw choice is returned (the caller's degraded
    /// gate is responsible for refusing work at that point).
    pub fn pick(&mut self, qp: usize, txn: u64) -> usize {
        let raw = match self.policy {
            SelectionPolicy::Cyclic => {
                let s = self.cursor;
                self.cursor = (self.cursor + 1) % self.streams;
                s
            }
            SelectionPolicy::Random => (self.next_rand() % self.streams as u64) as usize,
            SelectionPolicy::QpMod => qp % self.streams,
            SelectionPolicy::TxnMod => (txn % self.streams as u64) as usize,
        };
        if !self.dead[raw] {
            return raw;
        }
        for step in 1..self.streams {
            let s = (raw + step) % self.streams;
            if !self.dead[s] {
                return s;
            }
        }
        raw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cyclic_visits_all_streams_evenly() {
        let mut s = Selector::new(SelectionPolicy::Cyclic, 3, 0);
        let picks: Vec<usize> = (0..9).map(|i| s.pick(i, 100)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn qp_mod_is_stable_per_qp() {
        let mut s = Selector::new(SelectionPolicy::QpMod, 4, 0);
        for qp in 0..16 {
            assert_eq!(s.pick(qp, 1), qp % 4);
            assert_eq!(s.pick(qp, 2), qp % 4, "txn must not matter");
        }
    }

    #[test]
    fn txn_mod_is_stable_per_txn() {
        let mut s = Selector::new(SelectionPolicy::TxnMod, 5, 0);
        for txn in 0..20u64 {
            assert_eq!(s.pick(0, txn), (txn % 5) as usize);
            assert_eq!(s.pick(7, txn), (txn % 5) as usize, "qp must not matter");
        }
    }

    #[test]
    fn txn_mod_congests_single_stream_with_one_txn() {
        // The pathology Table 3 demonstrates: one concurrent transaction
        // keeps all but one log processor idle.
        let mut s = Selector::new(SelectionPolicy::TxnMod, 5, 0);
        let picks: Vec<usize> = (0..100).map(|qp| s.pick(qp, 42)).collect();
        assert!(picks.iter().all(|&p| p == 2));
    }

    #[test]
    fn random_is_in_range_and_spread() {
        let mut s = Selector::new(SelectionPolicy::Random, 4, 12345);
        let mut counts = [0u32; 4];
        for i in 0..4000 {
            let p = s.pick(i, i as u64);
            counts[p] += 1;
        }
        for &c in &counts {
            assert!(
                (700..1300).contains(&c),
                "skewed random selection: {counts:?}"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = Selector::new(SelectionPolicy::Random, 7, 99);
        let mut b = Selector::new(SelectionPolicy::Random, 7, 99);
        for i in 0..100 {
            assert_eq!(a.pick(i, 0), b.pick(i, 0));
        }
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_streams_rejected() {
        Selector::new(SelectionPolicy::Cyclic, 0, 0);
    }

    #[test]
    fn dead_streams_are_never_picked() {
        for policy in SelectionPolicy::ALL {
            let mut s = Selector::new(policy, 4, 7);
            s.mark_dead(2);
            assert!(s.is_dead(2));
            assert_eq!(s.live_count(), 3);
            for i in 0..200 {
                let p = s.pick(i, i as u64);
                assert_ne!(p, 2, "{policy:?} routed to a quarantined stream");
                assert!(p < 4);
            }
        }
    }

    #[test]
    fn dead_stream_reroutes_to_next_live_cyclically() {
        // QpMod raw choice is qp % 4; dead stream 1 must land on 2,
        // and with 2 also dead on 3 — the next live stream forward.
        let mut s = Selector::new(SelectionPolicy::QpMod, 4, 0);
        s.mark_dead(1);
        assert_eq!(s.pick(1, 0), 2);
        s.mark_dead(2);
        assert_eq!(s.pick(1, 0), 3);
        assert_eq!(s.pick(2, 0), 3);
        assert_eq!(s.pick(3, 0), 3);
        assert_eq!(s.pick(0, 0), 0, "live raw picks are untouched");
        assert_eq!(s.live_count(), 2);
    }

    #[test]
    fn no_dead_streams_is_bit_identical_to_plain_policy() {
        let mut masked = Selector::new(SelectionPolicy::Random, 5, 31);
        let mut plain = Selector::new(SelectionPolicy::Random, 5, 31);
        for i in 0..500 {
            assert_eq!(masked.pick(i, i as u64), plain.pick(i, i as u64));
        }
    }

    #[test]
    fn all_dead_falls_back_to_raw_pick() {
        let mut s = Selector::new(SelectionPolicy::QpMod, 3, 0);
        for i in 0..3 {
            s.mark_dead(i);
        }
        assert_eq!(s.live_count(), 0);
        assert_eq!(s.pick(5, 0), 2, "raw choice when nothing is live");
    }

    #[test]
    fn mark_live_readmits_a_dead_stream() {
        let mut s = Selector::new(SelectionPolicy::QpMod, 4, 0);
        s.mark_dead(1);
        assert_eq!(s.pick(1, 0), 2);
        s.mark_live(1);
        assert!(!s.is_dead(1));
        assert_eq!(s.live_count(), 4);
        assert_eq!(s.pick(1, 0), 1, "readmitted stream serves again");
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use proptest::prelude::*;

    fn any_policy() -> impl Strategy<Value = SelectionPolicy> {
        prop_oneof![
            Just(SelectionPolicy::Cyclic),
            Just(SelectionPolicy::Random),
            Just(SelectionPolicy::QpMod),
            Just(SelectionPolicy::TxnMod),
        ]
    }

    /// Independent reference model of the raw policies — no dead-mask
    /// machinery at all — for the bit-identity property.
    struct PlainModel {
        policy: SelectionPolicy,
        streams: usize,
        cursor: usize,
        rng_state: u64,
    }

    impl PlainModel {
        fn new(policy: SelectionPolicy, streams: usize, seed: u64) -> Self {
            PlainModel {
                policy,
                streams,
                cursor: 0,
                rng_state: seed | 1,
            }
        }

        fn pick(&mut self, qp: usize, txn: u64) -> usize {
            match self.policy {
                SelectionPolicy::Cyclic => {
                    let s = self.cursor;
                    self.cursor = (self.cursor + 1) % self.streams;
                    s
                }
                SelectionPolicy::Random => {
                    let mut x = self.rng_state;
                    x ^= x >> 12;
                    x ^= x << 25;
                    x ^= x >> 27;
                    self.rng_state = x;
                    (x.wrapping_mul(0x2545_F491_4F6C_DD1D) % self.streams as u64) as usize
                }
                SelectionPolicy::QpMod => qp % self.streams,
                SelectionPolicy::TxnMod => (txn % self.streams as u64) as usize,
            }
        }
    }

    proptest! {
        /// With no stream dead, the masked selector is bit-identical to a
        /// plain implementation of the raw policy.
        #[test]
        fn empty_mask_is_bit_identical_to_plain_policy(
            policy in any_policy(),
            seed in any::<u64>(),
            streams in 1usize..8,
            picks in proptest::collection::vec((0usize..16, 0u64..64), 1..200),
        ) {
            let mut masked = Selector::new(policy, streams, seed);
            let mut plain = PlainModel::new(policy, streams, seed);
            for (qp, txn) in picks {
                prop_assert_eq!(masked.pick(qp, txn), plain.pick(qp, txn));
            }
        }

        /// Under an arbitrary dead-mask with at least one live stream, the
        /// selector only ever picks live streams, and they are in range.
        #[test]
        fn arbitrary_masks_only_pick_live_streams(
            policy in any_policy(),
            seed in any::<u64>(),
            streams in 2usize..8,
            dead_bits in any::<u8>(),
            picks in proptest::collection::vec((0usize..16, 0u64..64), 1..200),
        ) {
            let keep_live = (dead_bits >> 4) as usize % streams;
            let mut s = Selector::new(policy, streams, seed);
            for i in 0..streams {
                if i != keep_live && dead_bits >> i & 1 == 1 {
                    s.mark_dead(i);
                }
            }
            prop_assert!(s.live_count() >= 1);
            for (qp, txn) in picks {
                let p = s.pick(qp, txn);
                prop_assert!(p < streams, "pick out of range: {}", p);
                prop_assert!(!s.is_dead(p), "picked quarantined stream {}", p);
            }
        }

        /// A kill→rejoin round trip restores the original routing function:
        /// picks after mark_live are identical to a selector that never saw
        /// the failure, because cursor and rng advance identically under
        /// any mask.
        #[test]
        fn kill_rejoin_restores_original_routing(
            policy in any_policy(),
            seed in any::<u64>(),
            streams in 2usize..8,
            victim_pick in any::<u8>(),
            pre in 0usize..50,
            outage in 1usize..50,
            post in 1usize..100,
        ) {
            let victim = victim_pick as usize % streams;
            let mut churned = Selector::new(policy, streams, seed);
            let mut steady = Selector::new(policy, streams, seed);
            for i in 0..pre {
                prop_assert_eq!(churned.pick(i, i as u64), steady.pick(i, i as u64));
            }
            churned.mark_dead(victim);
            for i in pre..pre + outage {
                let p = churned.pick(i, i as u64);
                steady.pick(i, i as u64); // advances identically
                prop_assert_ne!(p, victim, "routed to the dead stream");
                prop_assert!(p < streams);
            }
            churned.mark_live(victim);
            for i in 0..post {
                prop_assert_eq!(
                    churned.pick(i, i as u64),
                    steady.pick(i, i as u64),
                    "routing function not restored after rejoin"
                );
            }
        }
    }
}
