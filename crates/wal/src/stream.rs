//! One log stream: a log processor's private log disk.
//!
//! Records are appended as a byte stream framed into 4 KB checksummed log
//! pages (records may span pages — physical fragments always do). Exactly
//! like the paper's log processor, a **full** log page is written to the
//! log disk immediately, while the current partial page stays in the log
//! processor's memory until a [`LogStream::force`] — so a crash loses
//! precisely the un-forced tail.
//!
//! Two subtleties make reopen after a crash sound:
//!
//! * a record spanning pages can be *cut* by the crash (its head pages
//!   durable, its tail lost). [`LogStream::open`] locates the end of the
//!   last complete record and rewrites the page containing it so the cut
//!   bytes are physically dropped — otherwise later appends would splice
//!   onto the dead prefix and desynchronize decoding;
//! * pages beyond the reopen frontier may hold *stale* content from before
//!   an earlier crash. Every page carries the stream's **epoch**
//!   (incremented on each reopen); a scan stops at the first page whose
//!   epoch decreases, which is exactly the stale frontier.
//!
//! Frame 0 of the log disk is a durable header holding the *truncation
//! point* (the first log page recovery must scan) and the current epoch.

use crate::record::LogRecord;
use rmdb_storage::fault::FaultHandle;
use rmdb_storage::{write_page_verified, Disk, MemDisk, Page, PageId, StorageError, PAYLOAD_SIZE};

/// Bounded retry budget for riding through transient device faults.
pub const IO_RETRIES: u32 = 4;

/// Per-page header inside the payload: `used: u32` + `epoch: u64`.
const PAGE_HDR: usize = 12;
/// Usable record bytes per log page.
pub const USABLE: usize = PAYLOAD_SIZE - PAGE_HDR;

/// Reserved page id marking the header frame.
const HEADER_ID: PageId = PageId(u64::MAX);

/// Salvage accounting from a [`LogStream::scan_with_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Corrupt (torn) log pages quarantined; the scan stops at the first.
    pub corrupt_pages: u64,
    /// Transient read faults ridden through by bounded retry.
    pub retried_reads: u64,
}

/// One decoded record plus the log-disk frame holding its first byte.
///
/// The frame is what lets a checkpoint-bounded restart engine turn "skip
/// everything before this record" into a durable [`LogStream::truncate_to`]
/// of the stream's scan prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexedRecord {
    /// The decoded record.
    pub rec: LogRecord,
    /// Log-disk frame containing the record's first byte.
    pub frame: u64,
    /// Whether the record's first byte is the first data byte of `frame`,
    /// i.e. a scan starting at `frame` decodes from this record. Restart
    /// uses this to pick a record-aligned truncation frame from the scan
    /// it already did, instead of re-reading the log to find one.
    pub frame_start: bool,
}

/// Bounded read retry for log frames: rides transient I/O faults and
/// one-off bit flips, counting retries; persistent errors surface typed.
fn read_retry(disk: &Disk, addr: u64, retried: &mut u64) -> Result<Page, StorageError> {
    let mut last = StorageError::Io { addr };
    for attempt in 0..IO_RETRIES {
        match disk.read_page(addr) {
            Err(e @ (StorageError::Io { .. } | StorageError::Corrupt { .. }))
                if attempt + 1 < IO_RETRIES =>
            {
                *retried += 1;
                last = e;
            }
            other => return other,
        }
    }
    Err(last)
}

/// A single sequential log on its own disk.
pub struct LogStream {
    disk: Disk,
    /// Next frame to write (header is frame 0; log pages start at 1).
    next_page: u64,
    /// Bytes appended but not yet on disk (current partial log page).
    buf: Vec<u8>,
    /// First log page recovery must scan (durable, in the header).
    start_page: u64,
    /// Reopen generation; stamped into every page written.
    epoch: u64,
    /// Total bytes ever appended (volatile position).
    appended: u64,
    /// Total bytes durably framed into written pages.
    durable: u64,
    /// Log pages written.
    pages_written: u64,
    /// Forces issued (commit/WAL-rule flushes).
    forces: u64,
}

impl LogStream {
    /// Create a fresh stream on an empty in-memory disk of `frames` frames.
    pub fn create(frames: u64) -> Self {
        LogStream::create_on(MemDisk::new(frames).into())
            .expect("fresh in-memory log disk has room for a header")
    }

    /// Create a fresh stream on an already-provisioned empty device — the
    /// backend-generic entry point (see [`rmdb_storage::BackendKind`]).
    pub fn create_on(disk: Disk) -> Result<Self, StorageError> {
        let mut s = LogStream {
            disk,
            next_page: 1,
            buf: Vec::new(),
            start_page: 1,
            epoch: 1,
            appended: 0,
            durable: 0,
            pages_written: 0,
            forces: 0,
        };
        s.write_header()?;
        Ok(s)
    }

    /// Re-open a stream from a (possibly crash-cut) log disk.
    ///
    /// Finds the valid prefix (see module docs), drops any record cut by
    /// the crash, rewrites the cut page, and bumps the epoch so stale
    /// pages beyond the frontier can never be mistaken for live ones.
    pub fn open(disk: impl Into<Disk>) -> Result<Self, StorageError> {
        let disk = disk.into();
        let (start_page, old_epoch) = match read_retry(&disk, 0, &mut 0) {
            Ok(h) if h.id == HEADER_ID => (
                u64::from_le_bytes(h.read_at(0, 8).try_into().unwrap()),
                u64::from_le_bytes(h.read_at(8, 8).try_into().unwrap()),
            ),
            // No (or torn) header: a brand-new disk.
            _ => (1, 0),
        };

        // collect the valid page run: allocated, decodable, id matches,
        // epochs never decrease
        let mut pages: Vec<(u64, Vec<u8>)> = Vec::new(); // (frame, data bytes)
        let mut prev_epoch = 0u64;
        let mut frame = start_page;
        while frame < disk.capacity() {
            // a corrupt (torn) log page is the durability frontier: the
            // decodable prefix before it is salvaged, everything at and
            // beyond it was in flight when the crash hit
            match read_retry(&disk, frame, &mut 0) {
                Ok(p) if p.id == PageId(frame) => {
                    let used = u32::from_le_bytes(p.read_at(0, 4).try_into().unwrap()) as usize;
                    let epoch = u64::from_le_bytes(p.read_at(4, 8).try_into().unwrap());
                    if used > USABLE || epoch < prev_epoch {
                        break; // stale frontier (or garbage)
                    }
                    prev_epoch = epoch;
                    pages.push((frame, p.read_at(PAGE_HDR, used).to_vec()));
                    frame += 1;
                }
                _ => break,
            }
        }

        // find the end of the last complete record
        let bytes: Vec<u8> = pages.iter().flat_map(|(_, b)| b.iter().copied()).collect();
        let mut cursor = bytes.as_slice();
        while LogRecord::decode(&mut cursor).is_some() {}
        let valid = bytes.len() - cursor.len();

        let epoch = old_epoch.max(prev_epoch) + 1;
        let mut s = LogStream {
            disk,
            next_page: start_page,
            buf: Vec::new(),
            start_page,
            epoch,
            appended: valid as u64,
            durable: valid as u64,
            pages_written: 0,
            forces: 0,
        };

        // rewrite/locate the frontier: keep whole pages fully inside the
        // valid prefix; the page containing the cut is rewritten shorter
        let mut remaining = valid;
        for (frame, data) in &pages {
            if remaining >= data.len() {
                remaining -= data.len();
                s.next_page = frame + 1;
                if remaining == 0 {
                    break;
                }
            } else {
                // cut inside this page: rewrite it with only the valid bytes
                s.next_page = *frame;
                s.write_log_page(&data[..remaining])?;
                break;
            }
        }
        s.write_header()?;
        Ok(s)
    }

    /// Attach a fault injector to the underlying log disk.
    pub fn attach_faults(&mut self, handle: FaultHandle) {
        self.disk.attach_faults(handle);
    }

    /// Detach and return the disk's fault injector, if any.
    pub fn detach_faults(&mut self) -> Option<FaultHandle> {
        self.disk.detach_faults()
    }

    /// Surrender the underlying disk (fault injector still attached).
    /// Used by the failover layer's rejoin path, which re-validates the
    /// durable prefix via [`LogStream::open`] on a fresh stream.
    pub fn into_disk(self) -> Disk {
        self.disk
    }

    /// Cheap device-health probe through the fault injector: read the
    /// header frame and write it back. Fails while the device's permanent
    /// failure is tripped; succeeds once a fault-clear (or replacement)
    /// has revived both paths. Consumes one read and one write from the
    /// injector's operation budget.
    pub fn probe_device(&mut self) -> Result<(), StorageError> {
        let h = self.disk.read_page(0)?;
        self.disk.write_page(0, &h)?;
        Ok(())
    }

    fn write_header(&mut self) -> Result<(), StorageError> {
        let mut h = Page::new(HEADER_ID);
        h.write_at(0, &self.start_page.to_le_bytes());
        h.write_at(8, &self.epoch.to_le_bytes());
        write_page_verified(&mut self.disk, 0, &h, IO_RETRIES)
    }

    /// Write one log page, read-back verified: a silently lost or torn log
    /// page write would otherwise lose committed records that `force`
    /// already promised were durable.
    fn write_log_page(&mut self, data: &[u8]) -> Result<(), StorageError> {
        debug_assert!(data.len() <= USABLE);
        let mut p = Page::new(PageId(self.next_page));
        p.write_at(0, &(data.len() as u32).to_le_bytes());
        p.write_at(4, &self.epoch.to_le_bytes());
        p.write_at(PAGE_HDR, data);
        write_page_verified(&mut self.disk, self.next_page, &p, IO_RETRIES)?;
        self.next_page += 1;
        self.pages_written += 1;
        Ok(())
    }

    /// Append a record. Full log pages are written to disk immediately;
    /// the partial tail stays volatile until [`LogStream::force`].
    ///
    /// Returns the record's **end position** in the stream's byte order:
    /// the record is durable once [`LogStream::durable_position`] reaches
    /// this value.
    pub fn append(&mut self, rec: &LogRecord) -> Result<u64, StorageError> {
        rec.encode(&mut self.buf);
        self.appended = self.durable + self.buf.len() as u64;
        while self.buf.len() >= USABLE {
            // copy-then-drain: if the write fails (transient fault budget
            // exhausted, device offline) the bytes stay buffered, keeping
            // the volatile stream position consistent for a later retry
            let page: Vec<u8> = self.buf[..USABLE].to_vec();
            self.write_log_page(&page)?;
            self.buf.drain(..USABLE);
            self.durable += page.len() as u64;
        }
        Ok(self.appended)
    }

    /// Flush the partial log page and force the device, making every
    /// appended record durable (on a file backend this is the fdatasync).
    pub fn force(&mut self) -> Result<(), StorageError> {
        self.forces += 1;
        if !self.buf.is_empty() {
            let page = self.buf.clone();
            self.write_log_page(&page)?;
            self.buf.clear();
            self.durable += page.len() as u64;
        }
        self.disk.force()
    }

    /// Total bytes appended (durable or not).
    pub fn position(&self) -> u64 {
        self.appended
    }

    /// Bytes guaranteed on stable storage.
    pub fn durable_position(&self) -> u64 {
        self.durable
    }

    /// Whether the record ending at `pos` is on stable storage.
    pub fn is_durable(&self, pos: u64) -> bool {
        pos <= self.durable
    }

    /// Log pages written since creation/open.
    pub fn pages_written(&self) -> u64 {
        self.pages_written
    }

    /// Number of [`LogStream::force`] calls.
    pub fn forces(&self) -> u64 {
        self.forces
    }

    /// Read every durable record from the truncation point to the log end.
    ///
    /// A record cut by a crash is ignored, as are torn pages and stale
    /// pages from before the last reopen.
    pub fn scan(&self) -> Vec<LogRecord> {
        self.scan_with_stats().0
    }

    /// [`LogStream::scan`] plus salvage accounting: how many corrupt log
    /// pages were quarantined (the scan stops at the first, salvaging the
    /// decodable prefix) and how many transient read faults were retried.
    pub fn scan_with_stats(&self) -> (Vec<LogRecord>, ScanStats) {
        let (indexed, stats) = self.scan_indexed();
        (indexed.into_iter().map(|r| r.rec).collect(), stats)
    }

    /// Collect the durable byte stream: per-page `(start offset, frame)`
    /// extents, the concatenated record bytes, and salvage stats.
    fn collect_pages(&self) -> (Vec<(usize, u64)>, Vec<u8>, ScanStats) {
        let mut stats = ScanStats::default();
        let mut bytes = Vec::new();
        let mut extents: Vec<(usize, u64)> = Vec::new();
        let mut prev_epoch = 0u64;
        let mut page = self.start_page;
        while page < self.disk.capacity() {
            match read_retry(&self.disk, page, &mut stats.retried_reads) {
                Ok(p) if p.id == PageId(page) => {
                    let used = u32::from_le_bytes(p.read_at(0, 4).try_into().unwrap()) as usize;
                    let epoch = u64::from_le_bytes(p.read_at(4, 8).try_into().unwrap());
                    if used > USABLE || epoch < prev_epoch || epoch > self.epoch {
                        break;
                    }
                    prev_epoch = epoch;
                    extents.push((bytes.len(), page));
                    bytes.extend_from_slice(p.read_at(PAGE_HDR, used));
                    page += 1;
                }
                Err(StorageError::Corrupt { .. }) => {
                    stats.corrupt_pages += 1;
                    break;
                }
                _ => break,
            }
        }
        (extents, bytes, stats)
    }

    /// [`LogStream::scan_with_stats`] with each record tagged by the frame
    /// holding its first byte — the input to checkpoint-bounded restart
    /// analysis (see [`IndexedRecord`]).
    pub fn scan_indexed(&self) -> (Vec<IndexedRecord>, ScanStats) {
        let (extents, bytes, stats) = self.collect_pages();
        let mut records = Vec::new();
        let mut cursor = bytes.as_slice();
        loop {
            let start = bytes.len() - cursor.len();
            let Some(rec) = LogRecord::decode(&mut cursor) else {
                break;
            };
            // extent covering `start`: the last one whose offset is ≤ start
            let i = extents.partition_point(|&(off, _)| off <= start);
            let (ext_off, frame) = extents[i - 1];
            records.push(IndexedRecord {
                rec,
                frame,
                frame_start: ext_off == start,
            });
        }
        (records, stats)
    }

    /// Advance the durable truncation point past everything written so far.
    ///
    /// The caller (checkpoint logic) must have ensured the truncated prefix
    /// is no longer needed: all its updates are on the data disk and no
    /// live transaction may need undo from it.
    pub fn truncate(&mut self) -> Result<(), StorageError> {
        self.force()?;
        self.start_page = self.next_page;
        // bump the epoch so anything beyond the new start is stale
        self.epoch += 1;
        self.write_header()
    }

    /// Advance the durable truncation point to `frame`, keeping everything
    /// from `frame` onwards scannable.
    ///
    /// Used by checkpoint-bounded restart: once recovery establishes that
    /// no record before the bounding checkpoint is needed, the stream's
    /// scan prefix can be dropped durably. Because records may span log
    /// pages, `frame` **must begin a record** — i.e. be the `frame` of an
    /// [`IndexedRecord`] whose `frame_start` is set — or the shortened
    /// scan would decode from mid-record garbage. The caller has this
    /// information from the scan it already did, which is what makes
    /// truncation a pure header write instead of a second pass over the
    /// log (debug builds re-verify alignment). Requests at or before the
    /// current truncation point are no-ops.
    pub fn truncate_to(&mut self, frame: u64) -> Result<(), StorageError> {
        let target = frame.min(self.next_page);
        if target <= self.start_page {
            return Ok(());
        }
        #[cfg(debug_assertions)]
        self.assert_record_aligned(target);
        self.start_page = target;
        self.write_header()
    }

    /// Debug-build guard for [`LogStream::truncate_to`]: re-derives record
    /// boundaries the expensive way and checks `target` begins one.
    #[cfg(debug_assertions)]
    fn assert_record_aligned(&self, target: u64) {
        let (extents, bytes, _) = self.collect_pages();
        let mut starts = std::collections::BTreeSet::new();
        let mut off = 0usize;
        loop {
            starts.insert(off);
            match LogRecord::peek_len(&bytes[off..]) {
                Some(len) => off += len,
                None => break,
            }
        }
        assert!(
            extents
                .iter()
                .any(|(off, f)| *f == target && starts.contains(off)),
            "truncate_to({target}): frame does not begin a record"
        );
    }

    /// Snapshot the log disk (crash image) — same backend as the stream.
    pub fn disk_snapshot(&self) -> Disk {
        self.disk.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmdb_storage::Lsn;

    fn commit(txn: u64) -> LogRecord {
        LogRecord::Commit { txn }
    }

    fn big_update(txn: u64, len: usize) -> LogRecord {
        LogRecord::Update {
            txn,
            page: PageId(1),
            prev_lsn: Lsn(0),
            new_lsn: Lsn(txn),
            offset: 0,
            before: vec![0xAB; len],
            after: vec![0xCD; len],
        }
    }

    #[test]
    fn unforced_tail_is_lost() {
        let mut s = LogStream::create(64);
        s.append(&commit(1)).unwrap();
        s.force().unwrap();
        s.append(&commit(2)).unwrap(); // never forced

        let recovered = LogStream::open(s.disk_snapshot()).unwrap();
        assert_eq!(recovered.scan(), vec![commit(1)]);
    }

    #[test]
    fn force_makes_durable() {
        let mut s = LogStream::create(64);
        let pos = s.append(&commit(1)).unwrap();
        assert!(!s.is_durable(pos));
        s.force().unwrap();
        assert!(s.is_durable(pos));
        assert_eq!(s.scan(), vec![commit(1)]);
    }

    #[test]
    fn full_pages_flush_automatically() {
        let mut s = LogStream::create(64);
        // A record bigger than a log page spans pages; its full pages are
        // durable but the record is not until forced.
        let rec = big_update(1, 3 * USABLE / 2);
        let pos = s.append(&rec).unwrap();
        assert!(s.pages_written() >= 1);
        assert!(!s.is_durable(pos));
        s.force().unwrap();
        assert_eq!(s.scan(), vec![rec]);
    }

    #[test]
    fn record_spanning_pages_cut_by_crash_is_dropped() {
        let mut s = LogStream::create(64);
        s.append(&commit(9)).unwrap();
        s.force().unwrap();
        let rec = big_update(1, 2 * USABLE); // spans ≥2 pages
        s.append(&rec).unwrap(); // full pages flushed, tail not forced
        let recovered = LogStream::open(s.disk_snapshot()).unwrap();
        // only the commit survives; the cut update is ignored
        assert_eq!(recovered.scan(), vec![commit(9)]);
    }

    #[test]
    fn appends_after_cut_record_decode_cleanly() {
        // regression: the cut record's durable prefix must not splice onto
        // records appended after reopen
        let mut s = LogStream::create(64);
        s.append(&commit(9)).unwrap();
        s.force().unwrap();
        s.append(&big_update(1, 3 * USABLE)).unwrap(); // cut by the crash

        let mut s2 = LogStream::open(s.disk_snapshot()).unwrap();
        s2.append(&commit(10)).unwrap();
        s2.force().unwrap();
        assert_eq!(s2.scan(), vec![commit(9), commit(10)]);

        // and the same holds after a second crash
        let s3 = LogStream::open(s2.disk_snapshot()).unwrap();
        assert_eq!(s3.scan(), vec![commit(9), commit(10)]);
    }

    #[test]
    fn stale_pages_beyond_frontier_are_ignored() {
        // write far, crash losing the tail, write a little, crash again:
        // the recovery scan must stop at the new frontier and never read
        // the first incarnation's leftover pages
        let mut s = LogStream::create(64);
        for i in 0..40 {
            s.append(&big_update(i, USABLE / 2)).unwrap();
        }
        s.force().unwrap();
        let long_image = s.disk_snapshot();

        // crash back to a short prefix: reopen from an image cut earlier
        let mut short = LogStream::open(long_image).unwrap();
        // simulate that only the first 3 records were actually wanted:
        // truncate and start a new life
        short.truncate().unwrap();
        short.append(&commit(100)).unwrap();
        short.force().unwrap();
        let reopened = LogStream::open(short.disk_snapshot()).unwrap();
        assert_eq!(reopened.scan(), vec![commit(100)]);
    }

    #[test]
    fn interleaved_crash_append_cycles_converge() {
        // repeated cycles of append → crash (losing tails) must always
        // leave a decodable, strictly-growing record prefix
        let mut s = LogStream::create(256);
        let mut expected = Vec::new();
        for round in 0..10u64 {
            let rec = big_update(round, (round as usize * 531) % (2 * USABLE));
            s.append(&rec).unwrap();
            if round % 3 != 0 {
                s.force().unwrap();
                expected.push(rec);
            }
            // crash + reopen
            s = LogStream::open(s.disk_snapshot()).unwrap();
            assert_eq!(s.scan(), expected, "round {round}");
        }
    }

    #[test]
    fn reopen_appends_after_existing_log() {
        let mut s = LogStream::create(64);
        s.append(&commit(1)).unwrap();
        s.force().unwrap();
        let mut s2 = LogStream::open(s.disk_snapshot()).unwrap();
        s2.append(&commit(2)).unwrap();
        s2.force().unwrap();
        assert_eq!(s2.scan(), vec![commit(1), commit(2)]);
    }

    #[test]
    fn truncate_drops_prefix() {
        let mut s = LogStream::create(64);
        s.append(&commit(1)).unwrap();
        s.truncate().unwrap();
        s.append(&commit(2)).unwrap();
        s.force().unwrap();
        assert_eq!(s.scan(), vec![commit(2)]);
        // truncation survives crash
        let recovered = LogStream::open(s.disk_snapshot()).unwrap();
        assert_eq!(recovered.scan(), vec![commit(2)]);
    }

    #[test]
    fn many_records_round_trip() {
        let mut s = LogStream::create(256);
        let recs: Vec<LogRecord> = (0..500).map(|i| big_update(i, (i % 97) as usize)).collect();
        for r in &recs {
            s.append(r).unwrap();
        }
        s.force().unwrap();
        assert_eq!(s.scan(), recs);
    }

    #[test]
    fn positions_are_monotone_and_track_durability() {
        let mut s = LogStream::create(64);
        let p1 = s.append(&commit(1)).unwrap();
        let p2 = s.append(&commit(2)).unwrap();
        assert!(p2 > p1);
        assert_eq!(s.position(), p2);
        assert_eq!(s.durable_position(), 0);
        s.force().unwrap();
        assert_eq!(s.durable_position(), p2);
    }

    #[test]
    fn log_full_surfaces_error() {
        let mut s = LogStream::create(3); // header + 2 pages
        let r = big_update(1, USABLE);
        let mut failed = false;
        for _ in 0..4 {
            if s.append(&r).is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "filling the log must error, not panic");
    }

    #[test]
    fn force_on_empty_buffer_is_noop() {
        let mut s = LogStream::create(8);
        s.force().unwrap();
        s.force().unwrap();
        assert_eq!(s.pages_written(), 0);
        assert_eq!(s.forces(), 2);
    }
}
