//! Model-based property test of the back-end controller's scheduler:
//! random acquire/release scripts must never lose a waiter, never grant
//! conflicting locks, and never report a deadlock when none exists.

use proptest::prelude::*;
use rmdb_storage::PageId;
use rmdb_wal::scheduler::{Decision, Scheduler};
use rmdb_wal::LockMode;
use std::collections::{HashMap, HashSet};

#[derive(Debug, Clone)]
enum Op {
    /// txn requests a lock (ignored if the txn is already waiting).
    Request {
        txn: u64,
        page: u64,
        exclusive: bool,
    },
    /// txn finishes: release all locks, cancel any wait.
    Finish { txn: u64 },
}

fn op_strategy(txns: u64, pages: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..txns, 0..pages, any::<bool>())
            .prop_map(|(txn, page, exclusive)| Op::Request { txn, page, exclusive }),
        2 => (0..txns).prop_map(|txn| Op::Finish { txn }),
    ]
}

#[derive(Default)]
struct Model {
    /// page → (exclusive?, holders)
    held: HashMap<u64, (bool, HashSet<u64>)>,
    waiting: HashSet<u64>,
}

impl Model {
    fn grant(&mut self, txn: u64, page: u64, exclusive: bool) {
        let entry = self.held.entry(page).or_insert((exclusive, HashSet::new()));
        entry.0 = exclusive || (entry.0 && entry.1.len() <= 1 && entry.1.contains(&txn));
        if exclusive {
            entry.0 = true;
        }
        entry.1.insert(txn);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn scheduler_invariants_hold(
        ops in proptest::collection::vec(op_strategy(6, 4), 1..100),
    ) {
        let mut s = Scheduler::new();
        let mut model = Model::default();

        for op in ops {
            match op {
                Op::Request { txn, page, exclusive } => {
                    if model.waiting.contains(&txn) {
                        continue; // a waiting txn cannot issue requests
                    }
                    let mode = if exclusive { LockMode::Exclusive } else { LockMode::Shared };
                    match s.request(txn, PageId(page), mode) {
                        Decision::Granted => {
                            model.grant(txn, page, exclusive);
                            // granted lock must be visible in the table
                            prop_assert!(s.locks().holders(PageId(page)).contains(&txn));
                        }
                        Decision::Waiting { victims } => {
                            model.waiting.insert(txn);
                            for v in victims {
                                // a victim was waiting; its wait is cancelled
                                // (the caller is expected to abort it — the
                                // model keeps its locks until Finish)
                                prop_assert!(model.waiting.remove(&v), "victim was not waiting");
                                prop_assert!(v != txn, "requester cannot be a Waiting victim");
                            }
                        }
                        Decision::Deadlock { cycle, victims } => {
                            // requester leads the reported cycle, is the
                            // youngest member, and is NOT left waiting
                            prop_assert_eq!(cycle[0], txn);
                            prop_assert!(cycle.iter().all(|&t| t <= txn), "requester not youngest");
                            prop_assert!(!model.waiting.contains(&txn));
                            for v in victims {
                                prop_assert!(model.waiting.remove(&v), "victim was not waiting");
                            }
                        }
                    }
                }
                Op::Finish { txn } => {
                    let granted = s.release_all(txn);
                    model.waiting.remove(&txn);
                    if let Some((_, holders)) = model.held.get_mut(&0) {
                        holders.remove(&txn); // cheap: clear below instead
                    }
                    for (_, (_, holders)) in model.held.iter_mut() {
                        holders.remove(&txn);
                    }
                    model.held.retain(|_, (_, h)| !h.is_empty());
                    for (g_txn, g_page) in granted {
                        // a granted waiter was actually waiting
                        prop_assert!(model.waiting.remove(&g_txn), "granted a non-waiter");
                        // and now holds the lock
                        prop_assert!(s.locks().holders(g_page).contains(&g_txn));
                        model.grant(g_txn, g_page.0, true /* conservative */);
                    }
                }
            }
            // exclusive locks are actually exclusive
            for page in 0..4u64 {
                let holders = s.locks().holders(PageId(page));
                if holders.len() > 1 {
                    // must be a shared lock: every holder could re-request S
                    // (cheap structural proxy: the scheduler's lock table
                    // never reports >1 holder for an X lock)
                    for &h in &holders {
                        prop_assert!(
                            s.locks().held(h, PageId(page)) == Some(LockMode::Shared),
                            "multiple holders but not shared"
                        );
                    }
                }
            }
            // waiting count matches the model
            prop_assert_eq!(s.waiting_txns(), model.waiting.len());
        }

        // drain: finishing every txn releases everything and grants all
        for txn in 0..6u64 {
            let _ = s.release_all(txn);
        }
        for txn in 0..6u64 {
            let _ = s.release_all(txn);
        }
        prop_assert_eq!(s.waiting_txns(), 0);
        prop_assert_eq!(s.locks().locked_pages(), 0);
    }
}
