//! Version selection (paper §3.2.2.1): avoiding page-table indirection with
//! twin blocks.
//!
//! Each logical page owns two physically adjacent disk blocks. A read
//! fetches **both** blocks (the paper's bet: an extra block on the same
//! track is nearly free) and a *version-selection algorithm* picks the
//! current one: the candidate stamped by the most recently **committed**
//! transaction. Updates write the non-current block, stamped with the
//! writing transaction's id; the single-frame append to the durable commit
//! list is the atomic commit point that turns every block the transaction
//! wrote current, all at once.
//!
//! The scheme doubles disk space — the cost the paper holds against it —
//! and as a bonus tolerates a torn write to one block: the checksum rejects
//! the torn copy and selection falls back to the surviving shadow, which is
//! exactly the recovery argument of Reuter's TWIST scheme the paper cites.

use crate::pagetable::{ExclusiveLocks, ShadowError, TxnId, IO_RETRIES};
use rmdb_storage::fault::FaultHandle;
use rmdb_storage::{
    read_page_retry, write_page_verified, Lsn, MemDisk, Page, PageId, PAYLOAD_SIZE,
};
use std::collections::{BTreeMap, HashMap};

/// Configuration for a [`VersionStore`].
#[derive(Debug, Clone)]
pub struct VersionConfig {
    /// Logical pages.
    pub logical_pages: u64,
    /// Frames reserved for the durable commit list (508 commits each).
    pub commit_frames: u64,
}

impl Default for VersionConfig {
    fn default() -> Self {
        VersionConfig {
            logical_pages: 128,
            commit_frames: 8,
        }
    }
}

/// Commit-list ids start here so they never collide with slot pages.
const COMMIT_LIST_ID: u64 = 1 << 62;
/// Committed transactions per commit-list frame.
const COMMITS_PER_FRAME: usize = (PAYLOAD_SIZE - 4) / 8;

/// Crash image of a [`VersionStore`]: one disk holds everything.
#[derive(Debug)]
pub struct VersionImage {
    /// Twin slots followed by the commit-list frames (two physical slots
    /// per logical commit frame, written ping-pong so the atomic commit
    /// point survives a crash-torn append).
    pub disk: MemDisk,
}

/// Recovery findings.
#[derive(Debug, Clone, Default)]
pub struct VersionRecoveryReport {
    /// Committed transactions found in the durable list.
    pub committed: u64,
    /// Highest transaction stamp seen on any slot (fixes the id counter).
    pub max_stamp: u64,
    /// Slots whose frames failed their checksum (torn writes survived by
    /// selecting the twin).
    pub torn_slots: u64,
}

/// Access statistics: the doubled read cost is the headline number.
#[derive(Debug, Clone, Copy, Default)]
pub struct VersionStats {
    /// Slot frames read (two per logical read).
    pub slot_reads: u64,
    /// Slot frames written.
    pub slot_writes: u64,
    /// Commit-list frame writes.
    pub commit_writes: u64,
}

struct VsTxn {
    /// page → (slot frame being written, working copy)
    delta: BTreeMap<u64, (u64, Page)>,
}

/// Twin-block version-selection store.
///
/// ```
/// use rmdb_shadow::{VersionConfig, VersionStore};
///
/// let mut store = VersionStore::new(VersionConfig::default());
/// let t = store.begin();
/// store.write(t, 2, 0, b"twin").unwrap();   // written to the non-current block
/// store.commit(t).unwrap();                 // one commit-list append flips it
/// let t = store.begin();
/// assert_eq!(store.read(t, 2, 0, 4).unwrap(), b"twin");
/// // reads fetched BOTH blocks — the cost the paper holds against it
/// assert!(store.stats().slot_reads >= 2);
/// ```
pub struct VersionStore {
    cfg: VersionConfig,
    disk: MemDisk,
    /// Commit order: txn → sequence number.
    commit_seq: HashMap<TxnId, u64>,
    /// Committed txns in order — the source the commit-list frames are
    /// rebuilt from, so an append never read-modify-writes disk state.
    commit_log: Vec<TxnId>,
    commit_count: u64,
    active: HashMap<TxnId, VsTxn>,
    locks: ExclusiveLocks,
    next_txn: TxnId,
    stats: VersionStats,
}

impl VersionStore {
    fn slot_frames(cfg: &VersionConfig) -> u64 {
        2 * cfg.logical_pages
    }

    /// A fresh store.
    pub fn new(cfg: VersionConfig) -> Self {
        let disk = MemDisk::new(Self::slot_frames(&cfg) + 2 * cfg.commit_frames);
        VersionStore {
            commit_seq: HashMap::new(),
            commit_log: Vec::new(),
            commit_count: 0,
            active: HashMap::new(),
            locks: ExclusiveLocks::default(),
            next_txn: 1,
            stats: VersionStats::default(),
            disk,
            cfg,
        }
    }

    /// Attach one shared fault injector to the disk.
    pub fn attach_faults(&mut self, handle: &FaultHandle) {
        self.disk.attach_faults(handle.clone());
    }

    /// Capture durable state.
    pub fn crash_image(&self) -> VersionImage {
        VersionImage {
            disk: self.disk.snapshot(),
        }
    }

    /// Rebuild from a crash image: reload the commit list, then scan the
    /// twin slots once to restore the transaction-id high-water mark (a
    /// pre-crash *uncommitted* stamp must never alias a future commit).
    pub fn recover(
        image: VersionImage,
        cfg: VersionConfig,
    ) -> Result<(Self, VersionRecoveryReport), ShadowError> {
        let disk = image.disk;
        let mut report = VersionRecoveryReport::default();
        let mut commit_seq = HashMap::new();
        let mut commit_log = Vec::new();
        let mut commit_count = 0u64;
        let cl_base = Self::slot_frames(&cfg);
        for f in 0..cfg.commit_frames {
            // Two physical slots per logical frame; appends alternate
            // between them, so the slot with the larger (valid) count is
            // the newest durable state and the other is at most one commit
            // behind. A count field from a corrupted-but-checksum-valid
            // page is clamped so it can never index past the payload.
            let mut best: Option<(usize, Page)> = None;
            for slot in [cl_base + 2 * f, cl_base + 2 * f + 1] {
                if !disk.is_allocated(slot) {
                    continue;
                }
                let Ok(page) = read_page_retry(&disk, slot, IO_RETRIES) else {
                    continue; // torn append: the other slot survives
                };
                let count = (u32::from_le_bytes(page.read_at(0, 4).try_into().unwrap()) as usize)
                    .min(COMMITS_PER_FRAME);
                if best.as_ref().is_none_or(|(c, _)| count > *c) {
                    best = Some((count, page));
                }
            }
            let Some((count, page)) = best else {
                break; // end of the durable list
            };
            for i in 0..count {
                let txn = u64::from_le_bytes(page.read_at(4 + 8 * i, 8).try_into().unwrap());
                commit_seq.insert(txn, commit_count);
                commit_log.push(txn);
                commit_count += 1;
            }
            if count < COMMITS_PER_FRAME {
                break; // partial frame: nothing durable can follow it
            }
        }
        report.committed = commit_count;

        let mut max_stamp = 0u64;
        for frame in 0..Self::slot_frames(&cfg) {
            if !disk.is_allocated(frame) {
                continue;
            }
            match read_page_retry(&disk, frame, IO_RETRIES) {
                Ok(p) => max_stamp = max_stamp.max(p.lsn.0),
                Err(_) => report.torn_slots += 1,
            }
        }
        report.max_stamp = max_stamp;
        let next_txn = max_stamp.max(commit_seq.keys().copied().max().unwrap_or(0)) + 1;
        Ok((
            VersionStore {
                commit_seq,
                commit_log,
                commit_count,
                active: HashMap::new(),
                locks: ExclusiveLocks::default(),
                next_txn,
                stats: VersionStats::default(),
                disk,
                cfg,
            },
            report,
        ))
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> VersionStats {
        self.stats
    }

    /// Begin a transaction.
    pub fn begin(&mut self) -> TxnId {
        let t = self.next_txn;
        self.next_txn += 1;
        self.active.insert(
            t,
            VsTxn {
                delta: BTreeMap::new(),
            },
        );
        t
    }

    fn check(&self, txn: TxnId, page: u64) -> Result<(), ShadowError> {
        if page >= self.cfg.logical_pages {
            return Err(ShadowError::OutOfBounds { page });
        }
        if !self.active.contains_key(&txn) {
            return Err(ShadowError::UnknownTxn(txn));
        }
        Ok(())
    }

    /// The version-selection algorithm: read both twin blocks and pick the
    /// newest committed one. Returns `(slot_index, page)`; `None` if the
    /// page was never committed.
    fn select_current(&mut self, page: u64) -> Option<(u64, Page)> {
        let mut best: Option<(u64, u64, Page)> = None; // (seq, slot, page)
        for slot in [2 * page, 2 * page + 1] {
            self.stats.slot_reads += 1;
            if !self.disk.is_allocated(slot) {
                continue;
            }
            let candidate = match read_page_retry(&self.disk, slot, IO_RETRIES) {
                Ok(p) if p.id == PageId(page) => p,
                _ => continue, // torn or foreign frame: the twin survives
            };
            let Some(&seq) = self.commit_seq.get(&candidate.lsn.0) else {
                continue; // stamped by an uncommitted transaction
            };
            if best.as_ref().is_none_or(|(s, _, _)| seq > *s) {
                best = Some((seq, slot, candidate));
            }
        }
        best.map(|(_, slot, page)| (slot, page))
    }

    /// Read bytes: own uncommitted version if present, else version-select
    /// from the twin blocks (two physical reads per logical read).
    pub fn read(
        &mut self,
        txn: TxnId,
        page: u64,
        offset: usize,
        len: usize,
    ) -> Result<Vec<u8>, ShadowError> {
        self.check(txn, page)?;
        if let Some((_, p)) = self.active[&txn].delta.get(&page) {
            return Ok(p.read_at(offset, len).to_vec());
        }
        Ok(match self.select_current(page) {
            Some((_, p)) => p.read_at(offset, len).to_vec(),
            None => vec![0; len],
        })
    }

    /// Write bytes under an exclusive page lock; the non-current twin block
    /// is written through immediately, stamped with this transaction's id.
    pub fn write(
        &mut self,
        txn: TxnId,
        page: u64,
        offset: usize,
        data: &[u8],
    ) -> Result<(), ShadowError> {
        self.check(txn, page)?;
        if offset + data.len() > PAYLOAD_SIZE {
            return Err(ShadowError::OutOfBounds { page });
        }
        self.locks.acquire(txn, page)?;
        if !self.active[&txn].delta.contains_key(&page) {
            let (target_slot, base) = match self.select_current(page) {
                Some((current_slot, p)) => {
                    // write the twin of the current block
                    let twin = if current_slot == 2 * page {
                        2 * page + 1
                    } else {
                        2 * page
                    };
                    (twin, p)
                }
                None => (2 * page, Page::new(PageId(page))),
            };
            self.active
                .get_mut(&txn)
                .expect("txn checked")
                .delta
                .insert(page, (target_slot, base));
        }
        let state = self.active.get_mut(&txn).expect("txn checked");
        let (slot, work) = state.delta.get_mut(&page).expect("just materialized");
        work.write_at(offset, data);
        work.id = PageId(page);
        work.lsn = Lsn(txn); // the stamp: valid only once txn commits
        let (slot, copy) = (*slot, work.clone());
        write_page_verified(&mut self.disk, slot, &copy, IO_RETRIES)?;
        self.stats.slot_writes += 1;
        Ok(())
    }

    /// Commit: one atomic append to the durable commit list makes every
    /// block the transaction stamped current simultaneously.
    pub fn commit(&mut self, txn: TxnId) -> Result<(), ShadowError> {
        if self.active.remove(&txn).is_none() {
            return Err(ShadowError::UnknownTxn(txn));
        }
        let frame_idx = self.commit_count / COMMITS_PER_FRAME as u64;
        if frame_idx >= self.cfg.commit_frames {
            return Err(ShadowError::SpaceExhausted);
        }
        let within = (self.commit_count % COMMITS_PER_FRAME as u64) as usize;
        // Rebuild the frame from the in-memory commit log (never from a
        // read-modify-write of disk state) and append into the slot the
        // previous append did NOT use, so a crash mid-write tears only the
        // new copy while the other slot still holds the last commit point.
        let mut page = Page::new(PageId(COMMIT_LIST_ID + frame_idx));
        let frame_start = (frame_idx * COMMITS_PER_FRAME as u64) as usize;
        for (i, &t) in self.commit_log[frame_start..].iter().enumerate() {
            page.write_at(4 + 8 * i, &t.to_le_bytes());
        }
        page.write_at(4 + 8 * within, &txn.to_le_bytes());
        page.write_at(0, &((within + 1) as u32).to_le_bytes());
        let cl_addr = Self::slot_frames(&self.cfg) + 2 * frame_idx + (within as u64 % 2);
        write_page_verified(&mut self.disk, cl_addr, &page, IO_RETRIES)?;
        self.stats.commit_writes += 1;
        self.commit_seq.insert(txn, self.commit_count);
        self.commit_log.push(txn);
        self.commit_count += 1;
        self.locks.release_all(txn);
        Ok(())
    }

    /// Abort: discard the working set and release locks. The stamped twin
    /// blocks are invalid forever (the stamp never commits) and will be
    /// recycled by the next writer.
    pub fn abort(&mut self, txn: TxnId) -> Result<(), ShadowError> {
        if self.active.remove(&txn).is_none() {
            return Err(ShadowError::UnknownTxn(txn));
        }
        self.locks.release_all(txn);
        Ok(())
    }

    /// Direct slot access for fault-injection tests.
    #[doc(hidden)]
    pub fn raw_disk_mut(&mut self) -> &mut MemDisk {
        &mut self.disk
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmdb_storage::FRAME_SIZE;

    fn cfg() -> VersionConfig {
        VersionConfig {
            logical_pages: 16,
            commit_frames: 4,
        }
    }

    fn committed_read(s: &mut VersionStore, page: u64, off: usize, len: usize) -> Vec<u8> {
        let t = s.begin();
        let v = s.read(t, page, off, len).unwrap();
        s.abort(t).unwrap();
        v
    }

    #[test]
    fn commit_makes_version_current() {
        let mut s = VersionStore::new(cfg());
        let t = s.begin();
        s.write(t, 1, 0, b"one").unwrap();
        // before commit, the committed view is still empty
        assert_eq!(committed_read(&mut s, 1, 0, 3), vec![0; 3]);
        s.commit(t).unwrap();
        assert_eq!(committed_read(&mut s, 1, 0, 3), b"one");
    }

    #[test]
    fn twin_blocks_alternate() {
        let mut s = VersionStore::new(cfg());
        for gen in 0..4u32 {
            let t = s.begin();
            s.write(t, 2, 0, &gen.to_le_bytes()).unwrap();
            s.commit(t).unwrap();
        }
        assert_eq!(committed_read(&mut s, 2, 0, 4), 3u32.to_le_bytes());
        // both slots are allocated — the twins really alternate
        let img = s.crash_image();
        assert!(img.disk.is_allocated(4));
        assert!(img.disk.is_allocated(5));
    }

    #[test]
    fn abort_leaves_old_version_current() {
        let mut s = VersionStore::new(cfg());
        let t0 = s.begin();
        s.write(t0, 3, 0, b"keep").unwrap();
        s.commit(t0).unwrap();
        let t = s.begin();
        s.write(t, 3, 0, b"drop").unwrap();
        s.abort(t).unwrap();
        assert_eq!(committed_read(&mut s, 3, 0, 4), b"keep");
    }

    #[test]
    fn crash_with_uncommitted_version_recovers_old() {
        let mut s = VersionStore::new(cfg());
        let t0 = s.begin();
        s.write(t0, 3, 0, b"base").unwrap();
        s.commit(t0).unwrap();
        let t = s.begin();
        s.write(t, 3, 0, b"half").unwrap(); // written through to the twin!
        let (mut s2, report) = VersionStore::recover(s.crash_image(), cfg()).unwrap();
        assert_eq!(committed_read(&mut s2, 3, 0, 4), b"base");
        assert_eq!(report.committed, 1);
        assert!(
            report.max_stamp >= t,
            "uncommitted stamp must raise the txn counter"
        );
    }

    #[test]
    fn crash_after_commit_keeps_new_version() {
        let mut s = VersionStore::new(cfg());
        let t = s.begin();
        s.write(t, 5, 0, b"newv").unwrap();
        s.write(t, 6, 0, b"also").unwrap();
        s.commit(t).unwrap();
        let (mut s2, _) = VersionStore::recover(s.crash_image(), cfg()).unwrap();
        assert_eq!(committed_read(&mut s2, 5, 0, 4), b"newv");
        assert_eq!(committed_read(&mut s2, 6, 0, 4), b"also");
    }

    #[test]
    fn multi_page_commit_is_atomic() {
        // Crash between slot writes and the commit-list append: no page
        // shows the new value. (Slot writes happen during write(); the
        // crash image before commit() captures exactly that state.)
        let mut s = VersionStore::new(cfg());
        let t0 = s.begin();
        s.write(t0, 0, 0, b"A").unwrap();
        s.write(t0, 1, 0, b"A").unwrap();
        s.commit(t0).unwrap();
        let t = s.begin();
        s.write(t, 0, 0, b"B").unwrap();
        s.write(t, 1, 0, b"B").unwrap();
        let img = s.crash_image(); // pre-commit crash
        let (mut s2, _) = VersionStore::recover(img, cfg()).unwrap();
        assert_eq!(committed_read(&mut s2, 0, 0, 1), b"A");
        assert_eq!(committed_read(&mut s2, 1, 0, 1), b"A");
        // and post-commit both flip
        s.commit(t).unwrap();
        let (mut s3, _) = VersionStore::recover(s.crash_image(), cfg()).unwrap();
        assert_eq!(committed_read(&mut s3, 0, 0, 1), b"B");
        assert_eq!(committed_read(&mut s3, 1, 0, 1), b"B");
    }

    #[test]
    fn torn_slot_write_falls_back_to_twin() {
        let mut s = VersionStore::new(cfg());
        let t0 = s.begin();
        s.write(t0, 7, 0, b"good").unwrap();
        s.commit(t0).unwrap();
        // a later committed update whose slot write tore
        let t1 = s.begin();
        s.write(t1, 7, 0, b"newr").unwrap();
        s.commit(t1).unwrap();
        // tear the slot t1 wrote (slot 15 = twin of 14)
        let current_slot = (0..2)
            .map(|i| 14 + i)
            .find(|&slot| {
                s.crash_image()
                    .disk
                    .read_page(slot)
                    .map(|p| p.lsn.0 == t1)
                    .unwrap_or(false)
            })
            .expect("t1's slot exists");
        let mut img = s.crash_image();
        let garbage = [0xFFu8; FRAME_SIZE];
        img.disk.write_partial(current_slot, &garbage, 100).unwrap();
        let (mut s2, report) = VersionStore::recover(img, cfg()).unwrap();
        // selection survives by falling back to the older committed twin
        assert_eq!(committed_read(&mut s2, 7, 0, 4), b"good");
        assert_eq!(report.torn_slots, 1);
    }

    #[test]
    fn reads_cost_two_slot_accesses() {
        let mut s = VersionStore::new(cfg());
        let t0 = s.begin();
        s.write(t0, 1, 0, b"x").unwrap();
        s.commit(t0).unwrap();
        let before = s.stats().slot_reads;
        committed_read(&mut s, 1, 0, 1);
        assert_eq!(s.stats().slot_reads, before + 2, "both twins are fetched");
    }

    #[test]
    fn lock_conflicts_between_writers() {
        let mut s = VersionStore::new(cfg());
        let a = s.begin();
        let b = s.begin();
        s.write(a, 4, 0, b"a").unwrap();
        assert!(matches!(
            s.write(b, 4, 0, b"b"),
            Err(ShadowError::LockConflict { .. })
        ));
        s.commit(a).unwrap();
        s.write(b, 4, 0, b"b").unwrap();
        s.commit(b).unwrap();
        assert_eq!(committed_read(&mut s, 4, 0, 1), b"b");
    }

    #[test]
    fn many_commits_roll_over_commit_frames() {
        let mut s = VersionStore::new(VersionConfig {
            logical_pages: 4,
            commit_frames: 3,
        });
        // 508 commits per frame; we do a few hundred to cross a boundary
        for i in 0..600u32 {
            let t = s.begin();
            s.write(t, (i % 4) as u64, 0, &i.to_le_bytes()).unwrap();
            s.commit(t).unwrap();
        }
        assert_eq!(committed_read(&mut s, 3, 0, 4), 599u32.to_le_bytes());
        let (mut s2, report) = VersionStore::recover(
            s.crash_image(),
            VersionConfig {
                logical_pages: 4,
                commit_frames: 3,
            },
        )
        .unwrap();
        assert_eq!(report.committed, 600);
        assert_eq!(committed_read(&mut s2, 3, 0, 4), 599u32.to_le_bytes());
    }

    #[test]
    fn never_written_page_reads_zero() {
        let mut s = VersionStore::new(cfg());
        assert_eq!(committed_read(&mut s, 9, 0, 8), vec![0; 8]);
    }
}
