//! The scratch ring buffer used by the overwriting architectures.
//!
//! The paper (§3.2.2.2): "Both architectures require scratch space on disk
//! which is managed as a ring buffer." The ring hands out frame addresses
//! within a fixed region of the data disk; slots cycle back into use once
//! the transaction that staged pages in them completes. Allocation state is
//! volatile — after a crash the owning store re-marks the slots still
//! referenced by surviving transaction directories.

use std::collections::HashSet;

/// Allocator over a contiguous region of disk frames, managed as a ring.
#[derive(Debug, Clone)]
pub struct ScratchRing {
    base: u64,
    len: u64,
    cursor: u64,
    in_use: HashSet<u64>,
}

impl ScratchRing {
    /// A ring over frames `[base, base + len)`.
    pub fn new(base: u64, len: u64) -> Self {
        assert!(len > 0, "scratch region must be nonempty");
        ScratchRing {
            base,
            len,
            cursor: 0,
            in_use: HashSet::new(),
        }
    }

    /// Total slots in the region.
    pub fn capacity(&self) -> u64 {
        self.len
    }

    /// Slots currently allocated.
    pub fn in_use(&self) -> u64 {
        self.in_use.len() as u64
    }

    /// Slots available.
    pub fn free_slots(&self) -> u64 {
        self.len - self.in_use()
    }

    /// First frame of the region.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Whether `addr` lies inside the scratch region.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.base + self.len
    }

    /// Allocate one slot, advancing the ring cursor. `None` when full.
    pub fn alloc(&mut self) -> Option<u64> {
        if self.in_use.len() as u64 == self.len {
            return None;
        }
        loop {
            let addr = self.base + self.cursor;
            self.cursor = (self.cursor + 1) % self.len;
            if self.in_use.insert(addr) {
                return Some(addr);
            }
        }
    }

    /// Allocate `n` slots or none (all-or-nothing).
    pub fn alloc_many(&mut self, n: usize) -> Option<Vec<u64>> {
        if self.free_slots() < n as u64 {
            return None;
        }
        Some(
            (0..n)
                .map(|_| self.alloc().expect("checked free"))
                .collect(),
        )
    }

    /// Return a slot to the ring.
    ///
    /// # Panics
    /// If `addr` is outside the region or not allocated.
    pub fn release(&mut self, addr: u64) {
        assert!(self.contains(addr), "release outside scratch region");
        assert!(self.in_use.remove(&addr), "double release of slot {addr}");
    }

    /// Recovery: mark a slot as in use because a surviving directory still
    /// references it. Idempotent.
    pub fn mark_in_use(&mut self, addr: u64) {
        assert!(self.contains(addr), "mark outside scratch region");
        self.in_use.insert(addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_sequentially_and_wraps() {
        let mut r = ScratchRing::new(100, 3);
        assert_eq!(r.alloc(), Some(100));
        assert_eq!(r.alloc(), Some(101));
        r.release(100);
        assert_eq!(r.alloc(), Some(102));
        // wraps to the released slot
        assert_eq!(r.alloc(), Some(100));
        assert_eq!(r.alloc(), None, "full ring");
    }

    #[test]
    fn alloc_many_is_all_or_nothing() {
        let mut r = ScratchRing::new(0, 4);
        assert!(r.alloc_many(5).is_none());
        assert_eq!(r.in_use(), 0, "failed alloc must not leak slots");
        let slots = r.alloc_many(4).unwrap();
        assert_eq!(slots.len(), 4);
        assert_eq!(r.free_slots(), 0);
    }

    #[test]
    fn contains_bounds() {
        let r = ScratchRing::new(10, 5);
        assert!(!r.contains(9));
        assert!(r.contains(10));
        assert!(r.contains(14));
        assert!(!r.contains(15));
    }

    #[test]
    fn mark_in_use_is_idempotent() {
        let mut r = ScratchRing::new(0, 4);
        r.mark_in_use(2);
        r.mark_in_use(2);
        assert_eq!(r.in_use(), 1);
        // allocation skips the marked slot
        let got: Vec<u64> = (0..3).map(|_| r.alloc().unwrap()).collect();
        assert!(!got.contains(&2));
    }

    #[test]
    #[should_panic(expected = "double release")]
    fn double_release_panics() {
        let mut r = ScratchRing::new(0, 2);
        let a = r.alloc().unwrap();
        r.release(a);
        r.release(a);
    }

    #[test]
    #[should_panic(expected = "outside scratch region")]
    fn release_outside_region_panics() {
        let mut r = ScratchRing::new(10, 2);
        r.release(5);
    }
}
