//! Shadow-page recovery architectures (paper §3.2), implemented
//! functionally.
//!
//! Three distinct architectures share the idea of keeping a *shadow*
//! (pre-update) copy of each page until the updating transaction commits:
//!
//! * [`pagetable::ShadowPager`] — the canonical System-R-style mechanism:
//!   every page access is **indirected** through a page table; updates go
//!   to freshly allocated disk blocks; commit atomically flips a master
//!   pointer between two on-disk page-table versions. The paper studies
//!   how to hide the indirection cost with dedicated page-table processors
//!   and buffers, and what happens when shadow allocation *scrambles*
//!   logically sequential pages ([`pagetable::AllocPolicy`]).
//! * [`version::VersionStore`] — *version selection* (§3.2.2.1): twin
//!   physical blocks per logical page, no page table at all; a read fetches
//!   both blocks and selects the newest committed version by timestamp.
//! * [`overwrite::NoUndoStore`] / [`overwrite::NoRedoStore`] — the
//!   *overwriting* architectures (§3.2.2.2): a separate current copy exists
//!   only while the transaction is active, staged in a scratch ring buffer
//!   ([`scratch::ScratchRing`]); on completion the shadow is overwritten in
//!   place, so pages never move and sequential clustering survives.
//!
//! Each store exposes the same begin/read/write/commit/abort lifecycle plus
//! `crash_image`/`recover`, and each recovers exactly the semantics its
//! architecture promises (no-redo never redoes, no-undo never undoes).

pub mod overwrite;
pub mod pagetable;
pub mod scratch;
pub mod version;

pub use overwrite::{
    NoRedoStore, NoUndoStore, OverwriteConfig, OverwriteImage, OverwriteRecoveryReport,
};
pub use pagetable::{
    AllocPolicy, ShadowConfig, ShadowError, ShadowImage, ShadowPager, ShadowRecoveryReport,
};
pub use scratch::ScratchRing;
pub use version::{VersionConfig, VersionImage, VersionRecoveryReport, VersionStore};
